"""E1 ("Figure 1"): the consistency–latency spectrum.

Claim: client-observed latency rises monotonically along
eventual → session → bounded/quorum → strong, in a geo deployment.
Workload: YCSB-style read/write rounds, client in the EU, replicas on
three continents.

Every rung is built through :mod:`repro.api.registry` and driven by
the protocol-agnostic :class:`repro.workload.WorkloadDriver` — the
same store construction + driver call per protocol, with only the
registry name and session options varying.
"""

import pytest

from common import SITES, emit, geo_network
from repro import Simulator
from repro.analysis import render_table
from repro.api import registry
from repro.checkers import (
    check_causal,
    check_linearizability,
    stale_read_fraction,
)
from repro.workload import OpSpec, WorkloadDriver

ROUNDS = 12


def rw_rounds(rounds=ROUNDS, read_heavy=False, think=5.0):
    """The E1 op stream: write, pause, read(s), pause — per round."""
    ops = []
    for i in range(rounds):
        key = f"key-{i % 3}"
        ops.append(OpSpec("update", key, f"v{i}"))
        ops.append(OpSpec("sleep", "", think))
        for _ in range(3 if read_heavy else 1):
            ops.append(OpSpec("read", key))
            ops.append(OpSpec("sleep", "", think))
    return ops


#: Rung -> (registry name, build kwargs, client placement, session opts).
RUNGS = {
    "eventual R=W=1": (
        "quorum",
        dict(n=3, r=1, w=1, op_deadline=2_000.0, client_timeout=4_000.0),
        {"dclient-1": "eu"},
        dict(client_id="dclient-1", coordinator="dyn1"),
        "dyn",
    ),
    "quorum R=W=2": (
        "quorum",
        dict(n=3, r=2, w=2, op_deadline=2_000.0, client_timeout=4_000.0),
        {"dclient-1": "eu"},
        dict(client_id="dclient-1", coordinator="dyn1"),
        "dyn",
    ),
    "timeline read-local": (
        "timeline",
        dict(propagation_delay=20.0),
        {"tlclient-1": "eu", "tl0-fwd": "us-east"},
        dict(client_id="tlclient-1", home="tl1"),
        "tl",
    ),
    "session RYW+MR": (
        "timeline",
        dict(propagation_delay=20.0),
        {"tlclient-1": "eu", "tl0-fwd": "us-east"},
        dict(client_id="tlclient-1", home="tl1",
             guarantees=("ryw", "mr"), retry_delay=10.0),
        "tl",
    ),
    "paxos": (
        "multipaxos", {}, {"pxclient-1": "eu"},
        dict(client_id="pxclient-1"), "px",
    ),
    "chain": (
        "chain", {}, {"chclient-1": "eu"},
        dict(client_id="chclient-1"), "ch",
    ),
}


def run_protocol(name, seed=1, read_heavy=False):
    sim = Simulator(seed=seed)
    if name.startswith("causal"):
        return _run_causal(sim, read_heavy)
    spec_name, build_kwargs, client_sites, session_opts, prefix = RUNGS[name]
    ids = [f"{prefix}{i}" for i in range(3)]
    net = geo_network(sim, ids, client_sites)
    store = registry.build(spec_name, sim, net, nodes=3, node_ids=ids,
                           **build_kwargs)
    if spec_name == "timeline":
        for i in range(3):
            store.cluster.set_master(f"key-{i}", f"{prefix}0")
    driver = WorkloadDriver(sim)
    driver.add_session(store.session("session-1", **session_opts),
                       rw_rounds(read_heavy=read_heavy))
    result = driver.run()
    history = result.history
    return {
        "protocol": name,
        "read_ms": result.read_latency.mean,
        "write_ms": result.write_latency.mean,
        "stale": stale_read_fraction(history),
        "linearizable": check_linearizability(history).ok,
    }


def _run_causal(sim, read_heavy):
    """COPS-style: writer in the EU writes locally; a reader in Asia
    reads locally.  Reads are ~free and may be stale, but the causal
    checker vouches for the history — the rung's defining property.
    Two driver lanes share one recorder, so both sessions densify into
    a single checkable history."""
    ids = [f"cc{i}" for i in range(3)]
    net = geo_network(sim, ids, {"ccclient-1": "eu", "ccclient-2": "asia"})
    store = registry.build("causal", sim, net, nodes=3, node_ids=ids)

    writes = []
    reads = [OpSpec("sleep", "", 5.0)]
    for i in range(ROUNDS):
        key = f"key-{i % 3}"
        writes += [OpSpec("update", key, f"v{i}"), OpSpec("sleep", "", 10.0)]
        reads += [OpSpec("read", key), OpSpec("sleep", "", 10.0)]

    driver = WorkloadDriver(sim)
    driver.add_session(
        store.session("writer", home="cc1", client_id="ccclient-1"), writes)
    driver.add_session(
        store.session("reader", home="cc2", client_id="ccclient-2"), reads)
    result = driver.run()
    sim.run(until=sim.now + 500.0)   # let replication settle
    history = result.history
    return {
        "protocol": "causal (COPS, far reader)",
        "read_ms": result.read_latency.mean,
        "write_ms": result.write_latency.mean,
        "stale": stale_read_fraction(history),
        "linearizable": check_linearizability(history).ok,
        "causal_ok": check_causal(history).ok,
    }


PROTOCOLS = [
    "eventual R=W=1",
    "timeline read-local",
    "causal (COPS, far reader)",
    "session RYW+MR",
    "quorum R=W=2",
    "paxos",
    "chain",
]


@pytest.mark.parametrize("read_heavy", [False, True])
def test_e1_spectrum(benchmark, capsys, read_heavy):
    results = [run_protocol(p, read_heavy=read_heavy) for p in PROTOCOLS]
    mix = "95/5-ish (3 reads/round)" if read_heavy else "50/50"
    emit(capsys, render_table(
        ["protocol", "read ms", "write ms", "stale frac", "linearizable"],
        [[r["protocol"], round(r["read_ms"], 1), round(r["write_ms"], 1),
          round(r["stale"], 3), r["linearizable"]] for r in results],
        title=f"E1: consistency-latency spectrum — EU client, {mix} mix, "
              f"sites {', '.join(SITES)}",
    ))

    by_name = {r["protocol"]: r for r in results}
    # Shape assertions from the taxonomy:
    # 1. eventual local reads are the cheapest; strong reads cost WAN RTTs.
    assert by_name["eventual R=W=1"]["read_ms"] < 5.0
    assert by_name["quorum R=W=2"]["read_ms"] > 50.0
    assert by_name["paxos"]["read_ms"] > 100.0
    # 2. session guarantees sit between local reads and quorum reads.
    assert (
        by_name["timeline read-local"]["read_ms"]
        <= by_name["session RYW+MR"]["read_ms"]
        <= by_name["quorum R=W=2"]["read_ms"] + 60.0
    )
    # 3. the strong rungs produce linearizable histories; read-local
    #    timeline does not (it is the stale rung).
    assert by_name["paxos"]["linearizable"]
    assert by_name["chain"]["linearizable"]
    assert by_name["quorum R=W=2"]["linearizable"]
    assert not by_name["timeline read-local"]["linearizable"]
    assert by_name["timeline read-local"]["stale"] > 0.3
    # 4. the causal rung: local-read cheap, stale allowed, NOT
    #    linearizable — but machine-checked causal.
    causal = by_name["causal (COPS, far reader)"]
    assert causal["read_ms"] < 5.0
    assert causal["stale"] > 0.3
    assert not causal["linearizable"]
    assert causal["causal_ok"]

    benchmark.pedantic(
        run_protocol, args=("eventual R=W=1",),
        kwargs={"read_heavy": read_heavy}, rounds=2, iterations=1,
    )
