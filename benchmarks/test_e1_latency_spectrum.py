"""E1 ("Figure 1"): the consistency–latency spectrum.

Claim: client-observed latency rises monotonically along
eventual → session → bounded/quorum → strong, in a geo deployment.
Workload: YCSB-style read/write rounds, client in the EU, replicas on
three continents.
"""

import pytest

from common import SITES, emit, geo_network, measure_history
from repro import Simulator, spawn
from repro.analysis import render_table
from repro.checkers import (
    check_causal,
    check_linearizability,
    stale_read_fraction,
)
from repro.client import timeline_session
from repro.replication import (
    CausalCluster,
    ChainCluster,
    DynamoCluster,
    MultiPaxosCluster,
    TimelineCluster,
)

ROUNDS = 12


def drive(sim, write_fn, read_fn, rounds=ROUNDS, read_heavy=False):
    def script():
        for i in range(rounds):
            yield write_fn(f"key-{i % 3}", f"v{i}")
            yield 5.0
            reads = 3 if read_heavy else 1
            for _ in range(reads):
                yield read_fn(f"key-{i % 3}")
                yield 5.0

    spawn(sim, script())
    sim.run()


def run_protocol(name, seed=1, read_heavy=False):
    sim = Simulator(seed=seed)
    if name.startswith("eventual") or name.startswith("quorum"):
        r, w = (1, 1) if name.startswith("eventual") else (2, 2)
        ids = [f"dyn{i}" for i in range(3)]
        net = geo_network(sim, ids, {"dclient-1": "eu"})
        cluster = DynamoCluster(sim, net, nodes=3, n=3, r=r, w=w,
                                node_ids=ids, op_deadline=2_000.0,
                                client_timeout=4_000.0)
        client = cluster.connect(coordinator="dyn1")
        drive(sim, client.put, client.get, read_heavy=read_heavy)
        history = cluster.history()
    elif name.startswith("timeline") or name.startswith("session"):
        ids = [f"tl{i}" for i in range(3)]
        net = geo_network(
            sim, ids, {"tlclient-1": "eu", "tl0-fwd": "us-east"},
        )
        cluster = TimelineCluster(sim, net, nodes=3, propagation_delay=20.0,
                                  node_ids=ids)
        for i in range(3):
            cluster.set_master(f"key-{i}", "tl0")
        raw = cluster.connect(home="tl1")
        if name.startswith("session"):
            session = timeline_session(raw, guarantees=("ryw", "mr"),
                                       retry_delay=10.0)
            drive(sim, session.write, session.read, read_heavy=read_heavy)
            history = session.history()
        else:
            drive(sim, raw.write, raw.read_any, read_heavy=read_heavy)
            history = cluster.recorder.history()
    elif name.startswith("causal"):
        # COPS-style: writer in the EU writes locally; a reader in
        # Asia reads locally.  Reads are ~free and may be stale, but
        # the causal checker vouches for the history — the rung's
        # defining property.
        ids = [f"cc{i}" for i in range(3)]
        net = geo_network(
            sim, ids, {"ccclient-1": "eu", "ccclient-2": "asia"},
        )
        cluster = CausalCluster(sim, net, nodes=3, node_ids=ids)
        writer = cluster.connect(home="cc1", session="writer")
        reader = cluster.connect(home="cc2", session="reader")

        def writer_loop():
            for i in range(rounds_for(read_heavy)):
                yield writer.put(f"key-{i % 3}", f"v{i}")
                yield 10.0

        def reader_loop():
            yield 5.0
            for i in range(rounds_for(read_heavy)):
                yield reader.get(f"key-{i % 3}")
                yield 10.0

        spawn(sim, writer_loop())
        spawn(sim, reader_loop())
        sim.run()
        sim.run(until=sim.now + 500.0)
        history = cluster.history()
        reads, writes = measure_history(history)
        return {
            "protocol": name,
            "read_ms": reads.mean,
            "write_ms": writes.mean,
            "stale": stale_read_fraction(history),
            "linearizable": check_linearizability(history).ok,
            "causal_ok": check_causal(history).ok,
        }
    elif name.startswith("paxos"):
        ids = [f"px{i}" for i in range(3)]
        net = geo_network(sim, ids, {"pxclient-1": "eu"})
        cluster = MultiPaxosCluster(sim, net, nodes=3, node_ids=ids)
        cluster.elect()
        sim.run()
        client = cluster.connect()
        drive(sim, client.put, client.get, read_heavy=read_heavy)
        history = cluster.recorder.history()
    else:  # chain
        ids = [f"ch{i}" for i in range(3)]
        net = geo_network(sim, ids, {"chclient-1": "eu"})
        cluster = ChainCluster(sim, net, nodes=3, node_ids=ids)
        client = cluster.connect()
        drive(sim, client.put, client.get, read_heavy=read_heavy)
        history = cluster.recorder.history()
    reads, writes = measure_history(history)
    return {
        "protocol": name,
        "read_ms": reads.mean,
        "write_ms": writes.mean,
        "stale": stale_read_fraction(history),
        "linearizable": check_linearizability(history).ok,
    }


def rounds_for(read_heavy: bool) -> int:
    return ROUNDS


PROTOCOLS = [
    "eventual R=W=1",
    "timeline read-local",
    "causal (COPS, far reader)",
    "session RYW+MR",
    "quorum R=W=2",
    "paxos",
    "chain",
]


@pytest.mark.parametrize("read_heavy", [False, True])
def test_e1_spectrum(benchmark, capsys, read_heavy):
    results = [run_protocol(p, read_heavy=read_heavy) for p in PROTOCOLS]
    mix = "95/5-ish (3 reads/round)" if read_heavy else "50/50"
    emit(capsys, render_table(
        ["protocol", "read ms", "write ms", "stale frac", "linearizable"],
        [[r["protocol"], round(r["read_ms"], 1), round(r["write_ms"], 1),
          round(r["stale"], 3), r["linearizable"]] for r in results],
        title=f"E1: consistency-latency spectrum — EU client, {mix} mix, "
              f"sites {', '.join(SITES)}",
    ))

    by_name = {r["protocol"]: r for r in results}
    # Shape assertions from the taxonomy:
    # 1. eventual local reads are the cheapest; strong reads cost WAN RTTs.
    assert by_name["eventual R=W=1"]["read_ms"] < 5.0
    assert by_name["quorum R=W=2"]["read_ms"] > 50.0
    assert by_name["paxos"]["read_ms"] > 100.0
    # 2. session guarantees sit between local reads and quorum reads.
    assert (
        by_name["timeline read-local"]["read_ms"]
        <= by_name["session RYW+MR"]["read_ms"]
        <= by_name["quorum R=W=2"]["read_ms"] + 60.0
    )
    # 3. the strong rungs produce linearizable histories; read-local
    #    timeline does not (it is the stale rung).
    assert by_name["paxos"]["linearizable"]
    assert by_name["chain"]["linearizable"]
    assert by_name["quorum R=W=2"]["linearizable"]
    assert not by_name["timeline read-local"]["linearizable"]
    assert by_name["timeline read-local"]["stale"] > 0.3
    # 4. the causal rung: local-read cheap, stale allowed, NOT
    #    linearizable — but machine-checked causal.
    causal = by_name["causal (COPS, far reader)"]
    assert causal["read_ms"] < 5.0
    assert causal["stale"] > 0.3
    assert not causal["linearizable"]
    assert causal["causal_ok"]

    benchmark.pedantic(
        run_protocol, args=("eventual R=W=1",),
        kwargs={"read_heavy": read_heavy}, rounds=2, iterations=1,
    )
