"""E4 ("Figure 3"): anti-entropy convergence and Merkle bandwidth.

Claims: (a) convergence time falls as gossip fan-out rises and grows
mildly (~log n) with replica count; (b) Merkle-tree reconciliation
moves orders of magnitude fewer bytes than full-state exchange when
replicas are nearly converged.
"""

import pytest

from common import emit
from repro import Network, Simulator
from repro.analysis import render_table
from repro.replication import GossipCluster
from repro.sim import FixedLatency


def convergence_time(nodes, fanout, seed=3, interval=20.0):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(2.0))
    cluster = GossipCluster(sim, net, nodes=nodes, interval=interval,
                            fanout=fanout)
    for index, replica in enumerate(cluster.replicas):
        replica.write(f"key-{index}", f"value-{index}")
    return cluster.run_until_converged(poll=2.0)


def merkle_vs_full_bytes(strategy, seed=4, common_keys=300):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(2.0), track_bytes=True)
    cluster = GossipCluster(sim, net, nodes=4, interval=10.0,
                            strategy=strategy)
    for i in range(common_keys):
        cluster.replicas[0].write(f"common-{i}", i)
    cluster.run_until_converged()
    baseline = net.stats.bytes_sent
    cluster.replicas[1].write("fresh-key", "x")
    cluster.run_until_converged()
    return net.stats.bytes_sent - baseline


def test_e4_convergence(benchmark, capsys):
    sweep = {}
    for nodes in (4, 8, 16, 32):
        for fanout in (1, 2, 4):
            times = [
                convergence_time(nodes, fanout, seed=s) for s in (3, 4, 5)
            ]
            sweep[(nodes, fanout)] = sum(times) / len(times)
    emit(capsys, render_table(
        ["replicas", "fanout=1", "fanout=2", "fanout=4"],
        [
            [nodes] + [round(sweep[(nodes, f)], 1) for f in (1, 2, 4)]
            for nodes in (4, 8, 16, 32)
        ],
        title="E4a: convergence time (ms, mean of 3 seeds; 20ms gossip "
              "interval)",
    ))

    # (a) higher fanout converges faster at every size.
    for nodes in (8, 16, 32):
        assert sweep[(nodes, 4)] < sweep[(nodes, 1)]
    # (a') growth with n is mild: 8x replicas « 8x time (log-ish).
    assert sweep[(32, 1)] < 4 * sweep[(4, 1)]

    bytes_used = {s: merkle_vs_full_bytes(s) for s in ("full", "merkle")}
    emit(capsys, render_table(
        ["strategy", "bytes to reconcile 1 changed key (300-key db)"],
        [[s, b] for s, b in bytes_used.items()],
        title="E4b: anti-entropy bandwidth ablation",
    ))
    # (b) Merkle crushes full-state shipping when nearly converged.
    assert bytes_used["merkle"] < bytes_used["full"] / 5

    benchmark.pedantic(convergence_time, args=(8, 2), rounds=3, iterations=1)
