"""E17: elastic membership — live rebalancing and queue-driven scaling.

Two claims about the elastic sharded store (ISSUE 7):

**E17a — live ring moves are safe.**  A scripted 2 -> 4 -> 2 resize
under open-loop YCSB-A traffic loses zero acknowledged writes (checked
key-by-key against the recorded history), converges afterwards, and
replays byte-identically per seed.

**E17b — the autoscaler holds the tail through a flash crowd.**  A
flash crowd saturates the static 2-shard topology: queues grow for the
whole hold, read p99 blows up toward the client timeout, and failures
pile up.  The same crowd against the same store with the
queue-driven :class:`~repro.membership.Autoscaler` attached scales out
to 4 shards mid-spike (ring moves racing the overload they are
curing), holds p99 to a fraction of the static run, and scales back
in when the crowd decays.
"""

import pytest

from common import emit
from repro import Network, Simulator
from repro.analysis import render_table
from repro.membership import Autoscaler
from repro.perf.harness import HashingTracer
from repro.sharding import ShardedStore
from repro.sharding.demo import run_scale_demo
from repro.sim import FixedLatency
from repro.workload import FlashCrowdArrivals, YCSBWorkload, run_workload

SERVICE_TIME = 1.0          # ms/request -> 1000 ops/s/node
SPIKE = 4500.0              # ops/s, ~1.5x the 2-shard capacity
TIMEOUT = 2500.0            # generous, so the tail is measured not censored


def flash_run(autoscale, seed=3, tracer=None):
    """One flash-crowd leg: static topology or autoscaled."""
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=FixedLatency(2.0))
    store = ShardedStore(sim, net, protocol="quorum", shards=2,
                         nodes_per_shard=3, service_time=SERVICE_TIME)
    arrivals = FlashCrowdArrivals(base=300.0, spike=SPIKE, spike_at=500.0,
                                  hold=4000.0, decay=800.0, seed=seed)
    ops = YCSBWorkload("B", records=80, seed=seed)
    scaler = None
    if autoscale:
        # Handoff ops must survive the very queues that triggered the
        # scale-out, hence the longer per-op timeout and wide copy.
        scaler = Autoscaler(
            interval=50.0, high_depth=2.0, low_depth=0.3, sustain=2,
            cooldown=300.0, min_shards=2, max_shards=6,
            move_opts=dict(op_timeout=2000.0, parallelism=16),
        )
    result = run_workload(store, ops, clients=400, arrivals=arrivals,
                          timeout=TIMEOUT, autoscaler=scaler,
                          until=7000.0, seed=seed)
    sim.run()
    return sim, store, scaler, result


def test_e17a_scripted_resize_loses_nothing(capsys):
    report = run_scale_demo(seed=42)
    emit(capsys, render_table(
        ["metric", "value"],
        [
            ["scale-out committed (ms)", round(report.scaled_out_at or -1)],
            ["scale-in committed (ms)", round(report.scaled_in_at or -1)],
            ["ops offered / ok", f"{report.offered} / {report.ok_ops}"],
            ["writes deferred mid-cutover", report.writes_rejected],
            ["keys copied / ranges flipped",
             f"{report.keys_copied} / {report.ranges_flipped}"],
            ["keys durability-checked", report.keys_checked],
            ["acked writes lost", len(report.durability_problems)],
            ["converged", report.converged],
        ],
        title="E17a: scripted 2->4->2 resize under open-loop YCSB-A "
              "(seed 42)",
    ))
    assert report.scaled
    assert report.durability_ok, report.durability_problems[:3]
    assert report.converged
    assert report.keys_copied > 0

    # Byte-identical replay: the whole scenario (gossip, moves,
    # open-loop traffic) is a pure function of the seed.
    assert run_scale_demo(seed=42).fingerprint == report.fingerprint


def test_e17b_autoscaler_holds_p99_through_flash_crowd(capsys, benchmark):
    _sim_s, _store_s, _none, static = flash_run(autoscale=False)
    sim_a, store_a, scaler, scaled = flash_run(autoscale=True)

    static_q = _sim_s.metrics.gauge("server.queue_depth_peak").value
    scaled_q = sim_a.metrics.gauge("server.queue_depth_peak").value
    rows = []
    for label, result, q in (("static (2 shards)", static, static_q),
                             ("autoscaled", scaled, scaled_q)):
        rows.append([
            label,
            result.ok,
            result.failed,
            round(result.goodput),
            round(result.read_latency.percentile(50)),
            round(result.read_latency.percentile(99)),
            round(result.write_latency.percentile(99)),
            round(q),
        ])
    emit(capsys, render_table(
        ["topology", "ok", "failed", "goodput", "p50 rd", "p99 rd",
         "p99 wr", "queue peak"],
        rows,
        title=f"E17b: flash crowd ({SPIKE:g} ops/s vs ~3000 capacity) — "
              f"static vs queue-driven autoscaling",
    ))
    actions = [action for _t, action, _n in scaler.decisions]
    emit(capsys, "autoscaler decisions: " + ", ".join(
        f"{action}@{t:g}ms->{n}" for t, action, n in scaler.decisions))

    # The crowd saturated the static topology...
    assert static.read_latency.percentile(99) > 4 * TIMEOUT / 5
    assert static.failed > 100
    # ...the autoscaler grew the ring mid-spike and shrank it after...
    assert "scale_out" in actions and "scale_in" in actions
    assert len(store_a.shard_ids) == 2
    # ...and that held the tail and the failure count way down.
    assert scaled.read_latency.percentile(99) < \
        0.5 * static.read_latency.percentile(99)
    assert scaled.failed < static.failed / 4
    assert scaled_q < static_q
    assert scaled.ok > static.ok

    benchmark.pedantic(
        run_scale_demo, kwargs=dict(seed=5, peak=3, rate=300.0, records=40,
                                    duration=900.0, scale_out_at=100.0,
                                    scale_in_at=500.0),
        rounds=2, iterations=1,
    )


def test_e17b_autoscaled_run_replays_bit_identically():
    digests = []
    for _ in range(2):
        tracer = HashingTracer()
        flash_run(autoscale=True, tracer=tracer)
        digests.append(tracer.hexdigest())
    assert digests[0] == digests[1]
