"""E5 ("Figure 4"): availability under partition — CAP, measured.

Claim: during a partition, (a) a sloppy-quorum store keeps accepting
writes on *both* sides (hinted handoff) and reconciles afterwards;
(b) a strict-quorum store rejects operations on the minority side;
(c) a Paxos group rejects everything that can't reach a majority.

Both stores are built through the registry and driven by the workload
driver; per-side success counts come from the driver's per-lane stats.
"""

import pytest

from common import emit
from repro import Network, Simulator
from repro.analysis import render_table
from repro.api import registry
from repro.sim import FixedLatency
from repro.workload import OpSpec, WorkloadDriver

OPS_PER_SIDE = 8


def side_ops(side, pause=20.0):
    return [
        spec
        for i in range(OPS_PER_SIDE)
        for spec in (OpSpec("update", f"{side}-key-{i}", i),
                     OpSpec("sleep", "", pause))
    ]


def run_dynamo_partition(sloppy, seed=2):
    """5 nodes split 3/2; a client on each side writes during the
    partition.  Returns (majority-side successes, minority-side
    successes, converged-after-heal)."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(2.0))
    store = registry.build("quorum", sim, net, nodes=5, n=3, r=2, w=2,
                           sloppy=sloppy, replica_timeout=20.0,
                           op_deadline=150.0, client_timeout=300.0,
                           hint_interval=30.0)
    nodes = store.cluster.ring.nodes
    majority, minority = nodes[:3], nodes[3:]
    major = store.session("major", coordinator=majority[0])
    minor = store.session("minor", coordinator=minority[0])
    net.partition([major.client_id] + majority,
                  [minor.client_id] + minority)

    driver = WorkloadDriver(sim)
    major_stats = driver.add_session(major, side_ops("major"))
    minor_stats = driver.add_session(minor, side_ops("minor"))
    driver.run()
    net.heal()
    sim.run(until=sim.now + 1_000.0)
    store.settle()
    snapshots = store.snapshots()
    converged = all(s == snapshots[0] for s in snapshots[1:])
    return major_stats.ok, minor_stats.ok, converged


def run_paxos_partition(minority_side, seed=2):
    """3-node Paxos group; the client + leader land with either the
    majority (2 nodes) or the minority (1 node)."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(2.0))
    store = registry.build("multipaxos", sim, net, nodes=3)
    cluster = store.cluster
    session = store.session("px")
    leader = cluster.leader.node_id
    others = [n for n in cluster.node_ids if n != leader]
    if minority_side:
        net.partition([session.client_id, leader])          # leader alone
    else:
        net.partition([session.client_id, leader, others[0]])  # leader + 1

    driver = WorkloadDriver(sim)
    stats = driver.add_session(
        session,
        [spec for i in range(OPS_PER_SIDE)
         for spec in (OpSpec("update", f"key-{i}", i),
                      OpSpec("sleep", "", 10.0))],
        timeout=200.0,
    )
    driver.run()
    return stats.ok


def test_e5_partition_availability(benchmark, capsys):
    strict = run_dynamo_partition(sloppy=False)
    sloppy = run_dynamo_partition(sloppy=True)
    paxos_major = run_paxos_partition(minority_side=False)
    paxos_minor = run_paxos_partition(minority_side=True)

    emit(capsys, render_table(
        ["system", "majority-side writes", "minority-side writes",
         "converged after heal"],
        [
            ["dynamo strict quorum", f"{strict[0]}/{OPS_PER_SIDE}",
             f"{strict[1]}/{OPS_PER_SIDE}", strict[2]],
            ["dynamo sloppy quorum", f"{sloppy[0]}/{OPS_PER_SIDE}",
             f"{sloppy[1]}/{OPS_PER_SIDE}", sloppy[2]],
            ["paxos (leader w/ majority)", f"{paxos_major}/{OPS_PER_SIDE}",
             "-", "n/a"],
            ["paxos (leader in minority)", "-",
             f"{paxos_minor}/{OPS_PER_SIDE}", "n/a"],
        ],
        title="E5: write availability during a 3/2 partition "
              f"({OPS_PER_SIDE} attempts per side)",
    ))

    # (a) sloppy quorums stay available on both sides and converge.
    assert sloppy[0] == OPS_PER_SIDE and sloppy[1] == OPS_PER_SIDE
    assert sloppy[2] is True
    # (b) strict quorums lose some keys whose home replicas straddle
    #     the cut; sloppy strictly dominates strict in availability.
    assert strict[0] + strict[1] < sloppy[0] + sloppy[1]
    # (c) Paxos: majority side fine, minority side completely down.
    assert paxos_major == OPS_PER_SIDE
    assert paxos_minor == 0

    benchmark.pedantic(run_dynamo_partition, args=(True,),
                       rounds=2, iterations=1)
