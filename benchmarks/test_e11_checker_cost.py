"""E11 ("Table 4"): what checking each guarantee costs.

Claims: (a) session-guarantee and causal checking scale polynomially
with history size; (b) linearizability checking is cheap on benign
(low-concurrency) histories but explodes exponentially on adversarial
highly concurrent single-key histories — the checker's state budget is
what keeps it usable.
"""

import time

import pytest

from common import emit
from repro.analysis import render_table
from repro.checkers import (
    check_causal,
    check_linearizability,
    check_read_your_writes,
    check_sequential,
)
from repro.histories import History, make_read, make_write


def benign_history(ops):
    """Sequential writer + trailing reads over several keys."""
    records = []
    t = 0.0
    for i in range(ops // 2):
        key = f"k{i % 5}"
        version = i // 5 + 1
        records.append(make_write(key, version, session="w",
                                  start=t, end=t + 1.0))
        records.append(make_read(key, version, session="r",
                                 start=t + 2.0, end=t + 3.0))
        t += 4.0
    return History(records)


def adversarial_history(writers):
    """All writes to one key, fully concurrent, then a read of the
    *initial* state — unsatisfiable, so the Wing–Gong search must
    exhaust every (memoized) interleaving before reporting it."""
    records = [
        make_write("k", i + 1, session=f"w{i}", start=0.0, end=1_000.0)
        for i in range(writers)
    ]
    records.append(make_read("k", 0, start=2_000.0, end=2_001.0))
    return History(records)


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, (time.perf_counter() - start) * 1000.0


def test_e11_checker_cost(benchmark, capsys):
    rows = []
    timings = {}
    for ops in (50, 200, 800):
        history = benign_history(ops)
        _, t_session = timed(check_read_your_writes, history)
        _, t_causal = timed(check_causal, history)
        _, t_lin = timed(check_linearizability, history)
        _, t_seq = timed(check_sequential, history)
        timings[ops] = {
            "session": t_session, "causal": t_causal,
            "lin": t_lin, "seq": t_seq,
        }
        rows.append([ops, round(t_session, 2), round(t_causal, 2),
                     round(t_lin, 2), round(t_seq, 2)])
    emit(capsys, render_table(
        ["history ops", "session ms", "causal ms", "linearizability ms",
         "sequential ms"],
        rows,
        title="E11a: checker runtime on benign histories",
    ))

    adv_rows = []
    for writers in (4, 6, 8, 10):
        history = adversarial_history(writers)
        verdict, t_adv = timed(
            check_linearizability, history, max_states=5_000_000
        )
        adv_rows.append([writers, round(t_adv, 2), not verdict.ok])
    emit(capsys, render_table(
        ["concurrent writers", "linearizability ms", "violation found"],
        adv_rows,
        title="E11b: adversarial single-key histories (exponential blowup)",
    ))

    # (a) polynomial checkers stay cheap as histories grow 16x.
    assert timings[800]["session"] < 50.0
    assert timings[800]["lin"] < timings[800]["causal"] + 500.0
    # (b) adversarial cost grows super-linearly with writer count.
    assert adv_rows[-1][1] > adv_rows[0][1]
    # All adversarial cases are genuine violations: after every write
    # completed, a read of the initial state cannot be linearized.
    assert all(row[2] for row in adv_rows)

    benchmark.pedantic(check_linearizability, args=(benign_history(200),),
                       rounds=3, iterations=1)
