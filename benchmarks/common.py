"""Shared helpers for the experiment benchmarks (E1–E12).

Each ``test_eN_*`` module reproduces one table/figure from the
reconstructed evaluation (see DESIGN.md's experiment index): it runs
the experiment, prints the table (visible in ``bench_output.txt``),
asserts the qualitative *shape* the taxonomy predicts, and registers a
representative kernel with pytest-benchmark.
"""

from __future__ import annotations

from repro import Network, Simulator
from repro.analysis import LatencyStats
from repro.sim import THREE_CONTINENTS

SITES = ("us-east", "eu", "asia")


def geo_network(sim, node_ids, client_sites=None, jitter=0.05):
    """Network over THREE_CONTINENTS with round-robin node placement
    plus explicitly placed clients (``{client_id: site}``)."""
    placement = {}
    for index, node_id in enumerate(node_ids):
        placement[node_id] = SITES[index % len(SITES)]
    for client_id, site in (client_sites or {}).items():
        placement[client_id] = site
    return Network(
        sim, latency=THREE_CONTINENTS.latency_model(placement, jitter=jitter)
    )


def measure_history(history):
    """(read stats, write stats) over completed ops."""
    reads, writes = LatencyStats(), LatencyStats()
    for op in history.completed:
        (reads if op.is_read else writes).record(op.end - op.start)
    return reads, writes


def emit(capsys, text: str) -> None:
    """Print a results table to the real terminal (not captured)."""
    with capsys.disabled():
        print()
        print(text)


def traced_sim(seed=0, capacity=None):
    """A simulator with tracing on: ``(sim, tracer)``.

    Benchmarks default to the no-op tracer (zero overhead); use this
    when an experiment wants to inspect the event/message timeline.
    """
    from repro.sim import Tracer

    tracer = Tracer(capacity=capacity)
    return Simulator(seed=seed, tracer=tracer), tracer


def metrics_report(sim, prefix=""):
    """Render the sim's metrics registry (optionally one subsystem,
    e.g. ``prefix="quorum"``) as an aligned text block."""
    return sim.metrics.render(prefix=prefix)
