"""E13: throughput scales out with shards, not replicas.

Claim: replication alone does not buy write throughput — every replica
applies every write.  Partitioning the keyspace over independent
replica groups does: with per-node service time modelled
(:class:`repro.replication.common.ServerNode.service_time`), YCSB-A
throughput over a :class:`repro.sharding.ShardedStore` rises
monotonically from 1 to 4 shards of the same quorum protocol, while
mean latency falls as queueing pressure spreads.

A second table runs YCSB-F (50% read-modify-write) through the same
driver — the RMW path exercises the driver's read-then-write
composition against the sharded store.
"""

import pytest

from common import emit
from repro import Network, Simulator
from repro.analysis import render_table
from repro.sharding import ShardedStore
from repro.workload import YCSBWorkload, run_workload

SERVICE_TIME = 10.0     # ms per request -> 100 ops/s per node
CLIENTS = 32
OPS = 600
SHARD_COUNTS = (1, 2, 4)


def run_sharded(shards, preset="A", ops=OPS, seed=5, **lane_opts):
    sim = Simulator(seed=seed)
    net = Network(sim)
    store = ShardedStore(sim, net, protocol="quorum", shards=shards,
                         nodes_per_shard=3, service_time=SERVICE_TIME)
    workload = YCSBWorkload(preset, records=1000, seed=9)
    result = run_workload(store, workload.take(ops), clients=CLIENTS,
                          timeout=60_000.0, **lane_opts)
    return store, result


def test_e13_sharding_throughput(benchmark, capsys):
    results = {}
    rows = []
    for shards in SHARD_COUNTS:
        store, result = run_sharded(shards)
        results[shards] = result
        routed = store.routed_ops()
        rows.append([
            shards,
            3 * shards,
            round(result.throughput, 1),
            round(result.read_latency.mean, 1),
            round(result.write_latency.mean, 1),
            "/".join(str(routed[s]) for s in store.shard_ids),
        ])
        assert result.ops_failed == 0
        assert sum(routed.values()) >= result.ops_ok
        assert store.sim.metrics.counters("shard.ops_routed")
    emit(capsys, render_table(
        ["shards", "nodes", "ops/s", "read ms", "write ms", "ops per shard"],
        rows,
        title=f"E13: YCSB-A throughput vs shard count — quorum protocol, "
              f"{CLIENTS} closed-loop clients, "
              f"{SERVICE_TIME:g}ms/node service time",
    ))

    # The claim: throughput rises monotonically with shard count.
    throughputs = [results[s].throughput for s in SHARD_COUNTS]
    assert throughputs == sorted(throughputs), throughputs
    # And meaningfully: 4 shards clearly beat 1.
    assert throughputs[-1] > 1.5 * throughputs[0]

    benchmark.pedantic(run_sharded, args=(2,), rounds=2, iterations=1)


def test_e13_rebalance_restores_routing_balance(capsys):
    """Satellite: after a live scale-out the router spreads *new* ops
    across all shards within a 2x min/max envelope — the ring move
    actually rebalanced ownership, not just added idle capacity."""
    sim = Simulator(seed=11)
    net = Network(sim)
    store = ShardedStore(sim, net, protocol="quorum", shards=2,
                         nodes_per_shard=3, service_time=SERVICE_TIME)
    # Uniform keys over a wide keyspace: routed traffic tracks ring
    # ownership share, not zipfian hot-key luck.
    workload = YCSBWorkload("A", records=2000, seed=9,
                            distribution="uniform")
    run_workload(store, workload.take(300), clients=CLIENTS,
                 timeout=60_000.0)

    move = store.add_shard()
    sim.run()
    assert not move.failed

    before = dict(store.routed_ops())
    run_workload(store, workload.take(600), clients=CLIENTS,
                 timeout=60_000.0)
    after = store.routed_ops()
    delta = {shard: after[shard] - before.get(shard, 0)
             for shard in store.shard_ids}
    emit(capsys, render_table(
        ["shard", "ops before", "ops after", "delta"],
        [[shard, before.get(shard, 0), after[shard], delta[shard]]
         for shard in sorted(store.shard_ids)],
        title="E13c: per-shard routed ops around a live 2->3 scale-out "
              "(uniform keys)",
    ))
    assert len(delta) == 3
    assert all(count > 0 for count in delta.values())
    assert max(delta.values()) <= 2 * min(delta.values()), delta


def test_e13_ycsb_f_rmw(capsys):
    """YCSB-F (50% RMW) through the driver against the sharded store."""
    store, result = run_sharded(
        2, preset="F", ops=200,
        rmw_fn=lambda old, fresh: f"{old}+{fresh}" if old else fresh,
    )
    emit(capsys, render_table(
        ["metric", "value"],
        [
            ["specs run", result.ops_total],
            ["rmw specs", result.rmw_total],
            ["reads issued", sum(lane.reads for lane in result.lanes)],
            ["writes issued", sum(lane.writes for lane in result.lanes)],
            ["failed", result.ops_failed],
            ["ops/s", round(result.throughput, 1)],
        ],
        title="E13b: YCSB-F (read-modify-write) over 2 shards",
    ))
    assert result.ops_failed == 0
    # Half the mix is RMW (each one read + one write through the driver).
    assert result.rmw_total > 0
    reads = sum(lane.reads for lane in result.lanes)
    writes = sum(lane.writes for lane in result.lanes)
    assert reads >= result.rmw_total
    assert writes >= result.rmw_total
    # Every operation shows up in the recorded, checkable history.
    assert len(result.history) == reads + writes
