"""E10 ("Figure 7"): the price of strong — Paxos commit scaling.

Claims: (a) a Multi-Paxos commit costs the leader one round trip to
the *median* replica, so geo commit latency is set by the majority-
forming sites, not the farthest one; (b) commit latency grows slowly
with replica count (more sites to reach majority across continents);
(c) linearizable reads pay the same log round trip while local reads
are ~free but stale.
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import LatencyStats, render_table
from repro.replication import MultiPaxosCluster
from repro.sim import THREE_CONTINENTS

SITES = ("us-east", "eu", "asia")


def run_group(replicas, seed=2, rounds=10):
    sim = Simulator(seed=seed)
    ids = [f"px{i}" for i in range(replicas)]
    placement = {node: SITES[i % 3] for i, node in enumerate(ids)}
    placement["pxclient-1"] = "us-east"   # client beside the leader
    net = Network(
        sim, latency=THREE_CONTINENTS.latency_model(placement, jitter=0.05)
    )
    cluster = MultiPaxosCluster(sim, net, nodes=replicas, node_ids=ids)
    cluster.elect()
    sim.run()
    client = cluster.connect()
    commit = LatencyStats()
    log_read = LatencyStats()
    local_read = LatencyStats()

    def script():
        for i in range(rounds):
            start = sim.now
            yield client.put("k", i)
            commit.record(sim.now - start)
            start = sim.now
            yield client.get("k")
            log_read.record(sim.now - start)
            start = sim.now
            yield client.local_get("k", cluster.replicas[0])
            local_read.record(sim.now - start)
            yield 5.0

    spawn(sim, script())
    sim.run()
    return {
        "commit": commit.mean,
        "log_read": log_read.mean,
        "local_read": local_read.mean,
    }


def test_e10_paxos_scaling(benchmark, capsys):
    sizes = (3, 5, 7, 9)
    results = {n: run_group(n) for n in sizes}
    emit(capsys, render_table(
        ["replicas", "commit ms", "linearizable read ms", "local read ms"],
        [
            [n, round(results[n]["commit"], 1),
             round(results[n]["log_read"], 1),
             round(results[n]["local_read"], 1)]
            for n in sizes
        ],
        title="E10: Multi-Paxos across us-east/eu/asia, client+leader in "
              "us-east",
    ))

    # (a) commit ≈ RTT to the majority-forming site (eu: 2×40=80ms),
    #     NOT the farthest (asia: 220ms) — majority masks stragglers.
    assert 70.0 < results[3]["commit"] < 120.0
    # (b) growth with group size is mild (majority still nearby).
    assert results[9]["commit"] < 2.5 * results[3]["commit"]
    for small, big in zip(sizes, sizes[1:]):
        assert results[big]["commit"] >= results[small]["commit"] - 5.0
    # (c) linearizable reads cost like commits; local reads are ~free.
    assert results[3]["log_read"] > 50.0
    assert results[3]["local_read"] < 5.0

    benchmark.pedantic(run_group, args=(3,), rounds=2, iterations=1)
