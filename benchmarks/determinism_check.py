"""CI guard: retry jitter must be a deterministic function of the seed.

The RPC layer draws backoff jitter and hedge scheduling from the
simulator's seeded RNG, so a fixed-seed run must replay the exact same
event timeline.  This script runs the hedged E14 tail config twice and
compares SHA-256 hashes of the full trace JSONL; any nondeterminism
(an unseeded RNG, dict-order dependence, wall-clock leakage) shows up
as a hash mismatch and a nonzero exit.

Run from ``benchmarks/``:  ``PYTHONPATH=../src:. python determinism_check.py``
"""

import sys

from test_e14_tail_tolerance import e14_trace_hash

SEED = 7


def main() -> int:
    first = e14_trace_hash(seed=SEED)
    second = e14_trace_hash(seed=SEED)
    print(f"seed={SEED} run 1: {first}")
    print(f"seed={SEED} run 2: {second}")
    if first != second:
        print("FAIL: fixed-seed trace hashes differ — the sim (or the "
              "RPC layer's retry jitter) is nondeterministic")
        return 1
    print("OK: fixed-seed E14 trace is byte-identical across runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
