"""Design-choice ablations called out in DESIGN.md.

* A1: read repair on/off — how fast do home replicas heal after a
  W=1 write, without anti-entropy?
* A2: LWW vs sibling conflict handling — concurrent updates lost vs
  kept, measured over a contended workload.
* A3: strict vs sloppy quorums at increasing partition severity
  (E5 covers one point; this sweeps the split).

All three build their stores through the registry; A2/A3 run through
the workload driver, A1 keeps its bespoke crash/recover script but
speaks to the store session surface.
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import render_table
from repro.api import registry
from repro.sim import FixedLatency
from repro.workload import OpSpec, WorkloadDriver


# ----------------------------------------------------------------------
# A1: read repair
# ----------------------------------------------------------------------

def run_read_repair(enabled, seed=3):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(3.0))
    store = registry.build("quorum", sim, net, nodes=5, n=3, r=3, w=1,
                           read_repair=enabled, hint_interval=None)
    session = store.session()
    homes = store.cluster.ring.preference_list("k", 3)
    victim_id = homes[1]
    victim = store.cluster.node(victim_id)
    healed = {}

    def script():
        store.crash(victim_id)
        yield session.put("k", "v")    # lands on 2 of 3 homes
        store.recover(victim_id)
        yield 30.0
        yield session.get("k")         # R=3 read sees the stale home
        yield 60.0
        healed["victim"] = victim.local_read("k")[0]

    spawn(sim, script())
    sim.run()
    return healed["victim"] == "v", store.cluster.read_repairs


# ----------------------------------------------------------------------
# A2: LWW vs siblings under concurrency
# ----------------------------------------------------------------------

def run_conflict_mode(mode, writers=4, seed=5):
    """`writers` clients blind-write one key concurrently; how many
    distinct written values survive to the converged state?"""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(4.0))
    protocol = "quorum" if mode == "lww" else "quorum_siblings"
    store = registry.build(protocol, sim, net, nodes=5, n=3, r=2, w=2)

    driver = WorkloadDriver(sim)
    for index in range(writers):
        driver.add_session(store.session(f"s{index}"),
                           [OpSpec("update", "hot", f"value-{index}")])
    driver.run()
    store.settle()
    snapshot = store.snapshots()[0]
    stored = snapshot.get("hot")
    if mode == "lww":
        return 1 if stored is not None else 0
    return len(stored)


# ----------------------------------------------------------------------
# A3: strict vs sloppy across partition severities
# ----------------------------------------------------------------------

def run_partition_severity(sloppy, cut_size, seed=7, attempts=6):
    """Cut ``cut_size`` of 6 nodes away from the client's side; count
    write successes from the client's (majority) side."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(2.0))
    store = registry.build("quorum", sim, net, nodes=6, n=3, r=2, w=2,
                           sloppy=sloppy, replica_timeout=20.0,
                           op_deadline=150.0, client_timeout=300.0)
    nodes = store.cluster.ring.nodes
    far_side = nodes[:cut_size]
    session = store.session(coordinator=nodes[-1])
    net.partition(far_side)  # everyone else (incl. client) together

    driver = WorkloadDriver(sim)
    stats = driver.add_session(
        session,
        [spec for i in range(attempts)
         for spec in (OpSpec("update", f"key-{i}", i),
                      OpSpec("sleep", "", 10.0))],
    )
    driver.run()
    return stats.ok


def test_ablations(benchmark, capsys):
    # A1
    healed_on, repairs_on = run_read_repair(True)
    healed_off, repairs_off = run_read_repair(False)
    emit(capsys, render_table(
        ["read repair", "stale home healed by one read", "repair msgs"],
        [["on", healed_on, repairs_on], ["off", healed_off, repairs_off]],
        title="A1: read-repair ablation (W=1 write with one home down)",
    ))
    assert healed_on and not healed_off
    assert repairs_on > 0 and repairs_off == 0

    # A2
    lww_survivors = run_conflict_mode("lww")
    sibling_survivors = run_conflict_mode("siblings")
    emit(capsys, render_table(
        ["conflict handling", "surviving values (4 concurrent writers)"],
        [["LWW", lww_survivors], ["siblings (DVV)", sibling_survivors]],
        title="A2: conflict-handling ablation",
    ))
    assert lww_survivors == 1
    assert sibling_survivors >= 3   # concurrent writes preserved

    # A3
    rows = []
    for cut in (1, 2, 3):
        strict = run_partition_severity(False, cut)
        sloppy = run_partition_severity(True, cut)
        rows.append([f"{cut}/6 nodes cut", f"{strict}/6", f"{sloppy}/6"])
        assert sloppy >= strict
    emit(capsys, render_table(
        ["partition", "strict-quorum writes", "sloppy-quorum writes"],
        rows,
        title="A3: availability vs. partition severity",
    ))

    benchmark.pedantic(run_conflict_mode, args=("siblings",),
                       rounds=2, iterations=1)
