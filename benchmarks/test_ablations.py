"""Design-choice ablations called out in DESIGN.md.

* A1: read repair on/off — how fast do home replicas heal after a
  W=1 write, without anti-entropy?
* A2: LWW vs sibling conflict handling — concurrent updates lost vs
  kept, measured over a contended workload.
* A3: strict vs sloppy quorums at increasing partition severity
  (E5 covers one point; this sweeps the split).
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import render_table
from repro.errors import ReproError
from repro.replication import DynamoCluster, SiblingDynamoCluster
from repro.sim import FixedLatency


# ----------------------------------------------------------------------
# A1: read repair
# ----------------------------------------------------------------------

def run_read_repair(enabled, seed=3):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(3.0))
    cluster = DynamoCluster(sim, net, nodes=5, n=3, r=3, w=1,
                            read_repair=enabled, hint_interval=None)
    client = cluster.connect()
    homes = cluster.ring.preference_list("k", 3)
    victim = cluster.node(homes[1])
    healed = {}

    def script():
        victim.crash()
        yield client.put("k", "v")     # lands on 2 of 3 homes
        victim.recover()
        yield 30.0
        yield client.get("k")          # R=3 read sees the stale home
        yield 60.0
        healed["victim"] = victim.local_read("k")[0]

    spawn(sim, script())
    sim.run()
    return healed["victim"] == "v", cluster.read_repairs


# ----------------------------------------------------------------------
# A2: LWW vs siblings under concurrency
# ----------------------------------------------------------------------

def run_conflict_mode(mode, writers=4, seed=5):
    """`writers` clients blind-write one key concurrently; how many
    distinct written values survive to the converged state?"""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(4.0))
    if mode == "lww":
        cluster = DynamoCluster(sim, net, nodes=5, n=3, r=2, w=2)
    else:
        cluster = SiblingDynamoCluster(sim, net, nodes=5, n=3, r=2, w=2)
    clients = [cluster.connect(session=f"s{i}") for i in range(writers)]

    def script(client, index):
        try:
            yield client.put("hot", f"value-{index}")
        except ReproError:  # pragma: no cover - no failures injected
            pass

    for index, client in enumerate(clients):
        spawn(sim, script(client, index))
    sim.run()
    cluster.anti_entropy_sweep()
    snapshot = cluster.snapshots()[0]
    stored = snapshot.get("hot")
    if mode == "lww":
        return 1 if stored is not None else 0
    return len(stored)


# ----------------------------------------------------------------------
# A3: strict vs sloppy across partition severities
# ----------------------------------------------------------------------

def run_partition_severity(sloppy, cut_size, seed=7, attempts=6):
    """Cut ``cut_size`` of 6 nodes away from the client's side; count
    write successes from the client's (majority) side."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(2.0))
    cluster = DynamoCluster(sim, net, nodes=6, n=3, r=2, w=2,
                            sloppy=sloppy, replica_timeout=20.0,
                            op_deadline=150.0, client_timeout=300.0)
    nodes = cluster.ring.nodes
    far_side = nodes[:cut_size]
    client = cluster.connect(coordinator=nodes[-1])
    net.partition(far_side)  # everyone else (incl. client) together
    successes = [0]

    def script():
        for i in range(attempts):
            try:
                yield client.put(f"key-{i}", i)
                successes[0] += 1
            except ReproError:
                pass
            yield 10.0

    spawn(sim, script())
    sim.run()
    return successes[0]


def test_ablations(benchmark, capsys):
    # A1
    healed_on, repairs_on = run_read_repair(True)
    healed_off, repairs_off = run_read_repair(False)
    emit(capsys, render_table(
        ["read repair", "stale home healed by one read", "repair msgs"],
        [["on", healed_on, repairs_on], ["off", healed_off, repairs_off]],
        title="A1: read-repair ablation (W=1 write with one home down)",
    ))
    assert healed_on and not healed_off
    assert repairs_on > 0 and repairs_off == 0

    # A2
    lww_survivors = run_conflict_mode("lww")
    sibling_survivors = run_conflict_mode("siblings")
    emit(capsys, render_table(
        ["conflict handling", "surviving values (4 concurrent writers)"],
        [["LWW", lww_survivors], ["siblings (DVV)", sibling_survivors]],
        title="A2: conflict-handling ablation",
    ))
    assert lww_survivors == 1
    assert sibling_survivors >= 3   # concurrent writes preserved

    # A3
    rows = []
    for cut in (1, 2, 3):
        strict = run_partition_severity(False, cut)
        sloppy = run_partition_severity(True, cut)
        rows.append([f"{cut}/6 nodes cut", f"{strict}/6", f"{sloppy}/6"])
        assert sloppy >= strict
    emit(capsys, render_table(
        ["partition", "strict-quorum writes", "sloppy-quorum writes"],
        rows,
        title="A3: availability vs. partition severity",
    ))

    benchmark.pedantic(run_conflict_mode, args=("siblings",),
                       rounds=2, iterations=1)
