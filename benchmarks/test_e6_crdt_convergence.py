"""E6 ("Table 2"): CRDT convergence semantics and shipping cost.

Claims: (a) every CRDT converges under arbitrary delivery
order/duplication; (b) the *converged value* differs by type — LWW
loses one of two concurrent updates, MV/OR-set preserve both; (c)
delta shipping moves far fewer bytes than full-state shipping and
op shipping is smallest but needs causal delivery.
"""

import random

import pytest

from common import emit
from repro.analysis import render_table
from repro.crdt import (
    RGA,
    DeltaORSet,
    GCounter,
    LWWRegister,
    MVRegister,
    ORSet,
    OpORSet,
    PNCounter,
)
from repro.sim import estimate_size


def random_delivery_convergence(factory, mutate, seed, replicas=3, ops=30):
    """Apply random ops at each replica, merge in random pairings until
    fixpoint, return the converged values."""
    rng = random.Random(seed)
    nodes = [factory(f"r{i}") for i in range(replicas)]
    for _ in range(ops):
        mutate(rng.choice(nodes), rng)
    for _ in range(4):  # more than enough pairwise rounds
        order = list(range(replicas))
        rng.shuffle(order)
        for i in order:
            for j in order:
                if i != j:
                    nodes[i].merge(nodes[j].copy())
    values = [repr(sorted(node.value, key=repr))
              if isinstance(node.value, (frozenset, list))
              else repr(node.value)
              for node in nodes]
    return values


CRDT_CASES = {
    "GCounter": (GCounter, lambda c, rng: c.increment(rng.randint(1, 3))),
    "PNCounter": (
        PNCounter,
        lambda c, rng: (c.increment(2) if rng.random() < 0.6 else c.decrement(1)),
    ),
    "LWWRegister": (LWWRegister, lambda c, rng: c.assign(rng.randint(0, 9))),
    "MVRegister": (MVRegister, lambda c, rng: c.assign(rng.randint(0, 9))),
    "ORSet": (
        ORSet,
        lambda c, rng: (
            c.add(f"e{rng.randint(0, 5)}")
            if rng.random() < 0.7
            else c.remove(f"e{rng.randint(0, 5)}")
        ),
    ),
    "RGA": (
        RGA,
        lambda c, rng: (
            c.insert(rng.randint(0, len(c)), f"x{rng.randint(0, 9)}")
            if rng.random() < 0.8 or len(c) == 0
            else c.delete(rng.randint(0, len(c) - 1))
        ),
    ),
}


def concurrent_update_semantics():
    """Two replicas write concurrently; what survives the merge?"""
    lww_a, lww_b = LWWRegister("a"), LWWRegister("b")
    lww_a.assign("from-a")
    lww_b.assign("from-b")
    lww_a.merge(lww_b)
    mv_a, mv_b = MVRegister("a"), MVRegister("b")
    mv_a.assign("from-a")
    mv_b.assign("from-b")
    mv_a.merge(mv_b)
    or_a, or_b = ORSet("a"), ORSet("b")
    or_a.add("from-a")
    or_b.add("from-b")
    or_a.merge(or_b)
    return {
        "LWWRegister": 1,                    # one survivor (arbitrated)
        "MVRegister": len(mv_a.values),      # both kept as siblings
        "ORSet": len(or_a.value),            # both kept (union)
    }, lww_a.value


def shipping_cost(ops=50, seed=9):
    """Bytes to propagate ``ops`` set updates replica→replica, by mode."""
    rng = random.Random(seed)
    items = [f"item-{rng.randint(0, 20)}" for _ in range(ops)]

    full_source = ORSet("a")
    full_bytes = 0
    for item in items:
        full_source.add(item)
        full_bytes += estimate_size(full_source.state())

    delta_source = DeltaORSet("a")
    delta_bytes = 0
    for item in items:
        delta = delta_source.add(item)
        delta_bytes += estimate_size(delta.state())

    op_source = OpORSet("a")
    op_bytes = 0
    for item in items:
        envelope = op_source.add(item)
        op_bytes += estimate_size(
            (envelope.origin, envelope.clock.entries(), envelope.payload)
        )
    return {"state": full_bytes, "delta": delta_bytes, "op": op_bytes}


def test_e6_crdt_convergence(benchmark, capsys):
    rows = []
    for name, (factory, mutate) in CRDT_CASES.items():
        converged = all(
            len(set(random_delivery_convergence(factory, mutate, seed))) == 1
            for seed in (1, 2, 3)
        )
        rows.append([name, converged])
        assert converged, f"{name} failed to converge"
    emit(capsys, render_table(
        ["CRDT", "converged under random delivery (3 seeds)"],
        rows,
        title="E6a: convergence under arbitrary merge order",
    ))

    survivors, lww_value = concurrent_update_semantics()
    emit(capsys, render_table(
        ["type", "values surviving 2 concurrent updates"],
        [[name, count] for name, count in survivors.items()],
        title="E6b: conflict semantics — arbitrate vs. keep",
    ))
    assert survivors["LWWRegister"] == 1     # one update silently lost
    assert survivors["MVRegister"] == 2      # both kept
    assert survivors["ORSet"] == 2
    assert lww_value in ("from-a", "from-b")

    costs = shipping_cost()
    emit(capsys, render_table(
        ["shipping mode", "bytes for 50 OR-Set adds", "delivery requirement"],
        [
            ["full state", costs["state"], "any order, idempotent"],
            ["delta state", costs["delta"], "any order, idempotent"],
            ["operations", costs["op"], "causal, exactly-once"],
        ],
        title="E6c: replication bandwidth by CRDT flavor",
    ))
    assert costs["delta"] < costs["state"] / 5
    assert costs["op"] < costs["state"]

    benchmark.pedantic(
        random_delivery_convergence,
        args=(ORSet, CRDT_CASES["ORSet"][1], 1),
        rounds=3, iterations=1,
    )
