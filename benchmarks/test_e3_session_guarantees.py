"""E3 ("Table 1"): session guarantees remove exactly their anomalies.

Claim: under a lagging eventually consistent store, sessions that read
any replica see RYW and MR violations; enabling each guarantee drives
its violation rate to zero at a measurable latency cost (retry/wait).

Sessions are created through the store API (``store.session(...,
guarantees=...)``) and driven by the shared workload driver; all lanes
record into one driver history, which the session checkers consume.
"""

import pytest

from common import emit
from repro import Network, Simulator
from repro.analysis import render_table
from repro.api import registry
from repro.checkers import ALL_SESSION_GUARANTEES
from repro.sim import ExponentialLatency
from repro.workload import OpSpec, WorkloadDriver

OPS_PER_SESSION = 12
SESSIONS = 4


def session_ops(key):
    """Write own key, read it back, read the shared key — per round."""
    ops = []
    for i in range(OPS_PER_SESSION):
        ops += [
            OpSpec("update", key, f"{key}-v{i}"), OpSpec("sleep", "", 4.0),
            OpSpec("read", key), OpSpec("sleep", "", 4.0),
            OpSpec("read", "shared"), OpSpec("sleep", "", 4.0),
        ]
    return ops


def run_sessions(guarantees, seed=2, propagation_delay=80.0):
    """Sessions interleaving writes and reads on their own keys and a
    shared key, via non-master home replicas."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ExponentialLatency(base=1.0, mean=3.0))
    store = registry.build("timeline", sim, net, nodes=4,
                           propagation_delay=propagation_delay)
    cluster = store.cluster
    driver = WorkloadDriver(sim)
    for index in range(SESSIONS):
        key = f"key-{index}"
        master = cluster.master_of(key)
        home = next(n for n in cluster.node_ids if n != master)
        session = store.session(f"s{index}", home=home,
                                guarantees=guarantees, retry_delay=8.0)
        driver.add_session(session, session_ops(key))
    result = driver.run()

    combined = result.history
    verdicts = {
        name: check(combined)
        for name, check in ALL_SESSION_GUARANTEES.items()
    }
    return verdicts, result.read_latency.mean


def test_e3_session_guarantees(benchmark, capsys):
    baseline_verdicts, baseline_latency = run_sessions(())
    rows = []
    with_ryw_mr = run_sessions(("ryw", "mr"))
    for name in ALL_SESSION_GUARANTEES:
        base = baseline_verdicts[name]
        enforced = with_ryw_mr[0][name]
        rows.append([
            name,
            base.violation_count,
            base.checked_ops,
            enforced.violation_count,
        ])
    emit(capsys, render_table(
        ["guarantee", "violations (none)", "checked ops",
         "violations (ryw+mr on)"],
        rows,
        title="E3: session-guarantee anomaly counts, lagging timeline "
              "store (80ms propagation)",
    ))
    emit(capsys, render_table(
        ["mode", "mean read latency (ms)"],
        [["no guarantees", round(baseline_latency, 1)],
         ["ryw+mr enforced", round(with_ryw_mr[1], 1)]],
        title="E3: the price of the guarantees (read-side retries)",
    ))

    # Shape: anomalies exist without guarantees...
    assert baseline_verdicts["read-your-writes"].violation_count > 0
    # ...and the enforced run removes the read-side anomalies entirely.
    assert with_ryw_mr[0]["read-your-writes"].violation_count == 0
    assert with_ryw_mr[0]["monotonic-reads"].violation_count == 0
    # Single-master ordering gives MW/WFR for free in both runs.
    assert baseline_verdicts["monotonic-writes"].violation_count == 0
    assert baseline_verdicts["writes-follow-reads"].violation_count == 0
    # Enforcement costs latency.
    assert with_ryw_mr[1] > baseline_latency

    benchmark.pedantic(run_sessions, args=(("ryw", "mr"),),
                       rounds=2, iterations=1)
