"""E3 ("Table 1"): session guarantees remove exactly their anomalies.

Claim: under a lagging eventually consistent store, sessions that read
any replica see RYW and MR violations; enabling each guarantee drives
its violation rate to zero at a measurable latency cost (retry/wait).
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import render_table
from repro.checkers import ALL_SESSION_GUARANTEES
from repro.client import timeline_session
from repro.replication import TimelineCluster
from repro.sim import ExponentialLatency

OPS_PER_SESSION = 12
SESSIONS = 4


def run_sessions(guarantees, seed=2, propagation_delay=80.0):
    """Sessions interleaving writes and reads on their own keys and a
    shared key, via non-master home replicas."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ExponentialLatency(base=1.0, mean=3.0))
    cluster = TimelineCluster(sim, net, nodes=4,
                              propagation_delay=propagation_delay)
    sessions = []
    for index in range(SESSIONS):
        key = f"key-{index}"
        master = cluster.master_of(key)
        home = next(n for n in cluster.node_ids if n != master)
        raw = cluster.connect(session=f"s{index}", home=home)
        session = timeline_session(raw, guarantees=guarantees,
                                   retry_delay=8.0)
        sessions.append((session, key))

    def script(session, key):
        for i in range(OPS_PER_SESSION):
            yield session.write(key, f"{key}-v{i}")
            yield 4.0
            try:
                yield session.read(key)
            except Exception:  # noqa: BLE001 - retries exhausted: skip
                pass
            yield 4.0
            try:
                yield session.read("shared")
            except Exception:  # noqa: BLE001
                pass
            yield 4.0

    for session, key in sessions:
        spawn(sim, script(session, key))
    sim.run()

    # Combine all session-level histories (client-observed).
    ops = []
    total_reads = 0
    total_read_latency = 0.0
    for session, _key in sessions:
        history = session.history()
        ops.extend(history)
        for op in history.completed:
            if op.is_read:
                total_reads += 1
                total_read_latency += op.end - op.start
    from repro.histories import History

    combined = History(ops)
    verdicts = {
        name: check(combined)
        for name, check in ALL_SESSION_GUARANTEES.items()
    }
    mean_read_latency = total_read_latency / max(total_reads, 1)
    return verdicts, mean_read_latency


def test_e3_session_guarantees(benchmark, capsys):
    baseline_verdicts, baseline_latency = run_sessions(())
    rows = []
    with_ryw_mr = run_sessions(("ryw", "mr"))
    for name in ALL_SESSION_GUARANTEES:
        base = baseline_verdicts[name]
        enforced = with_ryw_mr[0][name]
        rows.append([
            name,
            base.violation_count,
            base.checked_ops,
            enforced.violation_count,
        ])
    emit(capsys, render_table(
        ["guarantee", "violations (none)", "checked ops",
         "violations (ryw+mr on)"],
        rows,
        title="E3: session-guarantee anomaly counts, lagging timeline "
              "store (80ms propagation)",
    ))
    emit(capsys, render_table(
        ["mode", "mean read latency (ms)"],
        [["no guarantees", round(baseline_latency, 1)],
         ["ryw+mr enforced", round(with_ryw_mr[1], 1)]],
        title="E3: the price of the guarantees (read-side retries)",
    ))

    # Shape: anomalies exist without guarantees...
    assert baseline_verdicts["read-your-writes"].violation_count > 0
    # ...and the enforced run removes the read-side anomalies entirely.
    assert with_ryw_mr[0]["read-your-writes"].violation_count == 0
    assert with_ryw_mr[0]["monotonic-reads"].violation_count == 0
    # Single-master ordering gives MW/WFR for free in both runs.
    assert baseline_verdicts["monotonic-writes"].violation_count == 0
    assert baseline_verdicts["writes-follow-reads"].violation_count == 0
    # Enforcement costs latency.
    assert with_ryw_mr[1] > baseline_latency

    benchmark.pedantic(run_sessions, args=(("ryw", "mr"),),
                       rounds=2, iterations=1)
