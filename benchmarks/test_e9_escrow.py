"""E9 ("Table 3"): escrow — local commits while the invariant holds.

Claims: (a) with ample headroom, escrow debits commit locally (zero
WAN latency) while the centralized-lock baseline pays a round trip per
op; (b) as demand approaches the bound, escrow's latency rises (escrow
transfers) and aborts appear only when the *global* headroom is truly
exhausted; (c) the invariant (headroom ≥ 0) holds in every regime.
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import LatencyStats, render_table
from repro.errors import InvariantViolation
from repro.sim import FixedLatency
from repro.txn import CentralCounterClient, CentralCounterServer, EscrowCounter
from repro.workload import DebitWorkload

TOTAL = 600.0
OPS = 48
WAN = 35.0


def run_escrow(demand_fraction, seed=6, skew=False):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(WAN))
    counter = EscrowCounter(sim, net, total=TOTAL, sites=3)
    workload = DebitWorkload(
        sites=3, total_headroom=TOTAL, operations=OPS,
        demand_fraction=demand_fraction,
        skew_site=0 if skew else None, skew_weight=0.9 if skew else 0.0,
        seed=seed,
    )
    latency = LatencyStats()
    aborts = [0]

    def script():
        for op in workload.take():
            start = sim.now
            try:
                yield counter.site(op.site).debit(op.amount)
                latency.record(sim.now - start)
            except InvariantViolation:
                aborts[0] += 1
            yield 3.0

    spawn(sim, script())
    sim.run()
    assert counter.global_headroom() >= -1e-9  # the invariant
    transfers = sum(site.transfers_requested for site in counter.sites)
    return {
        "mean_latency": latency.mean,
        "aborts": aborts[0],
        "transfers": transfers,
    }


def run_central(demand_fraction, seed=6):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(WAN))
    CentralCounterServer(sim, net, "server", total=TOTAL)
    client = CentralCounterClient(sim, net, "client", "server")
    workload = DebitWorkload(sites=3, total_headroom=TOTAL, operations=OPS,
                             demand_fraction=demand_fraction, seed=seed)
    latency = LatencyStats()
    aborts = [0]

    def script():
        for op in workload.take():
            start = sim.now
            try:
                yield client.debit(op.amount)
                latency.record(sim.now - start)
            except InvariantViolation:
                aborts[0] += 1
            yield 3.0

    spawn(sim, script())
    sim.run()
    return {"mean_latency": latency.mean, "aborts": aborts[0]}


def test_e9_escrow(benchmark, capsys):
    fractions = (0.5, 0.8, 1.0, 1.3)
    rows = []
    escrow_results = {}
    for fraction in fractions:
        escrow = run_escrow(fraction)
        central = run_central(fraction)
        escrow_results[fraction] = escrow
        rows.append([
            fraction,
            round(escrow["mean_latency"], 1), escrow["aborts"],
            escrow["transfers"],
            round(central["mean_latency"], 1), central["aborts"],
        ])
    emit(capsys, render_table(
        ["demand/headroom", "escrow ms", "escrow aborts",
         "escrow transfers", "central ms", "central aborts"],
        rows,
        title=f"E9: bounded counter, 3 sites, {WAN:.0f}ms WAN, "
              f"{OPS} debits against {TOTAL:.0f} headroom",
    ))
    skewed = run_escrow(0.8, skew=True)
    emit(capsys, render_table(
        ["workload", "escrow mean ms", "transfers"],
        [["uniform demand 0.8", round(escrow_results[0.8]["mean_latency"], 1),
          escrow_results[0.8]["transfers"]],
         ["90% demand at site 0", round(skewed["mean_latency"], 1),
          skewed["transfers"]]],
        title="E9b: skew ablation — transfers chase the demand",
    ))

    # (a) slack regime: escrow is local, central pays RTTs.
    assert escrow_results[0.5]["mean_latency"] < 2.0
    assert escrow_results[0.5]["aborts"] == 0
    assert run_central(0.5)["mean_latency"] >= 2 * WAN * 0.9
    # (b) tight/over regimes: transfers, then unavoidable aborts.
    assert escrow_results[1.3]["aborts"] > 0
    assert escrow_results[1.0]["transfers"] > 0
    assert (
        escrow_results[1.0]["mean_latency"]
        > escrow_results[0.5]["mean_latency"]
    )
    # Skew drives more transfers than uniform demand.
    assert skewed["transfers"] > escrow_results[0.8]["transfers"]

    benchmark.pedantic(run_escrow, args=(0.8,), rounds=2, iterations=1)
