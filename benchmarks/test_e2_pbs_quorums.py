"""E2 ("Figure 2"): PBS — staleness vs. partial quorum configuration.

Claims: (a) p[consistent] rises with R+W and with time-after-commit t;
(b) R+W>N eliminates staleness entirely; (c) operation latency rises
with quorum size.  Both an analytic Monte-Carlo (WARS model) and a
measured end-to-end simulation (the Dynamo cluster) reproduce the
shape.
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import (
    WARSModel,
    render_table,
    simulate_t_visibility,
)
from repro.checkers import stale_read_fraction
from repro.replication import DynamoCluster
from repro.sim import ExponentialLatency

CONFIGS = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (1, 3)]
T_VALUES = (0.0, 1.0, 5.0, 20.0)


def analytic_grid(n=3, trials=6000):
    rows = []
    for r, w in CONFIGS:
        row = {"r": r, "w": w}
        for t in T_VALUES:
            result = simulate_t_visibility(
                n, r, w, t, model=WARSModel.lan(), trials=trials, seed=3,
            )
            row[t] = result.p_consistent
        row["latency"] = result.mean_read_latency
        rows.append(row)
    return rows


def measured_stale_fraction(r, w, seed=5):
    """End-to-end measurement on the Dynamo simulator."""
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=6.0))
    cluster = DynamoCluster(sim, net, nodes=5, n=3, r=r, w=w,
                            coordinator_policy="random", read_repair=False)
    writer = cluster.connect(session="w")
    reader = cluster.connect(session="r")

    def write_loop():
        for i in range(60):
            yield writer.put("hot", i)
            yield 3.0

    def read_loop():
        yield 1.5
        for _ in range(80):
            yield reader.get("hot")
            yield 2.2

    spawn(sim, write_loop())
    spawn(sim, read_loop())
    sim.run()
    return stale_read_fraction(cluster.history())


def test_e2_pbs(benchmark, capsys):
    grid = analytic_grid()
    emit(capsys, render_table(
        ["config (N=3)"] + [f"t={t:g}ms" for t in T_VALUES] + ["read ms"],
        [
            [f"R={row['r']} W={row['w']}" +
             (" *" if row["r"] + row["w"] > 3 else "")]
            + [round(row[t], 4) for t in T_VALUES]
            + [round(row["latency"], 2)]
            for row in grid
        ],
        title="E2a: analytic t-visibility (WARS Monte-Carlo, LAN profile;"
              " * = R+W>N)",
    ))

    by_config = {(row["r"], row["w"]): row for row in grid}
    # (a) monotone in t for the weak configs.
    weak = by_config[(1, 1)]
    assert weak[0.0] < weak[5.0] <= weak[20.0]
    # (a') monotone in quorum size at t=0.
    assert by_config[(1, 1)][0.0] < by_config[(2, 1)][0.0]
    assert by_config[(1, 1)][0.0] < by_config[(1, 2)][0.0]
    # (b) overlap ⇒ always consistent.
    assert by_config[(2, 2)][0.0] == 1.0
    assert by_config[(3, 1)][0.0] == 1.0
    assert by_config[(1, 3)][0.0] == 1.0
    # (c) latency grows with R.
    assert by_config[(3, 1)]["latency"] > by_config[(1, 1)]["latency"]

    measured = {
        (r, w): sum(measured_stale_fraction(r, w, seed=s) for s in (5, 6, 7)) / 3
        for (r, w) in [(1, 1), (2, 2)]
    }
    emit(capsys, render_table(
        ["config", "measured stale fraction (mean of 3 runs)"],
        [[f"R={r} W={w}", round(f, 4)] for (r, w), f in measured.items()],
        title="E2b: end-to-end staleness on the Dynamo simulator",
    ))
    # Measured shape agrees: weak config stale sometimes, overlap never.
    assert measured[(1, 1)] > measured[(2, 2)] == 0.0

    benchmark.pedantic(
        simulate_t_visibility,
        args=(3, 1, 1, 0.0),
        kwargs={"trials": 2000, "seed": 1},
        rounds=3, iterations=1,
    )
