"""E18: multi-region deployment — region loss, failover, follower reads.

Two claims about the region-aware stack (ISSUE 8):

**E18a — the region-loss trade-off table.**  Three sharded clusters
(timeline, async primary/backup, quorum) spread over three continents
lose the us-east region at t=400ms.  Per protocol the scenario
measures RTO (first successful post-failover write per shard, probed
from the EU) and RPO (acknowledged pre-partition writes that a
post-failover authoritative read no longer sees).  The shape the
paper predicts: the asynchronous designs need an operator failover
and may lose their un-replicated tail, while the w=2/3 quorum rides
through with no operator action and zero lost acks — every ack set
intersects the two surviving regions.

**E18b — locality pays for followers.**  In the same runs, sessions
reading with ``read_preference="local_follower"`` see an in-region
p99 that sits far below the cross-region primary read p99 of a
session pinned to the authoritative replica, for every protocol.

Both legs replay byte-identically per seed.
"""

from common import emit
from repro.analysis import render_table
from repro.scenarios import run_multiregion

SEED = 42


def _fmt_rto(outcome):
    return f"{outcome.rto_ms:.0f}" if outcome.rto_ms is not None else "NEVER"


def test_e18a_region_loss_rto_rpo(capsys):
    report = run_multiregion(seed=SEED)

    rows = [
        [
            outcome.protocol,
            _fmt_rto(outcome),
            f"{outcome.rpo_lost_keys}/{outcome.keys_checked}",
            outcome.writes_acked,
            "yes" if outcome.converged else "no",
        ]
        for outcome in report.outcomes
    ]
    emit(capsys, render_table(
        ["protocol", "RTO ms", "RPO lost/checked", "acked writes",
         "converged"],
        rows,
        title=f"E18a: region loss at t=400ms, 3 shards x 3 replicas over "
              f"{', '.join(report.regions)} (seed {SEED})",
    ))

    assert len(report.outcomes) >= 3
    for outcome in report.outcomes:
        # Every protocol comes back: each probe key eventually writes.
        assert outcome.recovered, outcome.protocol
        assert outcome.rto_ms is not None and outcome.rto_ms > 0
        assert outcome.keys_checked > 0
        assert outcome.writes_acked > 0
    # The quorum intersection property: w=2 of 3 with one replica per
    # region means every acknowledged write survives any single-region
    # loss.  The async protocols are *allowed* a loss (that is the
    # paper's trade-off), the quorum is not.
    quorum = next(o for o in report.outcomes if o.protocol == "quorum")
    assert quorum.rpo_lost_keys == 0
    assert report.ok


def test_e18b_follower_reads_beat_primary_reads(capsys, benchmark):
    report = run_multiregion(seed=SEED)

    rows = [
        [
            outcome.protocol,
            round(outcome.local_p99, 1),
            outcome.local_reads,
            round(outcome.remote_p99, 1),
            outcome.remote_reads,
            f"{outcome.rpc_local}/{outcome.rpc_remote}",
        ]
        for outcome in report.outcomes
    ]
    emit(capsys, render_table(
        ["protocol", "local p99 ms", "n", "primary p99 ms", "n",
         "rpc local/remote"],
        rows,
        title=f"E18b: local_follower vs cross-region primary read p99 "
              f"(seed {SEED}, pre-partition window)",
    ))

    for outcome in report.outcomes:
        assert outcome.local_reads > 0 and outcome.remote_reads > 0
        # The headline locality claim, per protocol, same seed.
        assert outcome.local_p99 < outcome.remote_p99, outcome.protocol
        # Locality-ordered endpoints actually routed in-region.
        assert outcome.rpc_local > outcome.rpc_remote

    benchmark.pedantic(
        run_multiregion, kwargs=dict(seed=5, quick=True),
        rounds=2, iterations=1,
    )


def test_e18_replays_bit_identically():
    digests = [run_multiregion(seed=SEED, quick=True).fingerprint
               for _ in range(2)]
    assert digests[0] == digests[1]
    # And the fingerprint is seed-sensitive, not a constant.
    assert run_multiregion(seed=7, quick=True).fingerprint != digests[0]
