"""E16: the throughput–latency knee under open-loop load.

Claim: a closed-loop driver cannot show it, but every real store has a
knee — as open-loop offered load approaches service capacity, goodput
plateaus while tail latency turns sharply upward, and past saturation
an unprotected store collapses (service time is wasted on requests
whose clients already timed out).  The open-loop engine
(:mod:`repro.workload.openloop`) sweeps offered rate against three
protocols and finds each one's knee; a second table shows the hot-key
storm — congestion collapse with admission control off, prevention
(goodput within 20% of the knee) with it on.
"""

import pytest

from common import emit
from repro import Network, Simulator
from repro.analysis import render_table
from repro.api import registry
from repro.chaos import run_storm
from repro.sim import FixedLatency
from repro.workload import OpenLoopDriver, PoissonArrivals, YCSBWorkload

SERVICE_TIME = 1.0          # ms/request -> 1000 ops/s per node
NODES = 3
WINDOW = 3000.0             # offered-traffic window (ms)
TIMEOUT = 100.0             # client per-op timeout (ms)
RATES = (500, 1000, 2000, 3000, 4000)
PROTOCOLS = ("quorum", "primary_backup", "chain")


def run_open_loop(protocol, rate, seed=7, admission=True):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(2.0))
    knobs = dict(queue_limit=32, admission_rate=900.0,
                 admission_burst=50.0) if admission else {}
    store = registry.build(protocol, sim, net, nodes=NODES,
                           service_time=SERVICE_TIME, **knobs)
    ops = YCSBWorkload("B", records=100, seed=seed)
    driver = OpenLoopDriver(
        store, PoissonArrivals(rate=rate, seed=seed), ops,
        sessions=500, timeout=TIMEOUT, seed=seed,
    )
    return driver.run(WINDOW)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_e16_knee_curve(protocol, benchmark, capsys):
    rows, curve = [], []
    for rate in RATES:
        result = run_open_loop(protocol, rate)
        curve.append(result)
        rows.append([
            rate,
            round(result.offered_rate),
            round(result.goodput),
            result.shed,
            round(result.read_latency.percentile(50), 1),
            round(result.read_latency.percentile(99), 1),
        ])
    emit(capsys, render_table(
        ["offered", "arrived/s", "goodput/s", "shed", "rd p50", "rd p99"],
        rows,
        title=f"E16: open-loop knee — {protocol}, {NODES} nodes, "
              f"{SERVICE_TIME:g}ms service time, admission on",
    ))

    # Below the knee the store keeps up: goodput tracks offered load.
    low = curve[0]
    assert low.goodput >= 0.9 * low.offered_rate, low.goodput
    # Above the knee goodput plateaus: the two highest offered rates
    # differ by 2x but goodput by far less — the defining knee shape.
    assert curve[-1].goodput < 1.3 * curve[-2].goodput
    # And the plateau is capacity-shaped, not collapse: the saturated
    # store still outperforms its unsaturated low-load run (the exact
    # ceiling is protocol topology — a single primary saturates near
    # one node's capacity, a quorum ring near the ring's).
    assert curve[-1].goodput > 1.2 * curve[0].goodput
    # Tail latency turns upward across the knee.
    assert (curve[-1].read_latency.percentile(99)
            > 1.5 * curve[0].read_latency.percentile(99))

    benchmark.pedantic(run_open_loop, args=(protocol, 2000),
                       rounds=2, iterations=1)


def test_e16_hot_key_storm(capsys):
    """Congestion collapse without admission control; prevention with."""
    report = run_storm(seed=42)
    rows = [
        [run.name, "on" if run.admission else "off", run.offered, run.ok,
         run.shed, round(run.goodput), round(run.p99_read, 1),
         round(run.queue_peak)]
        for run in (report.runs[n] for n in ("knee", "collapse", "protected"))
    ]
    emit(capsys, render_table(
        ["leg", "admission", "offered", "ok", "shed", "goodput/s",
         "rd p99", "queue peak"],
        rows,
        title="E16: hot-key storm — flash crowd vs quorum, "
              "with/without admission control",
    ))
    assert report.collapse_demonstrated, report.runs["collapse"].goodput
    assert report.collapse_prevented, report.runs["protected"].goodput
    assert report.converged
    # Deterministic per seed: a second identical storm fingerprints
    # byte-identically (the CI overload-smoke gate).
    assert run_storm(seed=42).fingerprint() == report.fingerprint()
