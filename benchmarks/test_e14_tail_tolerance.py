"""E14: tail tolerance — availability via client-side redundancy.

The taxonomy's availability axis (E5) showed *protocols* differ under
partition; this experiment shows the *client* can buy availability and
tail latency on top of any of them.  Claims:

(a) under a heavy-tailed network plus one straggler replica, hedged
    quorum reads (speculative duplicate after ``hedge_after`` ms) cut
    p99 latency vs. the same workload unhedged — the classic
    "tail at scale" result, here measured in the simulator;
(b) a retry policy with endpoint failover keeps a quorum store
    serving through a coordinator crash, where a policy-less client
    pinned to the same coordinator just times out.

Both scenarios run through the registry + workload driver, and the
``rpc.*`` metrics published by the RPC engine are asserted alongside
the latency shapes.  A fixed-seed traced run is hashed twice to pin
down that retry jitter (drawn from the sim RNG) stays deterministic —
the property the CI determinism job guards.
"""

import hashlib

from common import emit
from repro import Network, RetryPolicy, Simulator
from repro.analysis import render_table
from repro.api import registry
from repro.sim import FixedLatency, LogNormalLatency, Tracer
from repro.workload import OpSpec, WorkloadDriver

KEYS = 8
READ_ROUNDS = 30            # reads per session in the tail scenario
STRAGGLER_SERVICE = 40.0    # ms of service time at the slow replica
HEDGE_AFTER = 10.0          # ms of silence before the speculative copy
FAILOVER_OPS = 16           # writes in the failover scenario
CRASH_AT = 150.0            # ms into the failover run


def build_quorum(sim, latency):
    net = Network(sim, latency=latency)
    return registry.build("quorum", sim, net, nodes=5, n=3, r=2, w=2)


# ---------------------------------------------------------------------------
# (a) hedged vs. unhedged reads under a straggler
# ---------------------------------------------------------------------------

def run_tail(hedged, seed=3, tracer=None):
    """Five sessions, one pinned per coordinator; one coordinator is a
    straggler.  Returns the driver result (read latencies included)."""
    sim = Simulator(seed=seed, tracer=tracer)
    store = build_quorum(sim, LogNormalLatency(median=2.0, sigma=0.6))
    nodes = store.server_ids()
    store.cluster.node(nodes[-1]).service_time = STRAGGLER_SERVICE

    loader = store.session("load", coordinator=nodes[0])
    preload = WorkloadDriver(sim)
    preload.add_session(
        loader, [OpSpec("update", f"k{i}", i) for i in range(KEYS)],
        timeout=400.0,
    )
    preload.run()

    policy = RetryPolicy(
        max_attempts=2, request_timeout=120.0, backoff_base=5.0,
        jitter=0.25, failover=True,
        hedge_after=HEDGE_AFTER if hedged else None,
    )
    driver = WorkloadDriver(sim)
    for index, node in enumerate(nodes):
        ops = [
            spec
            for round_ in range(READ_ROUNDS)
            for spec in (OpSpec("read", f"k{(round_ + index) % KEYS}"),
                         OpSpec("sleep", "", 5.0))
        ]
        driver.add_session(
            store.session(f"c{index}", coordinator=node, retry=policy),
            ops, timeout=400.0,
        )
    result = driver.run()
    return result, sim


# ---------------------------------------------------------------------------
# (b) failover through a coordinator crash
# ---------------------------------------------------------------------------

def run_failover(protected, seed=3):
    """One session pinned to a coordinator that crashes mid-run.
    Returns (lane stats, sim)."""
    sim = Simulator(seed=seed)
    store = build_quorum(sim, FixedLatency(2.0))
    nodes = store.server_ids()
    policy = RetryPolicy(
        max_attempts=4, request_timeout=30.0, backoff_base=5.0,
        jitter=0.25, failover=True,
    ) if protected else None
    session = store.session("pinned", coordinator=nodes[0], retry=policy)

    driver = WorkloadDriver(sim)
    ops = [
        spec
        for i in range(FAILOVER_OPS)
        for spec in (OpSpec("update", f"f{i % KEYS}", i),
                     OpSpec("sleep", "", 20.0))
    ]
    stats = driver.add_session(session, ops, timeout=400.0)
    sim.schedule(CRASH_AT, store.cluster.node(nodes[0]).crash)
    driver.run()
    return stats, sim


# ---------------------------------------------------------------------------
# determinism probe (also used by benchmarks/determinism_check.py)
# ---------------------------------------------------------------------------

def e14_trace_hash(seed=7):
    """SHA-256 of the full trace JSONL of a fixed-seed hedged run.

    Retry backoff jitter and hedge scheduling draw from the simulator's
    seeded RNG, so two runs with the same seed must replay the exact
    same event timeline — byte-identical traces.
    """
    tracer = Tracer()
    run_tail(hedged=True, seed=seed, tracer=tracer)
    return hashlib.sha256(tracer.dumps_jsonl().encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# the experiment
# ---------------------------------------------------------------------------

def test_e14_tail_tolerance(benchmark, capsys):
    unhedged, unhedged_sim = run_tail(hedged=False)
    hedged, hedged_sim = run_tail(hedged=True)
    protected, protected_sim = run_failover(protected=True)
    exposed, _exposed_sim = run_failover(protected=False)

    def rpc(sim, name):
        return sim.metrics.counter(f"rpc.{name}").value

    emit(capsys, render_table(
        ["client", "reads", "p50 (ms)", "p99 (ms)", "hedges", "hedge wins"],
        [
            ["unhedged", unhedged.read_latency.count,
             f"{unhedged.read_latency.percentile(50):.1f}",
             f"{unhedged.read_latency.p99:.1f}",
             rpc(unhedged_sim, "hedges"), rpc(unhedged_sim, "hedge_wins")],
            ["hedged", hedged.read_latency.count,
             f"{hedged.read_latency.percentile(50):.1f}",
             f"{hedged.read_latency.p99:.1f}",
             rpc(hedged_sim, "hedges"), rpc(hedged_sim, "hedge_wins")],
        ],
        title="E14a: quorum read tail with one straggler coordinator "
              f"(service_time={STRAGGLER_SERVICE:.0f}ms, "
              f"hedge_after={HEDGE_AFTER:.0f}ms)",
    ))
    emit(capsys, render_table(
        ["client", "writes ok", "writes failed", "failovers"],
        [
            ["retry + failover", protected.ok, protected.failed,
             rpc(protected_sim, "failovers")],
            ["no policy", exposed.ok, exposed.failed, 0],
        ],
        title="E14b: pinned-coordinator crash at "
              f"t={CRASH_AT:.0f}ms ({FAILOVER_OPS} writes)",
    ))

    # (a) hedging cuts the straggler out of the tail.
    assert rpc(hedged_sim, "hedges") > 0
    assert rpc(hedged_sim, "hedge_wins") > 0
    assert rpc(unhedged_sim, "hedges") == 0
    assert hedged.read_latency.p99 < unhedged.read_latency.p99
    # The straggler dominates the unhedged tail; hedged reads finish
    # before its service queue would even dispatch them.
    assert unhedged.read_latency.p99 >= STRAGGLER_SERVICE
    assert hedged.read_latency.p99 < STRAGGLER_SERVICE

    # (b) failover keeps the store serving through the crash…
    assert protected.ok == FAILOVER_OPS
    assert protected.failed == 0
    assert rpc(protected_sim, "failovers") > 0
    # …while the policy-less client loses every op after it.
    assert exposed.ok < FAILOVER_OPS
    assert exposed.failed > 0

    benchmark.pedantic(run_tail, args=(True,), rounds=2, iterations=1)


def test_e14_fixed_seed_trace_is_deterministic():
    assert e14_trace_hash(seed=7) == e14_trace_hash(seed=7)
