"""E12 ("Figure 8"): timeline consistency — stale but never forked.

Claims (PNUTS): (a) the stale-read fraction of ``read_any`` grows with
asynchronous propagation lag; (b) reads never observe versions out of
per-record order (monotonic at a fixed replica, single master ⇒ no
forks); (c) ``read_critical`` converts staleness into bounded waiting;
(d) moving a record's master to its writer's site trades write latency
against remote-read freshness.
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import LatencyStats, render_table
from repro.checkers import (
    check_convergence,
    check_monotonic_reads,
    stale_read_fraction,
)
from repro.replication import TimelineCluster
from repro.sim import FixedLatency

ROUNDS = 20


def run_lag(propagation_delay, critical=False, seed=3):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(3.0))
    cluster = TimelineCluster(sim, net, nodes=3,
                              propagation_delay=propagation_delay)
    master = cluster.master_of("rec")
    replica = next(n for n in cluster.node_ids if n != master)
    writer = cluster.connect(session="writer")
    reader = cluster.connect(session="reader", home=replica)
    read_latency = LatencyStats()

    def write_loop():
        for i in range(ROUNDS):
            yield writer.write("rec", f"v{i}")
            yield 12.0

    def read_loop():
        yield 6.0
        for i in range(ROUNDS):
            start = sim.now
            if critical:
                # The reader demands a version it knows exists (round
                # i ⇒ the writer has committed at least version i) —
                # how PNUTS apps use read_critical after out-of-band
                # notification.  The replica blocks until propagation
                # delivers it.
                yield reader.read_critical("rec", min_version=max(1, i))
            else:
                yield reader.read_any("rec")
            read_latency.record(sim.now - start)
            yield 12.0

    spawn(sim, write_loop())
    spawn(sim, read_loop())
    sim.run()
    sim.run(until=sim.now + 5 * propagation_delay + 100.0)
    history = cluster.recorder.history()
    return {
        "stale": stale_read_fraction(history),
        "monotonic": check_monotonic_reads(history).ok,
        "read_ms": read_latency.mean,
        "converged": check_convergence(cluster.snapshots()).ok,
    }


def run_mastership(master_site_is_writer, seed=4):
    """Writer colocated with tl1; does moving the record master to tl1
    make its writes local (PNUTS's mastership-migration motivation)?"""
    from repro.sim import MatrixLatency

    sim = Simulator(seed=seed)
    site_of = {"tl0": "east", "tl1": "west", "tl2": "asia",
               "tlclient-1": "west", "tl0-fwd": "east"}
    latency = MatrixLatency(
        {("east", "west"): 25.0, ("east", "asia"): 50.0,
         ("west", "asia"): 60.0, ("east", "east"): 0.5,
         ("west", "west"): 0.5, ("asia", "asia"): 0.5},
        site_of=lambda node: site_of[node],
        jitter=0.0,
    )
    net = Network(sim, latency=latency)
    cluster = TimelineCluster(sim, net, nodes=3, propagation_delay=10.0)
    cluster.set_master("rec", "tl1" if master_site_is_writer else "tl0")
    writer = cluster.connect(session="w", home="tl1")
    write_latency = LatencyStats()

    def script():
        for i in range(10):
            start = sim.now
            yield writer.write("rec", i)
            write_latency.record(sim.now - start)
            yield 5.0

    spawn(sim, script())
    sim.run()
    return write_latency.mean


def test_e12_timeline(benchmark, capsys):
    lags = (0.0, 4.0, 8.0, 15.0, 60.0)
    results = {lag: run_lag(lag) for lag in lags}
    emit(capsys, render_table(
        ["propagation lag (ms)", "stale read frac", "monotonic reads",
         "replicas converged"],
        [
            [lag, round(results[lag]["stale"], 3),
             results[lag]["monotonic"], results[lag]["converged"]]
            for lag in lags
        ],
        title="E12a: read_any staleness vs. asynchronous lag "
              "(remote replica reader)",
    ))

    critical = run_lag(60.0, critical=True)
    emit(capsys, render_table(
        ["mode", "stale frac", "mean read ms"],
        [["read_any", round(results[60.0]["stale"], 3),
          round(results[60.0]["read_ms"], 1)],
         ["read_critical", round(critical["stale"], 3),
          round(critical["read_ms"], 1)]],
        title="E12b: staleness traded for waiting at 60ms lag",
    ))

    near = run_mastership(True)
    far = run_mastership(False)
    emit(capsys, render_table(
        ["record master", "writer's mean write ms"],
        [["writer's node", round(near, 1)], ["remote node", round(far, 1)]],
        title="E12c: mastership migration (PNUTS write locality)",
    ))

    # (a) staleness grows with lag.
    staleness = [results[lag]["stale"] for lag in lags]
    assert staleness[0] <= staleness[1] <= staleness[3]
    assert staleness[3] > 0.5
    # (b) never off-timeline: monotonic reads hold at every lag, and
    #     replicas converge once propagation drains.
    assert all(results[lag]["monotonic"] for lag in lags)
    assert all(results[lag]["converged"] for lag in lags)
    # (c) critical reads remove the reader's own staleness... at the
    #     price of waiting for propagation.
    assert critical["read_ms"] > results[60.0]["read_ms"]
    # (d) local mastership makes writes local.
    assert near < far / 3

    benchmark.pedantic(run_lag, args=(20.0,), rounds=2, iterations=1)
