"""E19: the cache tier's hit-rate x staleness x guarantee trade-off.

Claim: a cache is just another rung on the paper's staleness spectrum
— the policy that decides how writes meet the cache decides which
session guarantees survive the boundary and how much staleness hits
absorb.  Each cell wraps one backing adapter in a
:class:`repro.cache.CachedStore` under one policy, drives a read-heavy
YCSB-B workload with the history recorded at the cache boundary, and
lets the *existing* checkers deliver the verdicts: claimed guarantees
must PASS, dropped ones surface as documented waivers, and per-tier
staleness attribution shows the staleness coming from hits, not the
backing store.

The ordering the table must reproduce, per adapter:

* ``read_through`` (writes bypass the cache) is the stalest policy;
* ``write_through``/``write_behind`` hits serve the newest acked
  write — stale fraction at or near the uncached baseline;
* all residual staleness attributes to the ``cache`` tier.
"""

import pytest

from common import emit
from repro.analysis import render_table
from repro.cache import run_cache_cell

ADAPTERS = ("quorum", "causal", "timeline")
POLICIES = ("uncached", "cache_aside", "read_through", "write_through",
            "write_behind")
CELL_KNOBS = dict(seed=42, plan=None, ops=120, preset="B", clients=3,
                  records=12, ttl=60.0, flush_delay=10.0)


def run_adapter_rows(adapter):
    return {
        policy: run_cache_cell(adapter, policy, **CELL_KNOBS)
        for policy in POLICIES
    }


def verdict_cell(report, guarantee):
    check = report.check(guarantee)
    if check is None:
        return "-"
    mark = {"pass": "PASS", "fail": "FAIL", "waived": "waived",
            "unknown": "?"}[check.status]
    return mark


@pytest.mark.parametrize("adapter", ADAPTERS)
def test_e19_cache_tradeoff(adapter, benchmark, capsys):
    cells = run_adapter_rows(adapter)
    rows = []
    for policy, report in cells.items():
        rows.append([
            policy,
            f"{report.hit_rate:.0%}",
            f"{report.stale_fraction:.1%}",
            f"{report.stale_by_tier.get('cache', 0.0):.1%}",
            f"{report.stale_by_tier.get('store', 0.0):.1%}",
            verdict_cell(report, "ryw"),
            verdict_cell(report, "mr"),
            verdict_cell(report, "mw"),
            verdict_cell(report, "wfr"),
            verdict_cell(report, "bounded-staleness"),
        ])
    emit(capsys, render_table(
        ["policy", "hit", "stale", "stale@cache", "stale@store",
         "ryw", "mr", "mw", "wfr", "t-bound"],
        rows,
        title=f"E19: cache policies over {adapter} — YCSB-B, "
              f"ttl={CELL_KNOBS['ttl']:g}ms, history at the cache "
              f"boundary",
    ))

    # Every cell's verdicts come from the standard checkers and no
    # claimed guarantee may FAIL.
    for policy, report in cells.items():
        assert report.ok, (
            f"{adapter}/{policy}: "
            f"{[(c.guarantee, c.detail) for c in report.results if c.status == 'fail']}"
        )
        for check in report.results:
            if check.claimed:
                assert check.status in ("pass", "unknown")

    # The cache works: every cached policy hits on this read-heavy mix.
    for policy in POLICIES[1:]:
        assert cells[policy].hit_rate > 0.3, (policy, cells[policy].hit_rate)
    assert cells["uncached"].hit_rate == 0.0

    # The staleness spectrum orders as the policies predict.
    assert (cells["read_through"].stale_fraction
            >= cells["write_through"].stale_fraction)
    assert (cells["read_through"].stale_fraction
            >= cells["uncached"].stale_fraction)

    # Whatever staleness showed up came from cache hits, not the
    # backing store's own reads.
    for policy in POLICIES[1:]:
        report = cells[policy]
        assert report.stale_by_tier.get("store", 0.0) <= \
            report.stale_by_tier.get("cache", 0.0) + 1e-9

    benchmark.pedantic(
        run_cache_cell, args=(adapter, "write_through"),
        kwargs=CELL_KNOBS, rounds=2, iterations=1,
    )


def test_e19_staleness_is_ttl_bounded(capsys):
    """Tightening the TTL tightens observed staleness: the declared
    bound (ttl + flush lag + op timeout) holds at every setting over a
    fresh-reading backing store."""
    rows = []
    for ttl in (20.0, 60.0, 200.0):
        knobs = dict(CELL_KNOBS)
        knobs["ttl"] = ttl
        report = run_cache_cell("quorum", "read_through", **knobs)
        staleness = report.check("bounded-staleness")
        assert staleness is not None and staleness.status == "pass", ttl
        rows.append([
            f"{ttl:g}", f"{report.hit_rate:.0%}",
            f"{report.stale_fraction:.1%}", staleness.detail,
        ])
    emit(capsys, render_table(
        ["ttl ms", "hit", "stale", "checker"],
        rows,
        title="E19: read-through staleness vs TTL over quorum "
              "(declared bound checker-verified)",
    ))


def test_e19_determinism():
    """The E19 cells fingerprint identically run to run — the table
    is a pure function of the seed."""
    first = run_cache_cell("causal", "read_through", **CELL_KNOBS)
    second = run_cache_cell("causal", "read_through", **CELL_KNOBS)
    assert first.fingerprint == second.fingerprint
