"""E7 ("Figure 5"): consistency SLAs beat any fixed consistency choice.

Claim (Pileus): as the client's position relative to master and
replicas varies, SLA-driven per-read replica selection delivers at
least as much utility as the best *fixed* strategy at each position —
and strictly more utility than the worst — because it adapts per read.

The ``pileus`` registry adapter supplies both policies: the default
session selects per-read, ``session(target=...)`` pins the fixed
baseline.  The workload driver runs the same op stream against each.
"""

import pytest

from common import emit
from repro import Network, Simulator
from repro.analysis import render_table
from repro.api import registry
from repro.sim import THREE_CONTINENTS
from repro.sla import SHOPPING_CART
from repro.workload import OpSpec, WorkloadDriver

SITES = ("us-east", "eu", "asia")
NODE_OF_SITE = {"us-east": "tl0", "eu": "tl1", "asia": "tl2"}


def run_position(client_site, strategy, seed=3, reads=15):
    sim = Simulator(seed=seed)
    placement = {
        "tl0": "us-east", "tl1": "eu", "tl2": "asia",
        "tlclient-1": client_site, "tl0-fwd": "us-east",
    }
    net = Network(
        sim, latency=THREE_CONTINENTS.latency_model(placement, jitter=0.05)
    )
    store = registry.build("pileus", sim, net, nodes=3,
                           propagation_delay=25.0)
    store.cluster.set_master("data", "tl0")
    if strategy == "sla":
        target = None
    elif strategy == "master":
        target = "tl0"
    else:
        target = NODE_OF_SITE[client_site]
    session = store.session(home=NODE_OF_SITE[client_site],
                            sla=SHOPPING_CART, target=target)
    # Warm the monitor with true RTTs (Pileus keeps a monitor service).
    sla_client = session.sla_client
    for site, node in NODE_OF_SITE.items():
        rtt = 2 * THREE_CONTINENTS.delay(client_site, site)
        sla_client.monitor.observe_latency(node, max(rtt, 1.0))
        sla_client.monitor.observe_lag(node, 25.0 if node != "tl0" else 0.0)

    ops = [OpSpec("update", "data", "v0"), OpSpec("sleep", "", 150.0)]
    for i in range(reads):
        ops += [OpSpec("update", "data", f"v{i + 1}"),
                OpSpec("sleep", "", 20.0),
                OpSpec("read", "data"), OpSpec("sleep", "", 10.0)]

    driver = WorkloadDriver(sim)
    driver.add_session(session, ops)
    driver.run()
    outcomes = sla_client.outcomes
    return {
        "utility": sla_client.average_utility(),
        "latency": sum(o.latency for o in outcomes) / len(outcomes),
    }


def test_e7_sla_utility(benchmark, capsys):
    strategies = ("sla", "master", "local")
    results = {
        (site, strategy): run_position(site, strategy)
        for site in SITES
        for strategy in strategies
    }
    emit(capsys, render_table(
        ["client site"] + [f"{s} utility" for s in strategies]
        + [f"{s} read ms" for s in strategies],
        [
            [site]
            + [round(results[(site, s)]["utility"], 3) for s in strategies]
            + [round(results[(site, s)]["latency"], 1) for s in strategies]
            for site in SITES
        ],
        title="E7: shopping-cart SLA (RMW@50ms:1.0 / RMW@200ms:0.75 / "
              "EC@200ms:0.4) — utility by client position and policy",
    ))

    for site in SITES:
        sla = results[(site, "sla")]["utility"]
        master = results[(site, "master")]["utility"]
        local = results[(site, "local")]["utility"]
        # Adaptive is never far below the best fixed strategy...
        assert sla >= max(master, local) - 0.12
        # ...and clearly beats the worst fixed strategy except where
        # all three coincide (client colocated with the master).
        if site != "us-east":
            assert sla > min(master, local)
    # Colocated client: everything is cheap and fresh.
    assert results[("us-east", "sla")]["utility"] > 0.9
    # Far client, always-master: latency bound blows, utility drops.
    assert results[("asia", "master")]["utility"] < 0.8

    benchmark.pedantic(run_position, args=("eu", "sla"),
                       rounds=2, iterations=1)
