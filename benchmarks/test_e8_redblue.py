"""E8 ("Figure 6"): RedBlue — latency falls as the blue fraction rises.

Claim: with deposits blue (local, commutative) and withdrawals red
(globally serialized), mean operation latency decreases monotonically
in the blue fraction, the invariant (balance ≥ 0) never breaks, and
all sites converge to identical balances.
"""

import pytest

from common import emit
from repro import Network, Simulator, spawn
from repro.analysis import LatencyStats, render_table
from repro.errors import InvariantViolation
from repro.sim import FixedLatency
from repro.txn import RedBlueBank
from repro.workload import BankWorkload

OPS = 60
WAN = 40.0


def run_blue_fraction(blue_fraction, seed=4):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(WAN))
    bank = RedBlueBank(sim, net, sites=3)
    workload = BankWorkload(sites=3, accounts=4,
                            blue_fraction=blue_fraction,
                            mean_amount=10.0, seed=seed)
    ops = workload.take(OPS)
    latency = LatencyStats()
    rejected = [0]

    def script():
        # Seed every account generously so most withdrawals are valid.
        for account in range(4):
            yield bank.site(0).deposit(f"acct-{account}", 500.0)
        yield 200.0
        for op in ops:
            start = sim.now
            site = bank.site(op.site)
            try:
                if op.action == "deposit":
                    yield site.deposit(op.account, op.amount)
                else:
                    yield site.withdraw(op.account, op.amount)
                latency.record(sim.now - start)
            except InvariantViolation:
                rejected[0] += 1
            yield 5.0

    spawn(sim, script())
    sim.run()
    sim.run(until=sim.now + 1_000.0)
    balances = {}
    for account in range(4):
        balances[f"acct-{account}"] = bank.converged_balance(f"acct-{account}")
    assert all(balance >= 0 for balance in balances.values())
    return {
        "mean_latency": latency.mean,
        "p99": latency.p99,
        "rejected": rejected[0],
    }


def test_e8_redblue(benchmark, capsys):
    fractions = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)
    results = {f: run_blue_fraction(f) for f in fractions}
    emit(capsys, render_table(
        ["blue fraction", "mean op latency (ms)", "p99 (ms)",
         "invariant rejections"],
        [
            [f, round(results[f]["mean_latency"], 1),
             round(results[f]["p99"], 1), results[f]["rejected"]]
            for f in fractions
        ],
        title=f"E8: RedBlue bank, 3 sites, {WAN:.0f}ms one-way WAN, "
              f"{OPS} ops",
    ))

    # Monotone non-increasing latency in blue fraction (within noise).
    means = [results[f]["mean_latency"] for f in fractions]
    for earlier, later in zip(means, means[1:]):
        assert later <= earlier + 1.0
    # The endpoints bracket the claim: all-red ≈ one WAN RTT per op;
    # all-blue ≈ free.
    assert means[0] > 2 * WAN * 0.9
    assert means[-1] < 1.0
    # Speedup is large.
    assert means[0] / max(means[-1], 1e-9) > 50

    benchmark.pedantic(run_blue_fraction, args=(0.5,), rounds=2,
                       iterations=1)
