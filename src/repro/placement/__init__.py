"""First-class geo-placement: regions, zones, and locality routing.

The tutorial's consistency spectrum is an *operator's* menu: which
replica a read may touch, and at what distance, is a per-read choice.
That choice only exists if the stack knows where everything is.  This
package makes placement explicit:

* :class:`Region` — a named region with availability zones (failure
  domains for replica spread; latency inside a region is the
  topology's ``intra_site``).
* :class:`Placement` — a registry mapping node ids to regions/zones on
  top of a :class:`~repro.sim.topology.Topology`, with a deterministic
  spread policy, a live WAN latency model, and per-region
  :class:`LocalityMap` views used by clients to order endpoints.
* :func:`spread_placement` — the pure placement policy (round-robin
  over regions, then zones), kept free of state so its invariants can
  be property-tested directly.

Everything is deterministic: placement is a pure function of the node
id list and the region list, never of hashing or RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ..errors import NetworkError
from ..sim.network import MatrixLatency
from ..sim.topology import Topology


@dataclass(frozen=True)
class Region:
    """A named region with its availability zones.

    Zones are failure domains for replica spread; two nodes in
    different zones of one region still talk at ``intra_site`` delay.
    """

    name: str
    zones: tuple[str, ...] = ()

    def zone_names(self) -> tuple[str, ...]:
        """Zone names, defaulting to a single implicit zone."""
        return self.zones if self.zones else (f"{self.name}-a",)


def spread_placement(
    node_ids: Sequence[Hashable],
    regions: Sequence[str],
    start: int = 0,
) -> dict[Hashable, str]:
    """Deterministic region spread: round-robin, staggered by ``start``.

    Consecutive nodes land in consecutive regions, so any ``k``
    replicas span ``min(k, len(regions))`` regions — the invariant the
    property tests pin down.  ``start`` rotates the first region so
    that (say) shard *i*'s primary lands in region ``i % n`` instead
    of every shard leading from the same region.
    """
    if not regions:
        raise NetworkError("cannot spread nodes: no regions given")
    return {
        node: regions[(start + i) % len(regions)]
        for i, node in enumerate(node_ids)
    }


class LocalityMap:
    """A client-side view of the world from one region.

    Stable-sorts endpoint lists by WAN delay from the origin region so
    same-region replicas are tried first.  The sort is *stable*:
    protocol-chosen preference (coordinator first, home replica first)
    survives among equidistant endpoints.
    """

    __slots__ = ("placement", "origin")

    def __init__(self, placement: "Placement", origin: str) -> None:
        self.placement = placement
        self.origin = origin

    def delay_to(self, node_id: Hashable) -> float:
        """One-way WAN delay from the origin to a node's region."""
        return self.placement.delay(
            self.origin, self.placement.region_of(node_id)
        )

    def is_local(self, node_id: Hashable) -> bool:
        """Whether the node sits in the origin region."""
        return self.placement.region_of(node_id) == self.origin

    def order(self, endpoints: Sequence[Hashable]) -> list:
        """Endpoints stable-sorted nearest-first from the origin."""
        return sorted(endpoints, key=self.delay_to)

    def nearest(self, endpoints: Sequence[Hashable]) -> Hashable:
        """The single nearest endpoint (first of :meth:`order`)."""
        if not endpoints:
            raise NetworkError("no endpoints to pick from")
        return self.order(endpoints)[0]


@dataclass
class Placement:
    """Node-to-region placement over a WAN :class:`Topology`.

    ``default_region`` catches auxiliary nodes created lazily deep in
    the protocol stack (forwarders, checker clients) that no one
    placed explicitly; without it an unplaced node raises at first
    lookup, which catches placement bugs early in tests.
    """

    topology: Topology
    regions: tuple[Region, ...] = ()
    default_region: str | None = None
    _region_of: dict = field(default_factory=dict, repr=False)
    _zone_of: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.regions:
            self.regions = tuple(
                Region(name) for name in self.topology.region_names
            )
        names = self.region_names
        for region in self.regions:
            if region.name not in self.topology.region_names:
                raise NetworkError(
                    f"region {region.name!r} not in topology "
                    f"{self.topology.name!r}"
                )
        if self.default_region is not None and self.default_region not in names:
            raise NetworkError(
                f"default region {self.default_region!r} not declared"
            )

    # -- declaration ---------------------------------------------------
    @property
    def region_names(self) -> tuple[str, ...]:
        return tuple(region.name for region in self.regions)

    def region(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise NetworkError(f"unknown region {name!r}")

    # -- assignment ----------------------------------------------------
    def place(
        self, node_id: Hashable, region: str, zone: str | None = None
    ) -> None:
        """Pin a node to a region (and optionally a zone).

        Re-placing an already-placed node is allowed and overrides —
        elasticity moves replicas between regions.
        """
        descriptor = self.region(region)
        zones = descriptor.zone_names()
        if zone is None:
            # Deterministic zone fill: count prior placements in the
            # region so consecutive nodes alternate failure domains.
            occupied = sum(
                1 for n, r in self._region_of.items()
                if r == region and n != node_id
            )
            zone = zones[occupied % len(zones)]
        elif zone not in zones:
            raise NetworkError(f"unknown zone {zone!r} in region {region!r}")
        self._region_of[node_id] = region
        self._zone_of[node_id] = zone

    def spread(self, node_ids: Sequence[Hashable], start: int = 0) -> None:
        """Place a replica set with :func:`spread_placement`."""
        for node_id, region in spread_placement(
            node_ids, self.region_names, start=start
        ).items():
            self.place(node_id, region)

    # -- lookup --------------------------------------------------------
    def region_of(self, node_id: Hashable) -> str:
        region = self._region_of.get(node_id, self.default_region)
        if region is None:
            raise NetworkError(
                f"node {node_id!r} has no region (and no default_region)"
            )
        return region

    def zone_of(self, node_id: Hashable) -> str | None:
        return self._zone_of.get(node_id)

    def is_placed(self, node_id: Hashable) -> bool:
        return node_id in self._region_of

    def nodes_in(self, region: str, within: Iterable | None = None) -> list:
        """Node ids placed in ``region``, in placement order.

        ``within`` restricts to a candidate set (e.g. one shard's
        replicas) while keeping placement order.
        """
        members = (
            self._region_of.items() if within is None
            else ((n, self.region_of(n)) for n in within)
        )
        return [n for n, r in members if r == region]

    def delay(self, region_a: str, region_b: str) -> float:
        """One-way delay between two regions.

        Regions that group several sites resolve through their primary
        (first-listed) site; same-region traffic — across zones too —
        runs at the topology's ``intra_site`` delay.
        """
        if region_a == region_b:
            return self.topology.intra_site
        site_a = self.topology.sites_in(region_a)[0]
        site_b = self.topology.sites_in(region_b)[0]
        return self.topology.delay(site_a, site_b)

    # -- derived views -------------------------------------------------
    def latency_model(self, jitter: float = 0.1) -> MatrixLatency:
        """A WAN latency model resolving nodes through *this* placement.

        The ``site_of`` hook is a live closure over the placement, not
        a frozen snapshot: client nodes created lazily (sessions,
        forwarders) and placed afterwards still resolve — as long as
        they are placed before their first message on a link.
        """
        matrix: dict[tuple[str, str], float] = {}
        for a in self.region_names:
            for b in self.region_names:
                matrix[(a, b)] = self.delay(a, b)
        return MatrixLatency(matrix, site_of=self.region_of, jitter=jitter)

    def locality(self, origin: str) -> LocalityMap:
        """The world as seen from ``origin`` (must be a known region)."""
        if origin not in self.region_names:
            raise NetworkError(f"unknown region {origin!r}")
        return LocalityMap(self, origin)


__all__ = [
    "LocalityMap",
    "Placement",
    "Region",
    "spread_placement",
]
