"""The macro-benchmark scenarios behind ``repro bench``.

Each scenario builds a fresh :class:`~repro.sim.Simulator` from the
given seed, drives a representative workload through the public store
machinery, and returns the simulator plus the count of
application-level operations it completed.  Scenarios must be
*deterministic functions of the seed*: the harness runs each one twice
(untraced for timing, then under a hashing tracer for the behavior
fingerprint) and insists the two metrics snapshots agree.

The four scenarios cover the hot paths that dominate every experiment
in ``benchmarks/``:

``quorum_ycsb``
    YCSB-A through the :class:`~repro.workload.WorkloadDriver` against
    a 5-node Dynamo-style quorum store — the event loop + network +
    RPC path.
``sharded_ring``
    The same driver against a 4-shard :class:`~repro.sharding.\
ShardedStore` (hash-ring routing, per-node service time) — adds
    queueing and routing pressure.
``multipaxos``
    Consensus-replicated log reads/writes — the chattiest protocol per
    client op.
``crdt_merge_storm``
    Gossip rounds over OR-Set + G-Counter replicas where every ship is
    ``state.copy()`` + ``merge`` — the CRDT clone/merge path.
``quorum_chaos``
    YCSB-A on the quorum store while a :class:`~repro.chaos.Nemesis`
    executes the ``mixed`` fault plan — partitions, crashes, drops and
    clock skew on top of the event loop, plus the timeout/recovery
    paths the healthy scenarios never touch.
``openloop_overload``
    A Poisson flood past capacity through the open-loop engine against
    an admission-controlled quorum store — the arrival scheduler,
    bounded service queue, token bucket, and shed/retry-after paths
    under sustained saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..api import registry
from ..crdt import GCounter, ORSet
from ..sharding import ShardedStore
from ..sim import ExponentialLatency, Network, Simulator
from ..workload import YCSBWorkload, run_workload


@dataclass(frozen=True)
class ScenarioOutcome:
    """What one scenario run hands back to the harness."""

    sim: Simulator
    ops: int


@dataclass(frozen=True)
class Scenario:
    """A named, seeded macro benchmark."""

    name: str
    description: str
    run: Callable[[int, bool, Any], ScenarioOutcome]  # (seed, quick, tracer)


# ---------------------------------------------------------------------------
# Store-driven scenarios (workload driver end to end)
# ---------------------------------------------------------------------------


def _run_quorum_ycsb(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    ops, clients = (400, 8) if quick else (4000, 24)
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=1.0))
    store = registry.build("quorum", sim, net, nodes=5, r=2, w=2)
    workload = YCSBWorkload("A", records=500, seed=seed + 1)
    result = run_workload(store, workload.take(ops), clients=clients,
                          timeout=60_000.0)
    return ScenarioOutcome(sim, result.ops_ok)


def _run_quorum_ycsb_100x(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    """100x the quick ``quorum_ycsb`` op count, same store shape.

    ``quick`` is ignored on purpose: this is fixed heavyweight fodder
    for the multiprocess sweep runner (``repro sweep``), where the
    interesting number is aggregate events/sec across workers, not a
    tunable per-run size.  Not part of ``DEFAULT_SCENARIOS`` — too big
    for the serial bench gate.
    """
    ops, clients = 40_000, 24
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=1.0))
    store = registry.build("quorum", sim, net, nodes=5, r=2, w=2)
    workload = YCSBWorkload("A", records=500, seed=seed + 1)
    result = run_workload(store, workload.take(ops), clients=clients,
                          timeout=600_000.0)
    return ScenarioOutcome(sim, result.ops_ok)


def _run_quorum_ycsb_cached(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    """``quorum_ycsb`` behind a write-through cache — the hit path
    (no network round trip), the fill path, and the CDC append all on
    the measured loop.  Not part of ``DEFAULT_SCENARIOS``: reached by
    name, so adding the cache tier cannot shift the pinned baseline.
    """
    ops, clients = (400, 8) if quick else (4000, 24)
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=1.0))
    store = registry.build("cached", sim, net, protocol="quorum",
                           policy="write_through", ttl=200.0, capacity=256,
                           miss_mode="quorum", nodes=5, r=2, w=2)
    workload = YCSBWorkload("A", records=500, seed=seed + 1)
    result = run_workload(store, workload.take(ops), clients=clients,
                          timeout=60_000.0)
    return ScenarioOutcome(sim, result.ops_ok)


def _run_sharded_ring(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    ops, clients = (400, 16) if quick else (3000, 32)
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=1.0))
    store = ShardedStore(sim, net, protocol="quorum", shards=4,
                         nodes_per_shard=3, service_time=2.0)
    workload = YCSBWorkload("A", records=1000, seed=seed + 1)
    result = run_workload(store, workload.take(ops), clients=clients,
                          timeout=60_000.0)
    return ScenarioOutcome(sim, result.ops_ok)


def _run_multipaxos(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    ops, clients = (200, 4) if quick else (1500, 8)
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=1.0))
    store = registry.build("multipaxos", sim, net, nodes=5)
    workload = YCSBWorkload("A", records=200, seed=seed + 1)
    result = run_workload(store, workload.take(ops), clients=clients,
                          timeout=120_000.0)
    return ScenarioOutcome(sim, result.ops_ok)


def _run_quorum_chaos(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    # Imported here: repro.chaos pulls in repro.perf.harness for its
    # fingerprints, so a module-level import would be circular.
    from ..chaos import PLANS, Nemesis

    ops, clients = (300, 6) if quick else (2000, 16)
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=1.0))
    store = registry.build("quorum", sim, net, nodes=5, r=2, w=2)
    workload = YCSBWorkload("A", records=500, seed=seed + 1)
    nemesis = Nemesis(PLANS["mixed"], seed=seed)
    # The tight per-op timeout is the point: faults make ops fail, and
    # the timeout/cleanup machinery is the path being measured.
    result = run_workload(store, workload.take(ops), clients=clients,
                          timeout=400.0, nemesis=nemesis)
    nemesis.heal_all()
    sim.run()
    store.settle()
    sim.run()
    return ScenarioOutcome(sim, result.ops_ok)


def _run_openloop_overload(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    from ..workload import OpenLoopDriver, PoissonArrivals

    window, rate = (1500.0, 3000.0) if quick else (6000.0, 4000.0)
    sim = Simulator(seed=seed, tracer=tracer)
    net = Network(sim, latency=ExponentialLatency(base=0.3, mean=1.0))
    store = registry.build("quorum", sim, net, nodes=3, service_time=1.0,
                           queue_limit=32, admission_rate=900.0,
                           admission_burst=50.0)
    workload = YCSBWorkload("B", records=100, seed=seed + 1)
    driver = OpenLoopDriver(
        store, PoissonArrivals(rate=rate, seed=seed + 2), workload,
        sessions=500, timeout=100.0, seed=seed + 3,
    )
    result = driver.run(window)
    return ScenarioOutcome(sim, result.ok + result.failed)


# ---------------------------------------------------------------------------
# CRDT merge storm (no network — pure clone+merge churn on the sim clock)
# ---------------------------------------------------------------------------


def _run_crdt_merge_storm(seed: int, quick: bool, tracer: Any = None) -> ScenarioOutcome:
    replicas = 8
    rounds = 25 if quick else 150
    mutations_per_round = 3
    universe = 64  # distinct elements; tags still accrue per add

    sim = Simulator(seed=seed, tracer=tracer)
    rng = sim.rng
    sets = [ORSet(f"r{i}") for i in range(replicas)]
    counters = [GCounter(f"r{i}") for i in range(replicas)]
    merges = sim.metrics.counter("crdt.merges")
    mutations = sim.metrics.counter("crdt.mutations")

    def mutate(i: int) -> None:
        crdt = sets[i]
        for _ in range(mutations_per_round):
            element = f"e{rng.randrange(universe)}"
            if rng.random() < 0.7:
                crdt.add(element)
            else:
                crdt.remove(element)
            mutations.inc()
        counters[i].increment(1 + rng.randrange(3))
        mutations.inc()

    def gossip(i: int) -> None:
        # Ship a snapshot to one peer, as a state-based gossip round
        # would: the copy is what crosses the "wire".
        peer = rng.randrange(replicas - 1)
        if peer >= i:
            peer += 1
        sets[peer].merge(sets[i].copy())
        counters[peer].merge(counters[i].copy())
        merges.inc(2)

    def round_(index: int) -> None:
        for i in range(replicas):
            sim.call_soon(mutate, i)
            sim.call_soon(gossip, i)
        if index + 1 < rounds:
            sim.schedule(1.0, round_, index + 1)

    sim.call_soon(round_, 0)
    sim.run()
    return ScenarioOutcome(sim, merges.value)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "quorum_ycsb",
            "YCSB-A via WorkloadDriver on a 5-node quorum store (R=W=2)",
            _run_quorum_ycsb,
        ),
        Scenario(
            "sharded_ring",
            "YCSB-A on a 4-shard hash-ring of quorum groups, 2ms service time",
            _run_sharded_ring,
        ),
        Scenario(
            "multipaxos",
            "YCSB-A on a 5-node multipaxos replicated log",
            _run_multipaxos,
        ),
        Scenario(
            "crdt_merge_storm",
            "gossip rounds of ORSet+GCounter snapshot copy+merge",
            _run_crdt_merge_storm,
        ),
        Scenario(
            "quorum_chaos",
            "YCSB-A on the quorum store under the mixed nemesis fault plan",
            _run_quorum_chaos,
        ),
        Scenario(
            "openloop_overload",
            "open-loop Poisson flood past capacity, admission control on",
            _run_openloop_overload,
        ),
        Scenario(
            "quorum_ycsb_100x",
            "quorum_ycsb at 100x the quick op count — sweep-runner fodder",
            _run_quorum_ycsb_100x,
        ),
        Scenario(
            "quorum_ycsb_cached",
            "quorum_ycsb behind a write-through cache (hit/fill/CDC paths)",
            _run_quorum_ycsb_cached,
        ),
    )
}

#: The scenarios ``repro bench`` runs by default and BENCH_CORE.json
#: pins.  Heavyweight opt-in scenarios (``quorum_ycsb_100x``) stay out
#: of the serial gate and are reached by name or via ``repro sweep``.
DEFAULT_SCENARIOS: tuple[str, ...] = (
    "quorum_ycsb",
    "sharded_ring",
    "multipaxos",
    "crdt_merge_storm",
    "quorum_chaos",
    "openloop_overload",
)
