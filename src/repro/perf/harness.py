"""Measurement + comparison machinery behind ``repro bench``.

Responsibilities:

* time each scenario untraced (wall clock, events/sec, ops/sec, peak
  RSS high-water mark),
* re-run it under :class:`HashingTracer` to fingerprint behavior
  (SHA-256 over the exact JSONL the :class:`~repro.sim.Tracer` would
  dump, plus a digest of ``metrics.snapshot()``),
* assemble the ``BENCH_CORE.json`` document and compare two documents
  for the CI regression guard.

The behavior fingerprint is the contract that makes perf PRs safe:
same seed ⇒ same trace hash and metrics digest before and after an
optimization, or the optimization changed semantics.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import ReproError
from ..sim.trace import ANNOTATION, TraceEvent
from .scenarios import DEFAULT_SCENARIOS, SCENARIOS, ScenarioOutcome

SCHEMA = "repro.perf.bench_core/1"
DEFAULT_SEED = 42
#: CI guard: fail when a scenario's events/sec drops by more than this
#: fraction against the committed baseline.
DEFAULT_TOLERANCE = 0.30
#: CI guard: fail when a scenario's peak RSS grows by more than this
#: fraction against the committed baseline.  Wider than the throughput
#: tolerance would be too forgiving: RSS is a high-water mark and far
#: less noisy than wall clock.
RSS_TOLERANCE = 0.20

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover - windows fallback
    resource = None  # type: ignore[assignment]


class PerfHarnessError(ReproError):
    """A scenario misbehaved (nondeterminism between harness runs)."""


def _peak_rss_kb() -> int | None:
    """Process peak RSS in KiB (monotone high-water mark), or None."""
    if resource is None:  # pragma: no cover - windows fallback
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalize to KiB.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


class HashingTracer:
    """A tracer that hashes the trace instead of storing it.

    Feeds every record through the exact JSONL encoding
    :meth:`repro.sim.trace.Tracer.dump_jsonl` uses, so its digest is
    byte-comparable with a dumped trace file — without holding a
    multi-hundred-MB timeline in memory during a macro benchmark.
    """

    enabled = True

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.count = 0

    def record(self, time: float, kind: str, **data: Any) -> None:
        line = TraceEvent(time, kind, data).to_json()
        self._hash.update(line.encode("utf-8"))
        self._hash.update(b"\n")
        self.count += 1

    def annotate(self, time: float, category: str, **data: Any) -> None:
        self.record(time, ANNOTATION, category=category, **data)

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def metrics_digest(snapshot: dict) -> str:
    """Canonical digest of a ``MetricsRegistry.snapshot()``."""
    payload = json.dumps(snapshot, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ScenarioReport:
    """One scenario's measured + fingerprinted result."""

    name: str
    description: str
    events: int
    ops: int
    wall_s: float
    events_per_sec: float
    ops_per_sec: float
    peak_rss_kb: int | None
    metrics_digest: str
    trace_hash: str | None = None
    trace_events: int | None = None

    def to_json(self) -> dict:
        return {
            "description": self.description,
            "events": self.events,
            "ops": self.ops,
            "wall_s": round(self.wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "metrics_digest": self.metrics_digest,
            "trace_hash": self.trace_hash,
            "trace_events": self.trace_events,
        }


def run_scenario(
    name: str,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    verify: bool = True,
    repeats: int = 1,
) -> ScenarioReport:
    """Time one scenario; with ``verify``, also fingerprint its behavior.

    ``repeats`` runs the timed (untraced) pass that many times and
    keeps the best wall time — best-of-N is the standard defense
    against scheduler noise on shared machines; every repeat must
    produce the identical metrics snapshot or the scenario is declared
    nondeterministic.

    The verification pass re-runs the scenario under a
    :class:`HashingTracer` and checks the untraced and traced runs
    produced identical metrics snapshots — tracing must never perturb
    a simulation.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scenario = SCENARIOS[name]
    wall: float | None = None
    digest: str | None = None
    events = 0
    outcome: ScenarioOutcome | None = None
    for _ in range(repeats):
        start = time.perf_counter()
        attempt: ScenarioOutcome = scenario.run(seed, quick, None)
        elapsed = time.perf_counter() - start
        attempt_digest = metrics_digest(attempt.sim.metrics.snapshot())
        if digest is None:
            digest = attempt_digest
            events = attempt.sim.events_processed
        elif (attempt_digest != digest
                or attempt.sim.events_processed != events):
            raise PerfHarnessError(
                f"scenario {name!r} is nondeterministic: repeat run "
                f"diverged from the first (seed={seed})"
            )
        if wall is None or elapsed < wall:
            wall = elapsed
        outcome = attempt
    assert wall is not None and digest is not None and outcome is not None

    trace_hash: str | None = None
    trace_events: int | None = None
    if verify:
        tracer = HashingTracer()
        traced = scenario.run(seed, quick, tracer)
        traced_digest = metrics_digest(traced.sim.metrics.snapshot())
        if traced_digest != digest or traced.sim.events_processed != events:
            raise PerfHarnessError(
                f"scenario {name!r} is nondeterministic: traced re-run "
                f"diverged from the timed run (seed={seed})"
            )
        trace_hash = tracer.hexdigest()
        trace_events = tracer.count

    wall = max(wall, 1e-9)
    return ScenarioReport(
        name=name,
        description=scenario.description,
        events=events,
        ops=outcome.ops,
        wall_s=wall,
        events_per_sec=events / wall,
        ops_per_sec=outcome.ops / wall,
        peak_rss_kb=_peak_rss_kb(),
        metrics_digest=digest,
        trace_hash=trace_hash,
        trace_events=trace_events,
    )


def _run_scenario_task(task: tuple) -> tuple[str, dict]:
    """Pool worker for :func:`run_suite` — module-level so it pickles
    under the ``spawn`` start method."""
    name, seed, quick, verify, repeats = task
    report = run_scenario(
        name, seed=seed, quick=quick, verify=verify, repeats=repeats
    )
    return name, report.to_json()


def run_suite(
    scenarios: Iterable[str] | None = None,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    verify: bool = True,
    repeats: int = 1,
    workers: int = 1,
) -> dict:
    """Run the (selected) scenarios and build the BENCH_CORE document.

    ``scenarios=None`` runs :data:`~repro.perf.scenarios.\
DEFAULT_SCENARIOS` — the gated set BENCH_CORE.json pins — not every
    registered scenario; heavyweight opt-in scenarios must be named.

    ``workers > 1`` fans the scenarios across a process pool (one
    scenario per worker, results assembled in request order).  Timings
    from a loaded machine are noisier than serial best-of-N, so keep
    the serial path for baseline regeneration; parallel mode is for
    fast comparative sweeps.  Per-scenario ``peak_rss_kb`` is *more*
    accurate in parallel mode: each worker's high-water mark covers
    only its own scenario, while a serial run reports the process-wide
    monotone maximum.
    """
    names = list(scenarios) if scenarios else list(DEFAULT_SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {', '.join(unknown)}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    doc: dict = {
        "schema": SCHEMA,
        "seed": seed,
        "quick": quick,
        "python": platform.python_version(),
        "platform": sys.platform,
        "scenarios": {},
    }
    tasks = [(name, seed, quick, verify, repeats) for name in names]
    if workers == 1:
        results = [_run_scenario_task(task) for task in tasks]
    else:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            results = pool.map(_run_scenario_task, tasks)
    for name, entry in results:
        doc["scenarios"][name] = entry
    return doc


# ---------------------------------------------------------------------------
# Comparison (the CI regression guard)
# ---------------------------------------------------------------------------


def _same_fingerprint_basis(current: dict, baseline: dict) -> bool:
    """Trace hashes are only comparable at equal seed/scale and equal
    Python minor version (hash randomization does not matter, but we
    stay conservative about stdlib RNG/format drift across minors)."""
    if current.get("seed") != baseline.get("seed"):
        return False
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        return False
    mine = str(current.get("python", "")).split(".")[:2]
    theirs = str(baseline.get("python", "")).split(".")[:2]
    return mine == theirs


def compare(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Problems in ``current`` relative to ``baseline`` (empty = pass).

    Flags (a) any scenario whose events/sec regressed more than
    ``tolerance``, (b) any scenario whose peak RSS grew more than
    :data:`RSS_TOLERANCE`, (c) scenarios missing from the current run,
    and (d) behavior-fingerprint mismatches when the two documents were
    produced at the same seed/scale on the same Python minor.
    """
    problems: list[str] = []
    fingerprints_comparable = _same_fingerprint_basis(current, baseline)
    for name, base in baseline.get("scenarios", {}).items():
        mine = current.get("scenarios", {}).get(name)
        if mine is None:
            problems.append(f"{name}: missing from current run")
            continue
        base_rate = float(base.get("events_per_sec") or 0.0)
        mine_rate = float(mine.get("events_per_sec") or 0.0)
        if base_rate > 0 and mine_rate < base_rate * (1.0 - tolerance):
            problems.append(
                f"{name}: events/sec regressed {mine_rate:.0f} vs "
                f"{base_rate:.0f} baseline (> {tolerance:.0%} drop)"
            )
        base_rss = base.get("peak_rss_kb")
        mine_rss = mine.get("peak_rss_kb")
        if base_rss and mine_rss \
                and mine_rss > base_rss * (1.0 + RSS_TOLERANCE):
            problems.append(
                f"{name}: peak RSS grew {mine_rss} KiB vs {base_rss} KiB "
                f"baseline (> {RSS_TOLERANCE:.0%} growth)"
            )
        if fingerprints_comparable:
            for field in ("trace_hash", "metrics_digest"):
                if base.get(field) and mine.get(field) \
                        and base[field] != mine[field]:
                    problems.append(
                        f"{name}: {field} changed — behavior differs from "
                        f"baseline (re-baseline if intentional)"
                    )
    return problems


def render_report(doc: dict) -> str:
    """The BENCH_CORE document as an aligned console table."""
    from ..analysis import render_table

    rows = []
    for name, entry in doc["scenarios"].items():
        rows.append([
            name,
            entry["events"],
            entry["events_per_sec"],
            entry["ops"],
            entry["ops_per_sec"],
            entry["wall_s"],
            entry["peak_rss_kb"] if entry["peak_rss_kb"] is not None else "-",
            (entry["trace_hash"] or "-")[:12],
        ])
    scale = "quick" if doc.get("quick") else "full"
    return render_table(
        ["scenario", "events", "events/s", "ops", "ops/s", "wall s",
         "peak RSS KiB", "trace hash"],
        rows,
        title=f"repro bench — {scale} scale, seed={doc.get('seed')}, "
              f"python {doc.get('python')}",
    )
