"""Multiprocess seed sweeps (``repro sweep``).

One simulation is single-threaded by construction — determinism comes
from a totally ordered event loop — so the way to "run faster than the
hardware allows" per seed is to run *many seeds at once*.  This module
fans a scenario's seeds across a ``multiprocessing`` pool, one fully
independent simulator per worker, and proves the fan-out is safe: every
worker returns the seed's behavior fingerprint ``(trace_hash,
metrics_digest)``, and :func:`run_sweep` with ``check_determinism``
asserts the parallel run produced the identical fingerprint set as a
serial run of the same seeds.  That is the property chaos Monte Carlo
needs — more seeds checked per CPU-hour, with a proof that parallelism
changed nothing but the wall clock.

Each worker runs the seed twice, exactly like ``repro bench`` does:
once untraced for an honest wall-clock measurement, once under
:class:`~repro.perf.harness.HashingTracer` for the fingerprint, and
cross-checks the two runs' metrics digests (tracing must never perturb
a simulation).

Workers prefer the ``fork`` start method (cheap on Linux, inherits the
parent's hash seed) and fall back to ``spawn`` elsewhere; trace hashes
are hash-seed-independent either way — the committed BENCH_CORE
fingerprints already prove that across CI runs.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ReproError
from .harness import HashingTracer, metrics_digest
from .scenarios import SCENARIOS


class SweepError(ReproError):
    """A sweep misbehaved: unknown scenario, bad seed spec, or a
    parallel run whose fingerprints diverged from the serial run."""


def parse_seeds(spec: str) -> list[int]:
    """Parse a seed spec: ``"42"``, ``"1-8"``, or ``"1,2,5-7"``.

    Ranges are inclusive.  Order is preserved; duplicates are rejected
    (a sweep result set is keyed by seed).
    """
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        lo, dash, hi = part.partition("-")
        try:
            if dash:
                start, stop = int(lo), int(hi)
                if stop < start:
                    raise ValueError
                seeds.extend(range(start, stop + 1))
            else:
                seeds.append(int(part))
        except ValueError:
            raise SweepError(f"bad seed spec {part!r} (want N, N-M, or N,M)")
    if not seeds:
        raise SweepError(f"empty seed spec {spec!r}")
    if len(set(seeds)) != len(seeds):
        raise SweepError(f"duplicate seeds in spec {spec!r}")
    return seeds


@dataclass(frozen=True)
class SeedResult:
    """One seed's measured + fingerprinted outcome."""

    seed: int
    events: int
    ops: int
    wall_s: float
    events_per_sec: float
    trace_hash: str
    trace_events: int
    metrics_digest: str

    @property
    def fingerprint(self) -> tuple[int, str, str]:
        return (self.seed, self.trace_hash, self.metrics_digest)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "events": self.events,
            "ops": self.ops,
            "wall_s": round(self.wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "trace_hash": self.trace_hash,
            "trace_events": self.trace_events,
            "metrics_digest": self.metrics_digest,
        }


@dataclass(frozen=True)
class SweepReport:
    """A whole sweep: per-seed results plus aggregate throughput."""

    scenario: str
    quick: bool
    workers: int
    results: tuple[SeedResult, ...]
    wall_s: float  # whole-sweep wall clock, all workers included

    @property
    def total_events(self) -> int:
        return sum(result.events for result in self.results)

    @property
    def aggregate_events_per_sec(self) -> float:
        """System throughput: events completed across all workers per
        second of sweep wall clock — the number cross-core fan-out is
        allowed to scale, unlike any single seed's rate."""
        return self.total_events / max(self.wall_s, 1e-9)

    @property
    def serial_wall_s(self) -> float:
        """What the same seeds cost back-to-back (sum of per-seed
        walls) — the denominator of the parallel speedup."""
        return sum(result.wall_s for result in self.results)

    def fingerprints(self) -> frozenset[tuple[int, str, str]]:
        return frozenset(result.fingerprint for result in self.results)

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "quick": self.quick,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 4),
            "aggregate_events_per_sec": round(self.aggregate_events_per_sec, 1),
            "seeds": [result.to_json() for result in self.results],
        }


def _run_seed(task: tuple[str, int, bool]) -> SeedResult:
    """Worker body: measure + fingerprint one (scenario, seed).

    Module-level so it pickles under the ``spawn`` start method.
    """
    name, seed, quick = task
    scenario = SCENARIOS[name]
    start = time.perf_counter()
    timed = scenario.run(seed, quick, None)
    wall = max(time.perf_counter() - start, 1e-9)
    digest = metrics_digest(timed.sim.metrics.snapshot())
    events = timed.sim.events_processed

    tracer = HashingTracer()
    traced = scenario.run(seed, quick, tracer)
    traced_digest = metrics_digest(traced.sim.metrics.snapshot())
    if traced_digest != digest or traced.sim.events_processed != events:
        raise SweepError(
            f"scenario {name!r} is nondeterministic at seed {seed}: "
            "traced re-run diverged from the timed run"
        )
    return SeedResult(
        seed=seed,
        events=events,
        ops=timed.ops,
        wall_s=wall,
        events_per_sec=events / wall,
        trace_hash=tracer.hexdigest(),
        trace_events=tracer.count,
        metrics_digest=digest,
    )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_sweep(
    scenario: str,
    seeds: Sequence[int] | Iterable[int],
    workers: int = 1,
    quick: bool = True,
) -> SweepReport:
    """Run ``scenario`` at every seed, fanned across ``workers``
    processes (``workers <= 1`` runs serially in-process).

    Results come back in seed order regardless of which worker finished
    first, so two sweeps over the same seeds are directly comparable.
    """
    if scenario not in SCENARIOS:
        raise SweepError(
            f"unknown scenario {scenario!r} "
            f"(have: {', '.join(sorted(SCENARIOS))})"
        )
    seed_list = list(seeds)
    if not seed_list:
        raise SweepError("no seeds to sweep")
    if workers < 1:
        raise SweepError("workers must be >= 1")
    tasks = [(scenario, seed, quick) for seed in seed_list]
    start = time.perf_counter()
    if workers == 1:
        results = [_run_seed(task) for task in tasks]
    else:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            results = pool.map(_run_seed, tasks)
    wall = max(time.perf_counter() - start, 1e-9)
    return SweepReport(
        scenario=scenario,
        quick=quick,
        workers=workers,
        results=tuple(results),
        wall_s=wall,
    )


def check_parallel_determinism(
    scenario: str,
    seeds: Sequence[int],
    workers: int,
    quick: bool = True,
) -> tuple[SweepReport, SweepReport]:
    """Run the sweep serially and in parallel; raise unless both
    produce the identical ``(seed, trace_hash, metrics_digest)`` set.

    Returns ``(serial, parallel)`` reports on success so callers can
    show the speedup next to the proof.
    """
    serial = run_sweep(scenario, seeds, workers=1, quick=quick)
    parallel = run_sweep(scenario, seeds, workers=workers, quick=quick)
    mine, theirs = serial.fingerprints(), parallel.fingerprints()
    if mine != theirs:
        diverged = sorted(
            {seed for seed, _h, _d in mine.symmetric_difference(theirs)}
        )
        raise SweepError(
            f"parallel sweep diverged from serial for scenario "
            f"{scenario!r} at seed(s) {diverged} — worker isolation is "
            "broken (shared state leaked across simulations?)"
        )
    return serial, parallel
