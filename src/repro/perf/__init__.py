"""Seeded macro-benchmark harness (``repro bench``).

The perf package is the repo's measurement loop: a small set of
macro scenarios — quorum YCSB through the workload driver, the
sharded ring, multipaxos, and a CRDT merge storm — each a
deterministic function of one seed, timed end-to-end and written to
``BENCH_CORE.json`` (events/sec, ops/sec, wall time, peak RSS per
scenario).  Every scenario is also re-run under a hashing tracer so a
perf PR can prove behavior is unchanged: same seed ⇒ same trace hash
and same ``metrics.snapshot()`` digest, before and after an
optimization.

Entry points::

    python -m repro bench --quick              # CI smoke scale
    python -m repro bench --output BENCH_CORE.json
    python -m repro bench --quick --compare BENCH_CORE.json
"""

from .harness import (
    DEFAULT_SEED,
    SCHEMA,
    HashingTracer,
    PerfHarnessError,
    ScenarioReport,
    compare,
    render_report,
    run_scenario,
    run_suite,
)
from .scenarios import SCENARIOS, Scenario, ScenarioOutcome

__all__ = [
    "DEFAULT_SEED",
    "SCHEMA",
    "SCENARIOS",
    "HashingTracer",
    "PerfHarnessError",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioReport",
    "compare",
    "render_report",
    "run_scenario",
    "run_suite",
]
