"""Seeded macro-benchmark harness (``repro bench``).

The perf package is the repo's measurement loop: a small set of
macro scenarios — quorum YCSB through the workload driver, the
sharded ring, multipaxos, and a CRDT merge storm — each a
deterministic function of one seed, timed end-to-end and written to
``BENCH_CORE.json`` (events/sec, ops/sec, wall time, peak RSS per
scenario).  Every scenario is also re-run under a hashing tracer so a
perf PR can prove behavior is unchanged: same seed ⇒ same trace hash
and same ``metrics.snapshot()`` digest, before and after an
optimization.

Entry points::

    python -m repro bench --quick              # CI smoke scale
    python -m repro bench --quick --workers 4  # scenarios across cores
    python -m repro bench --output BENCH_CORE.json
    python -m repro bench --quick --compare BENCH_CORE.json
    python -m repro sweep --scenario quorum_ycsb --seeds 1-8 --workers 4

``repro sweep`` (:mod:`repro.perf.parallel`) fans one scenario's seeds
across a multiprocess pool and can prove the fan-out changed nothing:
the parallel run must produce the identical set of per-seed
``(trace_hash, metrics_digest)`` fingerprints as a serial run.
"""

from .harness import (
    DEFAULT_SEED,
    RSS_TOLERANCE,
    SCHEMA,
    HashingTracer,
    PerfHarnessError,
    ScenarioReport,
    compare,
    metrics_digest,
    render_report,
    run_scenario,
    run_suite,
)
from .parallel import (
    SeedResult,
    SweepError,
    SweepReport,
    check_parallel_determinism,
    parse_seeds,
    run_sweep,
)
from .scenarios import DEFAULT_SCENARIOS, SCENARIOS, Scenario, ScenarioOutcome

__all__ = [
    "DEFAULT_SCENARIOS",
    "DEFAULT_SEED",
    "RSS_TOLERANCE",
    "SCHEMA",
    "SCENARIOS",
    "HashingTracer",
    "PerfHarnessError",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioReport",
    "SeedResult",
    "SweepError",
    "SweepReport",
    "check_parallel_determinism",
    "compare",
    "metrics_digest",
    "parse_seeds",
    "render_report",
    "run_scenario",
    "run_suite",
    "run_sweep",
]
