"""The elastic-scaling demo behind ``repro scale``.

One seeded scenario exercising the whole ISSUE-7 stack end to end:
a sharded quorum store starts at ``shards`` shards, an open-loop YCSB
stream keeps writes in flight the entire time, and a scripted control
loop scales the ring out to ``peak`` shards and back down while the
traffic flows.  Every ring move streams its key ranges through the
:class:`~repro.sharding.handoff.RingMove` handoff protocol; a
:class:`~repro.membership.MembershipService` gossip overlay tracks the
changing topology live.

After the traffic window the store settles and two checkers deliver
the verdicts that make this a conformance scenario rather than a
screenshot:

* **durability** — every key ever acknowledged is read back and
  explained by :func:`~repro.checkers.check_no_lost_writes` (scaling
  must lose zero acked writes);
* **convergence** — all replica views agree
  (:func:`~repro.checkers.check_convergence` over the
  ownership-filtered sharded snapshots).

The run is traced through a :class:`~repro.perf.HashingTracer`, so the
whole scenario has a per-seed fingerprint; the CI rebalance-smoke job
runs it twice (``--check-determinism``) and fails on drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..checkers import check_convergence, check_no_lost_writes, read_back
from ..membership import MembershipService
from ..perf.harness import HashingTracer
from ..sim import FixedLatency, Network, Simulator, spawn
from ..workload import PoissonArrivals, YCSBWorkload
from ..workload.openloop import OpenLoopDriver
from .sharded import ShardedStore

__all__ = ["ScaleReport", "run_scale_demo", "format_scale"]

#: Per-node capacity; small so per-shard queueing is visible but the
#: offered load stays comfortably under aggregate capacity.
SERVICE_TIME = 1.0


@dataclass
class ScaleReport:
    """Everything ``repro scale`` prints, plus the pass/fail inputs."""

    seed: int
    protocol: str
    shards_start: int
    peak: int
    shards_end: int
    scaled_out_at: float | None = None
    scaled_in_at: float | None = None
    offered: int = 0
    ok_ops: int = 0
    failed: int = 0
    shed: int = 0
    goodput: float = 0.0
    p99_write: float = 0.0
    keys_copied: int = 0
    ranges_flipped: int = 0
    writes_rejected: int = 0
    handoff_retries: int = 0
    gossip_transitions: int = 0
    keys_checked: int = 0
    routed: dict = field(default_factory=dict)
    durability_ok: bool = False
    durability_problems: list = field(default_factory=list)
    converged: bool = False
    fingerprint: str = ""

    @property
    def scaled(self) -> bool:
        """Both legs of the resize actually committed."""
        return (self.scaled_out_at is not None
                and self.scaled_in_at is not None
                and self.shards_end == self.shards_start)

    @property
    def ok(self) -> bool:
        return self.scaled and self.durability_ok and self.converged


def run_scale_demo(
    seed: int = 42,
    protocol: str = "quorum",
    shards: int = 2,
    peak: int = 4,
    rate: float = 600.0,
    records: int = 120,
    duration: float = 3000.0,
    scale_out_at: float = 300.0,
    scale_in_at: float = 1500.0,
    timeout: float = 400.0,
) -> ScaleReport:
    """Scale ``shards`` → ``peak`` → ``shards`` under open-loop YCSB-A
    load; deterministic per ``seed``."""
    report = ScaleReport(seed=seed, protocol=protocol, shards_start=shards,
                         peak=peak, shards_end=shards)
    tracer = HashingTracer()
    sim = Simulator(seed, tracer=tracer)
    network = Network(sim, latency=FixedLatency(2.0))
    store = ShardedStore(sim, network, protocol=protocol, shards=shards,
                         nodes_per_shard=3, service_time=SERVICE_TIME)
    membership = MembershipService(sim, seed=seed)
    store.attach_membership(membership)
    membership.start()

    def control():
        yield scale_out_at
        yield store.resize(peak)
        report.scaled_out_at = sim.now
        yield max(0.0, scale_in_at - sim.now)
        yield store.resize(shards)
        report.scaled_in_at = sim.now

    spawn(sim, control(), name="scale-control")

    # YCSB-A: half the stream is writes, so acked writes span every
    # phase of both ring moves — exactly what the durability checker
    # needs to bite on.
    ops = YCSBWorkload("A", records=records, seed=seed)
    driver = OpenLoopDriver(
        store, PoissonArrivals(rate=rate, seed=seed), ops,
        sessions=200, timeout=timeout, seed=seed,
    )
    result = driver.run(duration)
    membership.stop()
    store.settle()
    sim.run()

    report.shards_end = len(store.shard_ids)
    report.offered = result.offered
    report.ok_ops = result.ok
    report.failed = result.failed
    report.shed = result.shed
    report.goodput = result.goodput
    report.p99_write = result.write_latency.percentile(99)
    metrics = sim.metrics
    report.keys_copied = metrics.counter("handoff.keys_copied").value
    report.ranges_flipped = metrics.counter("handoff.ranges_flipped").value
    report.writes_rejected = metrics.counter("handoff.writes_rejected").value
    report.handoff_retries = metrics.counter("handoff.retries").value
    report.gossip_transitions = metrics.counter("membership.transitions").value
    report.routed = store.routed_ops()

    written = {op.key for op in result.history if op.is_write}
    final = read_back(store, written, timeout=timeout)
    durability = check_no_lost_writes(result.history, final)
    report.keys_checked = durability.checked_ops
    report.durability_ok = durability.ok
    report.durability_problems = [v.description for v in durability.violations]
    report.converged = check_convergence(store.snapshots()).ok
    report.fingerprint = tracer.hexdigest()
    return report


def format_scale(report: ScaleReport) -> str:
    """The verdict block ``repro scale`` prints."""
    out_at = (f"{report.scaled_out_at:.0f}ms"
              if report.scaled_out_at is not None else "never")
    in_at = (f"{report.scaled_in_at:.0f}ms"
             if report.scaled_in_at is not None else "never")
    lines = [
        f"elastic scale demo: protocol={report.protocol} seed={report.seed} "
        f"({report.shards_start} -> {report.peak} -> {report.shards_end} "
        f"shards under open-loop YCSB-A)",
        f"  scale-out committed at {out_at}, scale-in committed at {in_at}",
        f"  offered {report.offered} ops: {report.ok_ops} ok, "
        f"{report.failed} failed ({report.shed} shed), "
        f"goodput {report.goodput:.0f} ops/s, write p99 "
        f"{report.p99_write:.1f}ms",
        f"  handoff: {report.keys_copied} keys copied over "
        f"{report.ranges_flipped} range flips, "
        f"{report.writes_rejected} writes deferred mid-cutover, "
        f"{report.handoff_retries} retries",
        f"  membership: {report.gossip_transitions} status transitions "
        f"observed by gossip",
        f"  routing: " + " ".join(
            f"{shard}={count}" for shard, count in sorted(
                report.routed.items(), key=lambda kv: str(kv[0]))
        ),
    ]
    lines.append(
        f"no acked write lost: {report.durability_ok} "
        f"({report.keys_checked} keys checked)"
    )
    for problem in report.durability_problems[:5]:
        lines.append(f"  VIOLATION: {problem}")
    lines.append(f"converged after scaling: {report.converged}")
    lines.append(f"fingerprint: {report.fingerprint[:32]}")
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)
