"""Key-range sharding over independent replicated stores.

Replication answers durability and read latency; it does nothing for
write throughput — every replica still applies every write.  The
standard fix is orthogonal: partition the keyspace over N independent
replica groups ("shards"), each running its own instance of *any*
replication protocol.  :class:`ShardedStore` is that router, built
from two existing pieces:

* the :class:`~repro.replication.HashRing` (one vnode-weighted entry
  per shard) decides ownership, and
* the :mod:`repro.api` registry builds one store per shard, so the
  same router shards Dynamo quorums, Paxos groups, or chains without
  caring which.

The router is itself a :class:`~repro.api.ConsistentStore`, so the
workload driver, the checkers, and the conformance suite run against a
sharded store exactly as against a single cluster.  Routing metrics
publish under ``shard.*`` in ``sim.metrics``.

Capacity note: with :attr:`ServerNode.service_time
<repro.replication.common.ServerNode.service_time>` set, each shard's
nodes saturate independently — which is what makes throughput scale
with shard count (benchmarks/test_e13_sharding.py measures it).
"""

from __future__ import annotations

from typing import Any, Hashable

from ..api import registry
from ..api.store import ConsistentStore, StoreCapabilities, StoreSession
from ..histories import History
from ..replication import HashRing
from ..sim import Network, Simulator


class ShardedSession(StoreSession):
    """Routes each op to the owning shard's session (created lazily)."""

    def __init__(self, store: "ShardedStore", name: Hashable,
                 session_opts: dict) -> None:
        self.name = name
        self.client_id = None
        self._store = store
        self._opts = session_opts
        self._sub: dict[Hashable, StoreSession] = {}

    def _session_for(self, key: Hashable) -> StoreSession:
        shard_id = self._store.shard_of(key)
        session = self._sub.get(shard_id)
        if session is None:
            opts = dict(self._opts)
            if self._store.spec.capabilities.networked:
                # Per-shard clusters number their clients independently;
                # on a shared network the ids would collide, so the
                # router hands out globally unique ones.
                self._store._clients += 1
                opts.setdefault(
                    "client_id", f"{shard_id}-client{self._store._clients}"
                )
            session = self._store.shards[shard_id].session(
                f"{self.name}@{shard_id}", **opts
            )
            self._sub[shard_id] = session
        self._store._ops_routed.inc()
        self._store._per_shard_ops[shard_id].inc()
        return session

    def put(self, key, value, timeout=None):
        return self._session_for(key).put(key, value, timeout=timeout)

    def get(self, key, mode=None, timeout=None):
        return self._session_for(key).get(key, mode=mode, timeout=timeout)


class ShardedStore(ConsistentStore):
    """N independent per-shard clusters behind one store surface.

    ::

        store = ShardedStore(sim, net, protocol="quorum", shards=4,
                             nodes_per_shard=3, n=3, r=2, w=2)
        session = store.session("alice")
        session.put("user1", "x")       # routed by ring ownership

    ``protocol`` is any registry name; extra kwargs go to every
    per-shard cluster.  Shard ``i``'s nodes are named
    ``shard{i}-n{j}`` so a sharded deployment stays inspectable in
    traces and fault injection.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        protocol: str = "quorum",
        shards: int = 2,
        nodes_per_shard: int = 3,
        vnodes: int = 64,
        service_time: float = 0.0,
        **cluster_kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        if shards < 1:
            raise ValueError("need at least one shard")
        spec = registry.get(protocol)
        self.protocol = protocol
        self.spec = spec
        self.shard_ids = [f"shard{i}" for i in range(shards)]
        self.ring = HashRing(self.shard_ids, vnodes=vnodes)
        self.shards: dict[Hashable, ConsistentStore] = {}
        for shard_id in self.shard_ids:
            node_ids = [
                f"{shard_id}-n{j}" for j in range(nodes_per_shard)
            ]
            self.shards[shard_id] = spec.build(
                sim, network, nodes=nodes_per_shard, node_ids=node_ids,
                service_time=service_time, **cluster_kwargs,
            )
        self.capabilities = StoreCapabilities(
            name=f"sharded[{protocol}x{shards}]",
            description=f"{shards}-shard router over {protocol}",
            read_modes=spec.capabilities.read_modes,
            session_guarantees=(),
            tentative_reads=spec.capabilities.tentative_reads,
            multi_value_reads=spec.capabilities.multi_value_reads,
            networked=spec.capabilities.networked,
            has_history=spec.capabilities.has_history,
            survives_replica_crash=spec.capabilities.survives_replica_crash,
            retry_safe_reads=spec.capabilities.retry_safe_reads,
            retry_safe_writes=spec.capabilities.retry_safe_writes,
            failover_reads=spec.capabilities.failover_reads,
            failover_writes=spec.capabilities.failover_writes,
        )
        metrics = sim.metrics
        self._ops_routed = metrics.counter("shard.ops_routed")
        self._per_shard_ops = {
            shard_id: metrics.counter(f"shard.{shard_id}.ops")
            for shard_id in self.shard_ids
        }
        metrics.gauge("shard.count").set(shards)
        self._sessions = 0
        self._clients = 0

    # ------------------------------------------------------------------
    def shard_of(self, key: Hashable) -> Hashable:
        """The shard owning ``key`` (ring coordinator)."""
        return self.ring.coordinator(key)

    def session(self, name: Hashable | None = None, **opts: Any) -> StoreSession:
        self._sessions += 1
        name = name if name is not None else f"sharded-{self._sessions}"
        return ShardedSession(self, name, opts)

    def server_ids(self) -> list[Hashable]:
        return [
            node_id
            for shard_id in self.shard_ids
            for node_id in self.shards[shard_id].server_ids()
        ]

    def history(self) -> History:
        """Union of the per-shard histories (keys never span shards,
        so per-key version orders are unaffected by the merge)."""
        ops = []
        for shard_id in self.shard_ids:
            ops.extend(self.shards[shard_id].history())
        return History(ops)

    def snapshots(self) -> list[dict]:
        return [
            snapshot
            for shard_id in self.shard_ids
            for snapshot in self.shards[shard_id].snapshots()
        ]

    def settle(self) -> None:
        for shard_id in self.shard_ids:
            self.shards[shard_id].settle()

    def routed_ops(self) -> dict[Hashable, int]:
        """Ops routed per shard so far (load-balance check)."""
        return {
            shard_id: counter.value
            for shard_id, counter in self._per_shard_ops.items()
        }
