"""Key-range sharding over independent replicated stores.

Replication answers durability and read latency; it does nothing for
write throughput — every replica still applies every write.  The
standard fix is orthogonal: partition the keyspace over N independent
replica groups ("shards"), each running its own instance of *any*
replication protocol.  :class:`ShardedStore` is that router, built
from two existing pieces:

* the :class:`~repro.replication.HashRing` (one vnode-weighted entry
  per shard) decides ownership, and
* the :mod:`repro.api` registry builds one store per shard, so the
  same router shards Dynamo quorums, Paxos groups, or chains without
  caring which.

The router is itself a :class:`~repro.api.ConsistentStore`, so the
workload driver, the checkers, and the conformance suite run against a
sharded store exactly as against a single cluster.  Routing metrics
publish under ``shard.*`` in ``sim.metrics``.

Elasticity (ISSUE 7): the topology is *live*.  :meth:`ShardedStore
.add_shard` builds a new per-shard cluster mid-run and streams the
key ranges that change ownership from their donors through a
:class:`~repro.sharding.handoff.RingMove`; :meth:`decommission_shard`
runs the reverse drain; :meth:`resize` chains moves to a target count.
Routing is epoch-aware: ``ring_epoch`` bumps on every per-range flip
and every ring membership change, and sessions revalidate their cached
per-shard sub-sessions against it — a decommissioned shard's sessions
die with its cluster instead of silently routing to a corpse.

Capacity note: with :attr:`ServerNode.service_time
<repro.replication.common.ServerNode.service_time>` set, each shard's
nodes saturate independently — which is what makes throughput scale
with shard count (benchmarks/test_e13_sharding.py measures it).
"""

from __future__ import annotations

from typing import Any, Hashable

from ..api import registry
from ..api.store import (
    ConsistentStore,
    StoreCapabilities,
    StoreSession,
    resolved,
)
from ..errors import OverloadedError, SimulationError
from ..histories import History
from ..replication import HashRing
from ..sim import Future, Network, Simulator, spawn
from .handoff import DRAIN, JOIN, RingMove


class ShardedSession(StoreSession):
    """Routes each op to the owning shard's session (created lazily).

    Cached sub-sessions are revalidated against the store's
    ``ring_epoch``: any entry whose shard cluster was replaced or
    decommissioned is dropped, so a ring change can never route an op
    through a session bound to a retired cluster.
    """

    def __init__(self, store: "ShardedStore", name: Hashable,
                 session_opts: dict) -> None:
        self.name = name
        self.client_id = None
        self.read_preference = session_opts.get("read_preference")
        self.region = session_opts.get("region")
        self._store = store
        self._opts = session_opts
        self._epoch = store.ring_epoch
        # shard id -> (session, the cluster it was opened against)
        self._sub: dict[Hashable, tuple[StoreSession, Any]] = {}

    def _session_for(self, key: Hashable) -> StoreSession:
        store = self._store
        if self._epoch != store.ring_epoch:
            for shard_id, (_session, cluster) in list(self._sub.items()):
                if store.shards.get(shard_id) is not cluster:
                    del self._sub[shard_id]
            self._epoch = store.ring_epoch
        shard_id = store.shard_of(key)
        entry = self._sub.get(shard_id)
        if entry is None:
            opts = dict(self._opts)
            if store.spec.capabilities.networked:
                # Per-shard clusters number their clients independently;
                # on a shared network the ids would collide, so the
                # router hands out globally unique ones.
                store._clients += 1
                opts.setdefault(
                    "client_id", f"{shard_id}-client{store._clients}"
                )
            cluster = store.shards[shard_id]
            session = cluster.session(f"{self.name}@{shard_id}", **opts)
            self._sub[shard_id] = (session, cluster)
        else:
            session = entry[0]
        store._ops_routed.inc()
        store._count_route(shard_id)
        return session

    def put(self, key, value, timeout=None):
        retry_after = self._store.write_blocked(key)
        if retry_after is not None:
            return resolved(self._store.sim, error=OverloadedError(
                f"key {key!r} is mid-handoff", retry_after=retry_after,
            ))
        return self._session_for(key).put(key, value, timeout=timeout)

    def get(self, key, mode=None, timeout=None):
        return self._session_for(key).get(key, mode=mode, timeout=timeout)


class ShardedStore(ConsistentStore):
    """N independent per-shard clusters behind one store surface.

    ::

        store = ShardedStore(sim, net, protocol="quorum", shards=4,
                             nodes_per_shard=3, n=3, r=2, w=2)
        session = store.session("alice")
        session.put("user1", "x")       # routed by ring ownership
        move = store.add_shard()        # live scale-out; move.done is
        sim.run()                       # resolved when routing settled

    ``protocol`` is any registry name; extra kwargs go to every
    per-shard cluster.  Shard ``i``'s nodes are named
    ``shard{i}-n{j}`` so a sharded deployment stays inspectable in
    traces and fault injection.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        protocol: str = "quorum",
        shards: int = 2,
        nodes_per_shard: int = 3,
        vnodes: int = 64,
        service_time: float = 0.0,
        placement: Any = None,
        **cluster_kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        if shards < 1:
            raise ValueError("need at least one shard")
        spec = registry.get(protocol)
        self.protocol = protocol
        self.spec = spec
        self.vnodes = vnodes
        self._nodes_per_shard = nodes_per_shard
        self._service_time = service_time
        self.placement = placement
        self._cluster_kwargs = dict(cluster_kwargs)
        self.shard_ids = [f"shard{i}" for i in range(shards)]
        self._next_shard = shards
        self.ring = HashRing(self.shard_ids, vnodes=vnodes)
        #: Bumped on every routing change a session could have cached
        #: across: per-range flips and ring membership changes.
        self.ring_epoch = 0
        #: Clusters built so far — the per-shard placement stagger, so
        #: shard i's first replica lands in region i % len(regions)
        #: instead of every shard leading from the same region.
        self._built = 0
        self.shards: dict[Hashable, ConsistentStore] = {}
        for shard_id in self.shard_ids:
            self.shards[shard_id] = self._build_cluster(shard_id)
        #: Decommissioned clusters, kept for history()/forensics.
        self._retired: list[tuple[Hashable, ConsistentStore]] = []
        self._move: RingMove | None = None
        #: Optional :class:`repro.membership.MembershipService` kept in
        #: sync with ring moves (see :meth:`attach_membership`).
        self.membership: Any = None
        self.capabilities = StoreCapabilities(
            name=f"sharded[{protocol}x{shards}]",
            description=f"{shards}-shard router over {protocol}",
            read_modes=spec.capabilities.read_modes,
            session_guarantees=(),
            tentative_reads=spec.capabilities.tentative_reads,
            multi_value_reads=spec.capabilities.multi_value_reads,
            networked=spec.capabilities.networked,
            has_history=spec.capabilities.has_history,
            survives_replica_crash=spec.capabilities.survives_replica_crash,
            retry_safe_reads=spec.capabilities.retry_safe_reads,
            retry_safe_writes=spec.capabilities.retry_safe_writes,
            failover_reads=spec.capabilities.failover_reads,
            failover_writes=spec.capabilities.failover_writes,
            elastic=True,
            read_preferences=(
                spec.capabilities.read_preferences
                if placement is not None else ()
            ),
        )
        metrics = sim.metrics
        self._ops_routed = metrics.counter("shard.ops_routed")
        self._per_shard_ops = {
            shard_id: metrics.counter(f"shard.{shard_id}.ops")
            for shard_id in self.shard_ids
        }
        self._g_shards = metrics.gauge("shard.count")
        self._g_shards.set(shards)
        self._g_ring_version = metrics.gauge("ring.version")
        self._sessions = 0
        self._clients = 0

    def _build_cluster(self, shard_id: Hashable) -> ConsistentStore:
        node_ids = [
            f"{shard_id}-n{j}" for j in range(self._nodes_per_shard)
        ]
        kwargs = dict(self._cluster_kwargs)
        if self.placement is not None:
            # Pre-place this shard's replicas with a per-shard stagger
            # (every region leads some shards), then hand the placement
            # down so the per-shard adapter wires follower reads.
            self.placement.spread(node_ids, start=self._built)
            kwargs["placement"] = self.placement
        self._built += 1
        return self.spec.build(
            self.sim, self.network, nodes=self._nodes_per_shard,
            node_ids=node_ids, service_time=self._service_time,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, key: Hashable) -> Hashable:
        """The shard owning ``key``: the ring coordinator, overridden
        per range while a ring move is in flight."""
        move = self._move
        if move is not None:
            route = move.route(key)
            if route is not None:
                return route
        return self.ring.coordinator(key)

    def write_blocked(self, key: Hashable) -> float | None:
        """``retry_after`` (ms) when ``key`` is in a range mid-cutover,
        else None.  Reads are never blocked."""
        move = self._move
        if move is None:
            return None
        return move.write_blocked(key)

    def routing_table(self, region: str) -> dict:
        """Per-region routing: shard id -> locality-ordered server ids.

        A pure function of shard membership and placement — vnode
        layout and ring version bumps do not perturb it (pinned by the
        property tests), so region-local routers can cache it across
        rebalances that keep membership unchanged.
        """
        if self.placement is None:
            raise ValueError("routing_table needs a store built with "
                             "placement=")
        locality = self.placement.locality(region)
        return {
            shard_id: locality.order(self.shards[shard_id].server_ids())
            for shard_id in self.shard_ids
        }

    def _count_route(self, shard_id: Hashable) -> None:
        counter = self._per_shard_ops.get(shard_id)
        if counter is None:
            counter = self.sim.metrics.counter(f"shard.{shard_id}.ops")
            self._per_shard_ops[shard_id] = counter
        counter.inc()

    def session(self, name: Hashable | None = None, **opts: Any) -> StoreSession:
        self._sessions += 1
        name = name if name is not None else f"sharded-{self._sessions}"
        return ShardedSession(self, name, opts)

    def _direct_session(self, shard_id: Hashable, label: str) -> StoreSession:
        """A session pinned to one shard cluster, bypassing routing
        (the handoff data path)."""
        opts: dict[str, Any] = {}
        if self.spec.capabilities.networked:
            self._clients += 1
            opts["client_id"] = f"{shard_id}-{label}{self._clients}"
        return self.shards[shard_id].session(f"{label}@{shard_id}", **opts)

    def _shard_keys(self, shard_id: Hashable) -> list:
        """Keys any replica of ``shard_id`` currently stores (the
        handoff's transfer work-list)."""
        keys: set = set()
        for snapshot in self.shards[shard_id].snapshots():
            keys.update(snapshot)
        return sorted(keys, key=repr)

    # ------------------------------------------------------------------
    # Elasticity
    # ------------------------------------------------------------------
    @property
    def rebalancing(self) -> bool:
        """A ring move is in flight (or parked after a failure)."""
        return self._move is not None

    def add_shard(
        self, shard_id: Hashable | None = None, **move_opts: Any
    ) -> RingMove:
        """Scale out: build a fresh cluster and stream the ranges it
        now owns from their donor shards.  Returns the in-flight
        :class:`~repro.sharding.handoff.RingMove`; routing flips
        per-range as transfers complete and the ring itself is updated
        when ``move.done`` resolves."""
        if self._move is not None:
            raise SimulationError(
                "a ring move is already in flight; one move at a time"
            )
        if shard_id is None:
            shard_id = f"shard{self._next_shard}"
            self._next_shard += 1
        if shard_id in self.shards:
            raise ValueError(f"shard {shard_id!r} already exists")
        self.shards[shard_id] = self._build_cluster(shard_id)
        self.shard_ids.append(shard_id)
        self._g_shards.set(len(self.shards))
        if self.membership is not None:
            for node_id in self.shards[shard_id].server_ids():
                self.membership.add_node(self.network.node(node_id))
        self.sim.annotate("ring", action="add_shard", shard=shard_id)
        move = RingMove(self, JOIN, shard_id, **move_opts)
        self._move = move
        move.start()
        return move

    def decommission_shard(
        self, shard_id: Hashable | None = None, **move_opts: Any
    ) -> RingMove:
        """Scale in: drain ``shard_id`` (default: the newest shard) to
        the shards inheriting its ranges, then retire its cluster."""
        if self._move is not None:
            raise SimulationError(
                "a ring move is already in flight; one move at a time"
            )
        if shard_id is None:
            shard_id = self.shard_ids[-1]
        if shard_id not in self.ring.nodes:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        if len(self.ring.nodes) <= 1:
            raise ValueError("cannot decommission the last shard")
        self.sim.annotate("ring", action="decommission_shard",
                          shard=shard_id)
        move = RingMove(self, DRAIN, shard_id, **move_opts)
        self._move = move
        move.start()
        return move

    def resize(self, shards: int, **move_opts: Any) -> Future:
        """Chain ring moves until the store has ``shards`` shards.
        Resolves with the final shard count."""
        if shards < 1:
            raise ValueError("need at least one shard")
        future = Future(self.sim, label=f"resize->{shards}")

        def script():
            try:
                while True:
                    if self._move is not None:
                        yield self._move.done
                    elif len(self.ring.nodes) < shards:
                        yield self.add_shard(**move_opts).done
                    elif len(self.ring.nodes) > shards:
                        yield self.decommission_shard(**move_opts).done
                    else:
                        break
                future.try_resolve(len(self.ring.nodes))
            except BaseException as exc:
                future.try_fail(exc)
                raise

        spawn(self.sim, script(), name=f"resize->{shards}")
        return future

    def _on_range_flip(self, move: RingMove, counterpart: Hashable,
                       fingerprint: str, keys: int) -> None:
        """A range's transfer fingerprint was acked: routing flipped."""
        self.ring_epoch += 1
        self.sim.annotate(
            "handoff", phase="flip", move=move.kind, subject=move.subject,
            counterpart=counterpart, keys=keys, fingerprint=fingerprint,
        )

    def _finish_move(self, move: RingMove) -> None:
        """Every range flipped: commit the membership change."""
        if move.kind == JOIN:
            self.ring.add_node(move.subject)
        else:
            self.ring.remove_node(move.subject)
            cluster = self.shards.pop(move.subject)
            self.shard_ids.remove(move.subject)
            self._retired.append((move.subject, cluster))
            for node_id in cluster.server_ids():
                if self.membership is not None:
                    self.membership.forget(node_id)
                node = self.network.node(node_id)
                if node is not None and not node.crashed:
                    # The network has no deregister; a retired node is
                    # crashed so stray messages to it die on arrival.
                    node.crash()
        self.ring_epoch += 1
        self._move = None
        self._g_shards.set(len(self.shards))
        self._g_ring_version.set(self.ring.version)
        self.sim.annotate(
            "ring", action="committed", move=move.kind,
            shard=move.subject, version=self.ring.version,
            shards=len(self.shards),
        )

    def attach_membership(self, membership: Any) -> None:
        """Monitor every server node with ``membership`` and keep the
        overlay in sync across future ring moves."""
        self.membership = membership
        membership.watch(self)

    # ------------------------------------------------------------------
    # Store surface
    # ------------------------------------------------------------------
    def server_ids(self) -> list[Hashable]:
        return [
            node_id
            for shard_id in self.shard_ids
            for node_id in self.shards[shard_id].server_ids()
        ]

    def history(self) -> History:
        """Union of the per-shard histories — including retired shards,
        whose pre-drain operations are part of the record."""
        ops = []
        for shard_id in self.shard_ids:
            ops.extend(self.shards[shard_id].history())
        for _shard_id, cluster in self._retired:
            ops.extend(cluster.history())
        return History(ops)

    def snapshots(self) -> list[dict]:
        """Ownership-filtered replica views, merged across shards.

        Replica ``i`` of the sharded store is the union of replica
        ``i``'s snapshot from every shard, restricted to the keys that
        shard currently owns — the restriction masks stale donor
        copies left behind by ring moves.  If every shard's replicas
        agree internally the merged views are identical, so the
        standard convergence checker works unchanged."""
        groups = []
        for shard_id in self.shard_ids:
            filtered = [
                {
                    key: value for key, value in snapshot.items()
                    if self.shard_of(key) == shard_id
                }
                for snapshot in self.shards[shard_id].snapshots()
            ]
            if filtered:
                groups.append(filtered)
        if not groups:
            return []
        width = max(len(group) for group in groups)
        merged: list[dict] = []
        for index in range(width):
            combined: dict = {}
            for group in groups:
                combined.update(group[index % len(group)])
            merged.append(combined)
        return merged

    def settle(self) -> None:
        for shard_id in self.shard_ids:
            self.shards[shard_id].settle()

    def routed_ops(self) -> dict[Hashable, int]:
        """Ops routed per *active* shard so far (load-balance check)."""
        return {
            shard_id: self._per_shard_ops[shard_id].value
            for shard_id in self.shard_ids
            if shard_id in self._per_shard_ops
        }
