"""Horizontal partitioning: a key-range router over replicated stores,
with live ring moves (elastic scale-out/scale-in via handoff)."""

from .handoff import RingMove, transfer_fingerprint
from .sharded import ShardedSession, ShardedStore

__all__ = [
    "ShardedStore",
    "ShardedSession",
    "RingMove",
    "transfer_fingerprint",
]
