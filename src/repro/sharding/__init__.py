"""Horizontal partitioning: a key-range router over replicated stores."""

from .sharded import ShardedSession, ShardedStore

__all__ = ["ShardedStore", "ShardedSession"]
