"""Live ring moves: the handoff protocol behind elastic sharding.

A :class:`RingMove` transfers ownership of the key ranges that change
hands when a shard joins (``kind="join"``) or leaves
(``kind="drain"``) the :class:`~repro.sharding.ShardedStore` ring.  It
generalizes the quorum store's hinted-handoff idiom — data destined
for a node that cannot own it yet is staged and forwarded, and the
*donor keeps serving* until the recipient provably has everything:

1. **Copy** — stream every key of the moving range from the donor
   shard to the recipient through ordinary store sessions (so the
   transfer rides the same network, queues, and admission control as
   client traffic).  Donor serves reads *and* writes throughout.
2. **Freeze + delta** — writes to the moving range are briefly
   rejected at the router with a retryable
   :class:`~repro.errors.OverloadedError` (reads stay on the donor),
   in-flight writes drain, and delta passes re-copy keys whose donor
   token advanced until one full pass is clean.
3. **Flip** — in the same simulation event that observes the clean
   pass, the range's transfer fingerprint (a blake2b over the sorted
   ``(key, token, value)`` set) is recorded and routing flips
   atomically: the recipient owns the range, writes unfreeze.
4. **Tail sweep** — a post-flip safety pass re-copies any straggler
   write that was admitted at the donor before the freeze but landed
   after the clean pass, skipping keys the recipient has already
   re-written (the straggler lost the race and LWW would resolve the
   same way).

Version tokens are threaded donor → recipient where the protocol
client supports causal observation (``client._observe``), so e.g.
quorum Lamport stamps stay monotonic across the transfer and a copied
value can never shadow a newer write on the recipient.

Every operation retries on failure with deterministic backoff — a
move started mid-partition simply stalls until the network heals.
Retries are bounded (``max_attempts``): exhaustion raises a loud
:class:`~repro.errors.SimulationError` and parks the move in a failed
state (flipped ranges stay flipped, pending ranges keep routing to
their donor) rather than hanging the simulation or silently dropping
data.  The transfer runs as a *foreground* process, so
``sim.run()`` without a deadline completes the move — while daemon
events (nemesis heals, gossip) keep firing alongside.

Metrics publish under ``handoff.*``; every phase transition is
trace-annotated, so ring moves are part of a run's fingerprint.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Hashable

from ..errors import ReproError, SimulationError
from ..sim import Future, spawn

if TYPE_CHECKING:  # pragma: no cover
    from .sharded import ShardedStore

JOIN, DRAIN = "join", "drain"


def transfer_fingerprint(copied: dict) -> str:
    """Canonical digest of a transferred range: blake2b over the
    sorted ``(key, token, value)`` triples."""
    digest = hashlib.blake2b(digest_size=16)
    for key in sorted(copied, key=repr):
        token, value = copied[key]
        digest.update(repr((key, str(token), value)).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


class RingMove:
    """One in-flight ring move (a join or a drain)."""

    def __init__(
        self,
        store: "ShardedStore",
        kind: str,
        subject: Hashable,
        op_timeout: float = 250.0,
        drain_ms: float = 30.0,
        max_attempts: int = 64,
        retry_base: float = 10.0,
        retry_cap: float = 200.0,
        max_delta_passes: int = 32,
        parallelism: int = 8,
    ) -> None:
        if kind not in (JOIN, DRAIN):
            raise ValueError(f"unknown move kind {kind!r}")
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.store = store
        self.sim = store.sim
        self.kind = kind
        #: The shard joining (``join``) or leaving (``drain``).
        self.subject = subject
        self.op_timeout = op_timeout
        self.drain_ms = drain_ms
        self.max_attempts = max_attempts
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.max_delta_passes = max_delta_passes
        #: Keys copied concurrently per pass.  Sequential copy is
        #: correct but far too slow when the move races live load —
        #: every key's RTT would stack on top of the service queues.
        self.parallelism = parallelism

        from ..replication import HashRing  # local import: no cycle

        self.old_ring = store.ring
        members = list(store.ring.nodes)
        if kind == JOIN:
            members.append(subject)
        else:
            members.remove(subject)
        self.new_ring = HashRing(members, vnodes=store.ring.vnodes)

        #: Counterpart shards (donors of a join, recipients of a
        #: drain) whose range has already flipped to the new owner.
        self.flipped: set[Hashable] = set()
        #: The counterpart whose moving range is currently
        #: write-frozen (None outside the freeze+delta phase).
        self.frozen: Hashable | None = None
        self.fingerprints: dict[Hashable, str] = {}
        self.done: Future = Future(store.sim, label=f"move:{kind}:{subject}")
        self.failed = False
        self.process: Any = None

        metrics = store.sim.metrics
        self._m_keys = metrics.counter("handoff.keys_copied")
        self._m_retries = metrics.counter("handoff.retries")
        self._m_rejected = metrics.counter("handoff.writes_rejected")
        self._m_tail = metrics.counter("handoff.tail_copies")
        self._m_ranges = metrics.counter("handoff.ranges_flipped")

    # ------------------------------------------------------------------
    # Routing (called per-op by the store; must stay cheap)
    # ------------------------------------------------------------------
    def moved(self, key: Hashable) -> bool:
        if self.kind == JOIN:
            return self.new_ring.coordinator(key) == self.subject
        return self.old_ring.coordinator(key) == self.subject

    def counterpart(self, key: Hashable) -> Hashable:
        """The shard on the other side of this key's transfer."""
        if self.kind == JOIN:
            return self.old_ring.coordinator(key)   # donor
        return self.new_ring.coordinator(key)       # recipient

    def route(self, key: Hashable) -> Hashable | None:
        """Where the store should route ``key``, or None when the move
        does not affect it."""
        if not self.moved(key):
            return None
        counterpart = self.counterpart(key)
        if self.kind == JOIN:
            return self.subject if counterpart in self.flipped \
                else counterpart
        return counterpart if counterpart in self.flipped else self.subject

    def write_blocked(self, key: Hashable) -> float | None:
        """``retry_after`` (ms) when ``key``'s range is mid-cutover."""
        if self.frozen is None or not self.moved(key):
            return None
        if self.counterpart(key) != self.frozen:
            return None
        self._m_rejected.inc()
        return self.drain_ms

    # ------------------------------------------------------------------
    # Transfer process
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.process = spawn(
            self.sim, self._script(),
            name=f"handoff-{self.kind}-{self.subject}",
        )

    def _donor_recipient(self, counterpart: Hashable) -> tuple:
        if self.kind == JOIN:
            return counterpart, self.subject
        return self.subject, counterpart

    def _counterparts(self) -> list[Hashable]:
        """Every shard that *can* be on the other side of the move —
        not just those currently holding moved keys, because a key
        created mid-move may map to a so-far-empty counterpart, and a
        range only changes owner by being flipped."""
        if self.kind == JOIN:
            return sorted(self.old_ring.nodes, key=str)
        return sorted(self.new_ring.nodes, key=str)

    def _range_keys(self, donor: Hashable, counterpart: Hashable) -> list:
        return [
            key for key in self.store._shard_keys(donor)
            if self.moved(key) and self.counterpart(key) == counterpart
        ]

    def _script(self):
        store = self.store
        try:
            counterparts = self._counterparts()
            # ``move=`` not ``kind=``: the tracers reserve ``kind`` for
            # the event kind itself.
            store.sim.annotate(
                "handoff", phase="start", move=self.kind,
                subject=self.subject, ranges=len(counterparts),
            )
            for counterpart in counterparts:
                yield from self._transfer_range(counterpart)
            store._finish_move(self)
            self.done.try_resolve(self.fingerprints)
        except BaseException as exc:
            self.failed = True
            self.frozen = None
            store.sim.annotate(
                "handoff", phase="failed", move=self.kind,
                subject=self.subject, error=type(exc).__name__,
            )
            self.done.try_fail(exc)
            raise

    def _transfer_range(self, counterpart: Hashable):
        store = self.store
        donor, recipient = self._donor_recipient(counterpart)
        donor_s = store._direct_session(donor, "handoff-src")
        recip_s = store._direct_session(recipient, "handoff-dst")
        copied: dict = {}
        store.sim.annotate("handoff", phase="copy", donor=donor,
                           recipient=recipient)
        yield from self._copy_pass(
            self._range_keys(donor, counterpart), donor_s, recip_s, copied,
        )
        # Cut over: reject new writes, let in-flight ones drain, then
        # delta-copy until one full pass observes no donor changes.
        self.frozen = counterpart
        store.sim.annotate("handoff", phase="freeze", donor=donor,
                           recipient=recipient)
        yield self.drain_ms
        passes = 0
        while True:
            passes += 1
            changed = yield from self._copy_pass(
                self._range_keys(donor, counterpart), donor_s, recip_s,
                copied,
            )
            if changed == 0:
                break
            if passes >= self.max_delta_passes:
                raise SimulationError(
                    f"handoff {donor}->{recipient} never quiesced after "
                    f"{passes} delta passes"
                )
        # Clean pass observed: fingerprint and flip in this same event.
        fingerprint = transfer_fingerprint(copied)
        self.fingerprints[counterpart] = fingerprint
        self.flipped.add(counterpart)
        self.frozen = None
        self._m_ranges.inc()
        store._on_range_flip(self, counterpart, fingerprint, len(copied))
        # Safety net for stragglers admitted at the donor pre-freeze
        # but applied after the clean pass: sweep until quiet.
        passes = 0
        while True:
            passes += 1
            yield self.drain_ms
            swept = yield from self._tail_sweep(
                donor, counterpart, donor_s, recip_s, copied
            )
            if swept == 0 or passes >= self.max_delta_passes:
                break

    def _copy_pass(self, keys, donor_s, recip_s, copied: dict):
        """One full copy pass over ``keys`` with bounded parallelism.
        Returns how many keys actually changed hands."""
        keys = list(keys)
        if not keys:
            return 0
        tally = [0]
        shared = iter(keys)

        def worker():
            for key in shared:
                tally[0] += yield from self._copy_key(
                    key, donor_s, recip_s, copied
                )

        workers = [
            spawn(self.sim, worker(), name=f"handoff-copy-{i}")
            for i in range(min(self.parallelism, len(keys)))
        ]
        yield [w.completion for w in workers]
        return tally[0]

    def _copy_key(self, key, donor_s, recip_s, copied: dict):
        """Copy one key donor → recipient if its donor token moved
        since we last copied it.  Returns 1 if copied, else 0."""
        value, token = yield from self._call(
            lambda: donor_s.get(key, timeout=self.op_timeout),
            f"read {key!r}",
        )
        if token is None and value is None:
            return 0                      # never written / expired
        previous = copied.get(key)
        if previous is not None and previous[0] == token:
            return 0
        self._thread_token(recip_s, token)
        yield from self._call(
            lambda: recip_s.put(key, value, timeout=self.op_timeout),
            f"write {key!r}",
        )
        copied[key] = (token, value)
        self._m_keys.inc()
        return 1

    def _tail_sweep(self, donor, counterpart, donor_s, recip_s,
                    copied: dict):
        """Post-flip pass: copy donor writes that landed after the
        clean pass — unless the recipient has since accepted a newer
        write for the key (then the straggler already lost under LWW
        and copying it would resurrect a stale value)."""
        swept = 0
        for key in self._range_keys(donor, counterpart):
            value, token = yield from self._call(
                lambda k=key: donor_s.get(k, timeout=self.op_timeout),
                f"tail read {key!r}",
            )
            if token is None and value is None:
                continue
            previous = copied.get(key)
            if previous is not None and previous[0] == token:
                continue
            current, _rt = yield from self._call(
                lambda k=key: recip_s.get(k, timeout=self.op_timeout),
                f"tail check {key!r}",
            )
            expected = previous[1] if previous is not None else None
            if current != expected:
                # A post-flip client write superseded the straggler.
                copied[key] = (token, value)
                continue
            self._thread_token(recip_s, token)
            yield from self._call(
                lambda k=key, v=value: recip_s.put(
                    k, v, timeout=self.op_timeout),
                f"tail write {key!r}",
            )
            copied[key] = (token, value)
            self._m_tail.inc()
            swept += 1
        return swept

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _thread_token(self, session, token) -> None:
        """Feed the donor-side version token into the recipient
        client's causal context when the protocol supports it."""
        observe = getattr(getattr(session, "client", None), "_observe", None)
        if observe is None or token is None:
            return
        try:
            observe(token)
        except (TypeError, ValueError):
            pass  # foreign token shape; recipient stamps stand alone

    def _call(self, make_future, label: str):
        """Await ``make_future()`` with bounded deterministic retries."""
        attempt = 0
        while True:
            try:
                result = yield make_future()
                return result
            except ReproError as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise SimulationError(
                        f"handoff gave up on {label} after "
                        f"{attempt} attempts: {exc}"
                    ) from exc
                self._m_retries.inc()
                yield min(self.retry_cap, self.retry_base * attempt)
