"""Deterministic discrete-event simulation substrate.

This subpackage replaces the distributed testbeds behind the systems
the tutorial surveys: a seeded event loop (:class:`Simulator`), a lossy
partitionable network (:class:`Network`), generator-based client
processes (:func:`spawn`), and named WAN topologies
(:mod:`repro.sim.topology`).
"""

from .core import Simulator
from .events import Event, EventQueue
from .network import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    LinkFault,
    LogNormalLatency,
    MatrixLatency,
    Network,
    NetworkStats,
    UniformLatency,
    estimate_size,
)
from .node import Node
from .process import Future, Process, all_of, spawn
from .trace import NULL_TRACER, NullTracer, TraceEvent, Tracer
from .topology import (
    SINGLE_DC,
    THREE_CONTINENTS,
    TOPOLOGIES,
    US_TRIANGLE,
    WORLD5,
    Topology,
    asymmetric_delays,
    round_robin_placement,
    symmetric_delays,
)

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "Network",
    "NetworkStats",
    "LinkFault",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "MatrixLatency",
    "estimate_size",
    "Node",
    "Future",
    "Process",
    "spawn",
    "all_of",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "Topology",
    "TOPOLOGIES",
    "SINGLE_DC",
    "US_TRIANGLE",
    "WORLD5",
    "THREE_CONTINENTS",
    "asymmetric_delays",
    "round_robin_placement",
    "symmetric_delays",
]
