"""Base class for protocol participants (replicas, coordinators, clients).

A :class:`Node` is a message-handler state machine: the network calls
:meth:`deliver`, which dispatches to ``handle_<MessageClassName>``
methods.  Timers are thin wrappers over the simulator that respect
crashes — a crashed node neither receives messages nor fires timers.

Crash/recover models fail-stop with amnesia of *volatile* state only:
subclasses override :meth:`on_crash` / :meth:`on_recover` to decide
what survives (e.g. a Paxos acceptor persists its promises, a cache
does not).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from ..errors import SimulationError
from .core import Simulator
from .events import Event
from .network import Network


class Node:
    """A network-attached participant in a simulated protocol.

    Subclasses implement message handling either by defining
    ``handle_<ClassName>(self, src, msg)`` methods (one per message
    dataclass) or by overriding :meth:`on_message` wholesale.
    """

    #: Offset of this node's physical clock from simulated true time
    #: (ms).  Injected by the chaos nemesis's ``clock_skew`` fault;
    #: anything deriving wall-clock-flavored timestamps (HLCs, LWW
    #: arbitration) should read :meth:`local_time`, never ``sim.now``.
    clock_offset: float = 0.0

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.crashed = False
        self._timers: list[Event] = []
        self._timer_prune_at = 64
        self._handler_cache: dict[type, Callable[..., Any]] = {}
        network.register(self)

    def local_time(self) -> float:
        """The node's *physical* clock reading: true simulated time
        plus this node's skew.  Event scheduling stays on true time —
        skew affects what the node believes, not when it runs."""
        return self.sim.now + self.clock_offset

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: Hashable, message: Any) -> None:
        """Unicast ``message`` to ``dst`` (silently dropped if crashed)."""
        if self.crashed:
            return
        self.network.send(self.node_id, dst, message)

    def send_many(self, dsts: list, message: Any) -> None:
        for dst in dsts:
            self.send(dst, message)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliver(self, src: Hashable, message: Any) -> None:
        """Entry point used by the network.  Do not override; override
        :meth:`on_message` instead."""
        if self.crashed:
            return
        self.on_message(src, message)

    def on_message(self, src: Hashable, message: Any) -> None:
        """Dispatch to ``handle_<type(message).__name__>``.

        The bound handler is cached per message class — name
        formatting + ``getattr`` once per type, then one dict hit per
        delivery.
        """
        cls = type(message)
        handler = self._handler_cache.get(cls)
        if handler is None:
            handler = getattr(self, f"handle_{cls.__name__}", None)
            if handler is None:
                raise SimulationError(
                    f"{type(self).__name__} {self.node_id!r} has no handler "
                    f"for {cls.__name__}"
                )
            self._handler_cache[cls] = handler
        handler(src, message)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        daemon: bool = False,
    ) -> Event:
        """Run ``fn`` after ``delay`` ms unless this node crashes first.

        ``daemon=True`` makes the timer a background event that does
        not keep ``sim.run()`` alive (see
        :meth:`Simulator.schedule_daemon`).
        """

        def guarded() -> None:
            if not self.crashed:
                fn(*args)

        if daemon:
            event = self.sim.schedule_daemon(delay, guarded)
        else:
            event = self.sim.schedule(delay, guarded)
        self._timers.append(event)
        if len(self._timers) > self._timer_prune_at:
            # Prune fired timers too, not just cancelled ones — on a
            # busy node the list is mostly already-executed events, and
            # rescanning them on every set_timer made this prune
            # quadratic over a long run.  Doubling the next-prune
            # threshold keeps the rescan amortized O(1) per timer even
            # when a node legitimately holds many live timers.
            self._timers = [
                t for t in self._timers if not (t.executed or t.cancelled)
            ]
            self._timer_prune_at = max(64, 2 * len(self._timers))
        return event

    def every(self, interval: float, fn: Callable[..., Any], *args: Any,
              jitter: float = 0.0) -> None:
        """Run ``fn`` every ``interval`` ms (optionally jittered by up
        to ``jitter`` fraction) until the node crashes.  Periodic timers
        are daemons: they fire while other work keeps the simulation
        alive (or while ``run(until=...)`` holds it open) but never
        prevent ``run()`` from terminating."""
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            if self.crashed:
                return
            fn(*args)
            delay = interval
            if jitter > 0:
                delay *= self.sim.rng.uniform(1.0, 1.0 + jitter)
            self.set_timer(delay, tick, daemon=True)

        first = interval
        if jitter > 0:
            first *= self.sim.rng.uniform(0.0, 1.0)
        self.set_timer(first, tick, daemon=True)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: drop pending timers and all future messages."""
        if self.crashed:
            return
        self.crashed = True
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "node_crash",
                                  node=self.node_id)
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.on_crash()

    def recover(self) -> None:
        """Restart the node.  Volatile-state policy is the subclass's."""
        if not self.crashed:
            return
        self.crashed = False
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "node_recover",
                                  node=self.node_id)
        self.on_recover()

    def on_crash(self) -> None:
        """Hook: discard volatile state.  Default keeps everything."""

    def on_recover(self) -> None:
        """Hook: re-arm timers, trigger recovery protocol."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.node_id!r} {state}>"
