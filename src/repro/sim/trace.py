"""Structured execution tracing for the simulator.

A :class:`Tracer` records a timeline of structured
:class:`TraceEvent` records — one per executed simulator event,
message send/deliver/drop, node crash/recover, plus free-form
protocol annotations — that can be filtered in-process, dumped to
JSONL, and summarized from the command line (``python -m repro
trace``).

Tracing is **off by default and costs (almost) nothing when off**:
every hook site in :mod:`repro.sim.core`, :mod:`repro.sim.network`
and :mod:`repro.sim.node` guards on ``tracer.enabled``, and the
default :data:`NULL_TRACER` answers ``enabled = False``, so an
untraced simulation pays one attribute check per hook and never
allocates a record.

Enable tracing by constructing the simulator with a live tracer::

    from repro.sim import Simulator, Tracer

    tracer = Tracer()
    sim = Simulator(seed=7, tracer=tracer)
    ...  # build a cluster, run a workload
    tracer.dump_jsonl("run.trace.jsonl")

then inspect with ``python -m repro trace run.trace.jsonl``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

# Canonical event kinds.  Protocol annotations use ANNOTATION with a
# free-form ``category`` field; everything else is emitted by the sim
# substrate itself.
EVENT_EXECUTED = "event_executed"
MSG_SEND = "msg_send"
MSG_DELIVER = "msg_deliver"
MSG_DROP = "msg_drop"
NODE_CRASH = "node_crash"
NODE_RECOVER = "node_recover"
ANNOTATION = "annotation"

_MESSAGE_KINDS = (MSG_SEND, MSG_DELIVER, MSG_DROP)


@dataclass(slots=True)
class TraceEvent:
    """One structured trace record: a timestamp, a kind, and fields."""

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record: dict[str, Any] = {"time": round(self.time, 6), "kind": self.kind}
        record.update(self.data)
        # Node ids and payload fields are arbitrary Python values;
        # repr() keeps the dump total rather than throwing mid-export.
        return json.dumps(record, default=repr)

    def format_line(self) -> str:
        fields = " ".join(f"{key}={value}" for key, value in self.data.items())
        return f"{self.time:12.3f}  {self.kind:<15} {fields}"


class NullTracer:
    """The default tracer: records nothing, accepts everything."""

    enabled = False

    def record(self, time: float, kind: str, **data: Any) -> None:
        pass

    def annotate(self, time: float, category: str, **data: Any) -> None:
        pass


#: Shared no-op instance used by every simulator without a tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """Records structured events into an in-memory timeline.

    Parameters
    ----------
    capacity:
        Optional cap on retained events.  Once full, further records
        are counted in :attr:`dropped` instead of stored — a safety
        valve for long benchmark runs.
    """

    enabled = True

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    # -- recording -----------------------------------------------------
    def record(self, time: float, kind: str, **data: Any) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, kind, data))

    def annotate(self, time: float, category: str, **data: Any) -> None:
        """Protocol-defined annotation (kind=``annotation``)."""
        self.record(time, ANNOTATION, category=category, **data)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- inspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(
        self,
        kind: str | Iterable[str] | None = None,
        since: float | None = None,
        until: float | None = None,
        **match: Any,
    ) -> list[TraceEvent]:
        """Events matching a kind (or kinds), a time window, and exact
        field values (e.g. ``filter(kind="msg_drop", reason="crash")``)."""
        return filter_events(self.events, kind=kind, since=since,
                             until=until, **match)

    def message_summary(self) -> dict[str, dict[str, int]]:
        """Per-message-type sent/delivered/dropped counts."""
        return message_summary(self.events)

    def kind_counts(self) -> dict[str, int]:
        return kind_counts(self.events)

    # -- export --------------------------------------------------------
    def dump_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(event.to_json())
                handle.write("\n")
        return len(self.events)

    def dumps_jsonl(self) -> str:
        return "".join(event.to_json() + "\n" for event in self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer events={len(self.events)} dropped={self.dropped}>"


# ---------------------------------------------------------------------------
# Free functions shared by Tracer and the `repro trace` CLI (which
# operates on events loaded back from JSONL).
# ---------------------------------------------------------------------------


def filter_events(
    events: Iterable[TraceEvent],
    kind: str | Iterable[str] | None = None,
    since: float | None = None,
    until: float | None = None,
    **match: Any,
) -> list[TraceEvent]:
    kinds: set[str] | None
    if kind is None:
        kinds = None
    elif isinstance(kind, str):
        kinds = {kind}
    else:
        kinds = set(kind)
    out = []
    for event in events:
        if kinds is not None and event.kind not in kinds:
            continue
        if since is not None and event.time < since:
            continue
        if until is not None and event.time > until:
            continue
        if match and any(
            event.data.get(key) != value for key, value in match.items()
        ):
            continue
        out.append(event)
    return out


def message_summary(events: Iterable[TraceEvent]) -> dict[str, dict[str, int]]:
    """``{message type: {"sent": n, "delivered": n, "dropped": n,
    "drop_reasons": {reason: n}}}``.

    ``drop_reasons`` separates the network's drops (``loss``,
    ``partition``, ``crash``) from client-side abandonment
    (``hedge_cancel`` — the losing attempt of a hedged call, whose
    reply may in fact still be delivered and ignored)."""
    summary: dict[str, dict[str, int]] = {}
    for event in events:
        if event.kind not in _MESSAGE_KINDS:
            continue
        msg_type = str(event.data.get("msg_type", "?"))
        row = summary.setdefault(
            msg_type,
            {"sent": 0, "delivered": 0, "dropped": 0, "drop_reasons": {}},
        )
        if event.kind == MSG_SEND:
            row["sent"] += 1
        elif event.kind == MSG_DELIVER:
            row["delivered"] += 1
        else:
            row["dropped"] += 1
            reason = str(event.data.get("reason", "?"))
            reasons = row["drop_reasons"]
            reasons[reason] = reasons.get(reason, 0) + 1
    return summary


def kind_counts(events: Iterable[TraceEvent]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def load_jsonl(path) -> list[TraceEvent]:
    """Read a trace dumped by :meth:`Tracer.dump_jsonl`."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            time = float(record.pop("time", 0.0))
            kind = str(record.pop("kind", "?"))
            events.append(TraceEvent(time, kind, record))
    return events
