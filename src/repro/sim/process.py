"""Futures and generator-based processes on top of the event loop.

Protocol *servers* in this package are written as message-handler state
machines (see :mod:`repro.sim.node`), but *clients and workload
drivers* read far more naturally as sequential code.  :func:`spawn`
runs a generator as a lightweight process: the generator yields

* a ``float`` — sleep that many simulated milliseconds,
* a :class:`Future` — suspend until it resolves; ``yield`` evaluates to
  the future's value (or re-raises the future's exception),
* a list/tuple of futures — suspend until *all* resolve; evaluates to
  the list of values.

Example
-------
::

    def client(sim, store):
        yield 10.0                       # think time
        value = yield store.get("k")     # async call returning a Future
        yield store.put("k", value + 1)

    proc = spawn(sim, client(sim, store))
    sim.run()
    assert proc.done
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError
from .core import Simulator


class Future:
    """A write-once container for an asynchronous result.

    Futures may resolve with a value (:meth:`resolve`) or an exception
    (:meth:`fail`).  Callbacks added after resolution run immediately
    via ``sim.call_soon`` so ordering stays deterministic.
    """

    __slots__ = ("sim", "done", "value", "error", "_callbacks", "label")

    def __init__(self, sim: Simulator, label: str = "") -> None:
        self.sim = sim
        self.done = False
        self.value: Any = None
        self.error: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.label = label

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully.  Resolving twice is an error."""
        if self.done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self.done = True
        self.value = value
        self._fire()

    def fail(self, error: BaseException) -> None:
        """Complete the future with an exception."""
        if self.done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self.done = True
        self.error = error
        self._fire()

    def try_resolve(self, value: Any = None) -> bool:
        """Resolve unless already done.  Returns whether it resolved.

        Useful for quorum protocols where the (R+1)th reply arrives
        after the future already fired.
        """
        if self.done:
            return False
        self.resolve(value)
        return True

    def try_fail(self, error: BaseException) -> bool:
        """Fail unless already done.  Returns whether it failed."""
        if self.done:
            return False
        self.fail(error)
        return True

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when the future completes (maybe immediately)."""
        if self.done:
            self.sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def result(self) -> Any:
        """Return the value, re-raising a stored exception.

        Only valid once :attr:`done` is true.
        """
        if not self.done:
            raise SimulationError(f"future {self.label!r} is not resolved yet")
        if self.error is not None:
            raise self.error
        return self.value

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.call_soon(fn, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.done:
            state = "pending"
        elif self.error is not None:
            state = f"failed({self.error!r})"
        else:
            state = f"done({self.value!r})"
        return f"<Future {self.label!r} {state}>"


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future resolving with the list of values of ``futures``.

    Fails fast with the first exception among them.
    """
    futures = list(futures)
    combined = Future(sim, label="all_of")
    remaining = len(futures)
    if remaining == 0:
        combined.resolve([])
        return combined

    def on_done(_f: Future) -> None:
        nonlocal remaining
        if combined.done:
            return
        if _f.error is not None:
            combined.try_fail(_f.error)
            return
        remaining -= 1
        if remaining == 0:
            combined.resolve([f.value for f in futures])

    for f in futures:
        f.add_callback(on_done)
    return combined


class Process:
    """A running generator process.  Returned by :func:`spawn`."""

    def __init__(self, sim: Simulator, gen: Generator, name: str = "proc") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self.completion = Future(sim, label=f"{name}.completion")

    def _advance(self, send_value: Any = None, exc: BaseException | None = None) -> None:
        if self.done:
            return
        try:
            if exc is not None:
                yielded = self.gen.throw(exc)
            else:
                yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.completion.resolve(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate via future
            self.done = True
            self.error = err
            self.completion.fail(err)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Future):
            yielded.add_callback(self._on_future)
        elif isinstance(yielded, (int, float)):
            self.sim.schedule(float(yielded), self._advance)
        elif isinstance(yielded, (list, tuple)):
            all_of(self.sim, yielded).add_callback(self._on_future)
        elif yielded is None:
            self.sim.call_soon(self._advance)
        else:
            self._advance(
                exc=SimulationError(
                    f"process {self.name!r} yielded unsupported {yielded!r}"
                )
            )

    def _on_future(self, future: Future) -> None:
        if future.error is not None:
            self._advance(exc=future.error)
        else:
            self._advance(send_value=future.value)


def spawn(sim: Simulator, gen: Generator, name: str = "proc") -> Process:
    """Start ``gen`` as a process on ``sim`` (first step runs via
    ``call_soon``, i.e. at the current simulated instant)."""
    process = Process(sim, gen, name=name)
    sim.call_soon(process._advance)
    return process
