"""Event queue primitives for the discrete-event simulator.

The queue is a binary heap ordered by ``(time, sequence)``.  The
monotonically increasing sequence number makes the ordering of
simultaneous events deterministic (FIFO in scheduling order), which is
what makes whole simulations reproducible from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events are one-shot and cancellable.  Cancellation is O(1): the
    event is flagged and skipped when it surfaces from the heap.
    """

    __slots__ = (
        "time", "seq", "fn", "args", "cancelled", "daemon", "executed",
        "_queue",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: "EventQueue | None" = None,
        daemon: bool = False,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self.executed = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        event that already fired is a harmless no-op."""
        if not self.cancelled and not self.executed:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1
                if not self.daemon:
                    self._queue._foreground -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} #{self.seq} {name} {state}>"


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._foreground = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def foreground_live(self) -> int:
        """Live events that keep a ``run()`` without deadline going.
        Daemon events (periodic protocol timers) don't count — a
        simulation is 'done' when only daemons remain."""
        return self._foreground

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        daemon: bool = False,
    ) -> Event:
        event = Event(time, next(self._counter), fn, args, queue=self,
                      daemon=daemon)
        heapq.heappush(self._heap, event)
        self._live += 1
        if not daemon:
            self._foreground += 1
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        Raises :class:`SimulationError` if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.executed = True
            self._live -= 1
            if not event.daemon:
                self._foreground -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
