"""Event queue primitives for the discrete-event simulator.

The queue is a binary heap of ``(time, seq, event)`` tuples ordered by
``(time, sequence)``.  The monotonically increasing sequence number
makes the ordering of simultaneous events deterministic (FIFO in
scheduling order), which is what makes whole simulations reproducible
from a seed.  Storing plain tuples — not :class:`Event` objects — keeps
every ``heapq`` comparison in C; the interpreter never re-enters
``Event.__lt__`` on the hot path.

Cancellation is lazy: a cancelled event is flagged in O(1) and skipped
when it surfaces from the heap.  When cancelled entries outnumber live
ones (a hedged-RPC storm cancelling its loser timers, say), the heap is
compacted in one pass so dead timers cannot dominate heap depth for the
rest of a long run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events are one-shot and cancellable.  Cancellation is O(1): the
    event is flagged and skipped when it surfaces from the heap.
    """

    __slots__ = (
        "time", "seq", "fn", "args", "cancelled", "daemon", "executed",
        "_queue",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: "EventQueue | None" = None,
        daemon: bool = False,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self.executed = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        event that already fired (or is currently firing — the queue
        marks ``executed`` at pop, before the callback runs) is a
        harmless no-op, so queue accounting can never double-decrement.
        """
        if not self.cancelled and not self.executed:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                if not self.daemon:
                    queue._foreground -= 1
                queue._dead += 1
                if queue._dead > queue._live:
                    queue._compact()

    def __lt__(self, other: "Event") -> bool:
        # Not used by the heap (tuples compare first); kept so sorting
        # Event handles directly stays meaningful.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} #{self.seq} {name} {state}>"


class EventQueue:
    """Deterministic min-heap of ``(time, seq, Event)`` entries."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._foreground = 0
        self._dead = 0  # cancelled entries still parked in the heap

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def foreground_live(self) -> int:
        """Live events that keep a ``run()`` without deadline going.
        Daemon events (periodic protocol timers) don't count — a
        simulation is 'done' when only daemons remain."""
        return self._foreground

    @property
    def heap_size(self) -> int:
        """Physical heap length, live + not-yet-collected cancelled
        entries.  Compaction keeps this within 2x the live count."""
        return len(self._heap)

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        daemon: bool = False,
    ) -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self, daemon)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        if not daemon:
            self._foreground += 1
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        The popped event is marked ``executed`` *before* it is returned
        (so before its callback can run): a callback cancelling the
        very event being dispatched must see a no-op, not a second
        live-count decrement.

        Raises :class:`SimulationError` if the queue is empty.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._dead -= 1
                continue
            event.executed = True
            self._live -= 1
            if not event.daemon:
                self._foreground -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify (O(live)).

        Triggered from :meth:`Event.cancel` once cancelled entries
        outnumber live ones — mass cancellation (hedged-RPC losers,
        crash-time timer sweeps) would otherwise leave the heap mostly
        dead weight for the remainder of the run.

        Rebuilds **in place** (slice assignment): ``Simulator.run``
        holds a direct reference to the heap list across callbacks, and
        a callback may cancel events and trigger compaction mid-run.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
