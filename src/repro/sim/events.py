"""Event queue primitives for the discrete-event simulator.

The queue is a binary heap ordered by ``(time, sequence)``.  The
monotonically increasing sequence number makes the ordering of
simultaneous events deterministic (FIFO in scheduling order), which is
what makes whole simulations reproducible from a seed.  Storing plain
tuples — not :class:`Event` objects — keeps every ``heapq`` comparison
in C; the interpreter never re-enters ``Event.__lt__`` on the hot path.

Two entry shapes share the heap:

``(time, seq, Event)``
    The classic cancellable entry, returned as a handle by
    :meth:`push`.
``(time, seq, fn, args)``
    A *handle-free* entry from :meth:`push_fn` — no :class:`Event` is
    ever allocated.  Used for fire-and-forget work (network
    deliveries) that is never cancelled and never daemonized.  Mixing
    the two shapes is safe because sequence numbers are unique: tuple
    comparison always resolves at element 1 and never reaches the
    payload.

Cancellation is lazy: a cancelled event is flagged in O(1) and skipped
when it surfaces from the heap.  When cancelled entries outnumber live
ones (a hedged-RPC storm cancelling its loser timers, say), the heap is
compacted in one pass so dead timers cannot dominate heap depth for the
rest of a long run.

Event pooling
-------------
:meth:`push_pooled` (the ``Simulator.call_soon`` backend) draws
:class:`PooledEvent` objects from a free list; the dispatch loop
returns them via :meth:`recycle` right after their callback runs.
Pool lifetime rule: **a pooled handle must not be retained past its
dispatch** — cancelling before it fires is fine, touching it after is
use-after-free.  :func:`set_pool_debug` arms a debug mode in which the
pool stops reusing objects and any post-recycle ``cancel()`` raises
instead of silently corrupting an unrelated event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError

#: Max free-listed events; beyond this, retired events go to the GC.
_POOL_CAP = 256

_POOL_DEBUG = False


def set_pool_debug(enabled: bool) -> None:
    """Toggle use-after-free detection for pooled events.

    When enabled, recycled events are *not* reused (so their ``_freed``
    flag stays set forever) and ``cancel()`` on a recycled event raises
    :class:`SimulationError` instead of no-opping.  Costs allocation
    throughput; meant for tests and debugging, not production runs.
    """
    global _POOL_DEBUG
    _POOL_DEBUG = enabled


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events are one-shot and cancellable.  Cancellation is O(1): the
    event is flagged and skipped when it surfaces from the heap.
    """

    __slots__ = (
        "time", "seq", "fn", "args", "cancelled", "daemon", "executed",
        "_queue",
    )

    #: Class-level defaults — plain events are never pool-managed, so
    #: they pay no per-instance storage for the pool bookkeeping.
    pooled = False
    _freed = False

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: "EventQueue | None" = None,
        daemon: bool = False,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self.executed = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        event that already fired (or is currently firing — the queue
        marks ``executed`` at pop, before the callback runs) is a
        harmless no-op, so queue accounting can never double-decrement.
        """
        if self._freed:
            if _POOL_DEBUG:
                raise SimulationError(
                    "cancel() on a recycled pooled event (use-after-free): "
                    "call_soon handles must not be retained past dispatch"
                )
            return
        if not self.cancelled and not self.executed:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                if not self.daemon:
                    queue._foreground -= 1
                queue._dead += 1
                if queue._dead > queue._live:
                    queue._compact()

    def __lt__(self, other: "Event") -> bool:
        # Not used by the heap (tuples compare first); kept so sorting
        # Event handles directly stays meaningful.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        if self._freed:
            state = "recycled"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} #{self.seq} {name} {state}>"


class PooledEvent(Event):
    """An :class:`Event` owned by the queue's free list.

    Identical semantics while live; after dispatch the queue reclaims
    it (``_freed`` set, payload dropped) and may hand the same object
    to a later :meth:`EventQueue.push_pooled`.  Callers therefore must
    not keep references past dispatch — see :func:`set_pool_debug`.
    """

    __slots__ = ("_freed",)

    pooled = True


class EventQueue:
    """Deterministic min-heap of ``(time, seq, ...)`` entries."""

    def __init__(self) -> None:
        # Entries are (time, seq, Event) or (time, seq, fn, args).
        self._heap: list[tuple] = []
        self._seq = 0
        self._live = 0
        self._foreground = 0
        self._dead = 0  # cancelled entries still parked in the heap
        self._pool: list[PooledEvent] = []

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def foreground_live(self) -> int:
        """Live events that keep a ``run()`` without deadline going.
        Daemon events (periodic protocol timers) don't count — a
        simulation is 'done' when only daemons remain."""
        return self._foreground

    @property
    def heap_size(self) -> int:
        """Physical heap length, live + not-yet-collected cancelled
        entries.  Compaction keeps this within 2x the live count."""
        return len(self._heap)

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        daemon: bool = False,
    ) -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self, daemon)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        if not daemon:
            self._foreground += 1
        return event

    def push_fn(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        """Schedule ``fn(*args)`` with no :class:`Event` handle.

        The entry cannot be cancelled and always counts as foreground —
        exactly the contract of a network delivery, the hottest push in
        the simulator.  Zero per-call allocation beyond the heap tuple.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, fn, args))
        self._live += 1
        self._foreground += 1

    def push_pooled(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
    ) -> Event:
        """Like :meth:`push` (foreground, non-daemon) but the handle is
        drawn from the free list and reclaimed right after dispatch.
        Callers may cancel it before it fires; retaining it past
        dispatch is use-after-free (see :func:`set_pool_debug`).
        """
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.executed = False
            event._freed = False
        else:
            event = PooledEvent(time, seq, fn, args, self, False)
            event._freed = False
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        self._foreground += 1
        return event

    def recycle(self, event: PooledEvent) -> None:
        """Return a dispatched pooled event to the free list.

        Called by the dispatch loops immediately after the callback
        ran (only ever with ``event.pooled`` true).  In debug mode the
        object is retired instead of reused so stale handles keep
        raising (see :func:`set_pool_debug`).
        """
        event._freed = True
        event.fn = None  # type: ignore[assignment]
        event.args = ()
        if not _POOL_DEBUG and len(self._pool) < _POOL_CAP:
            self._pool.append(event)

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event.

        The popped event is marked ``executed`` *before* it is returned
        (so before its callback can run): a callback cancelling the
        very event being dispatched must see a no-op, not a second
        live-count decrement.  Handle-free entries are wrapped in a
        fresh (already-executed) :class:`Event` so callers see one
        uniform shape.

        Raises :class:`SimulationError` if the queue is empty.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 4:
                time, seq, fn, args = entry
                self._live -= 1
                self._foreground -= 1
                event = Event(time, seq, fn, args, self, False)
                event.executed = True
                return event
            event = entry[2]
            if event.cancelled:
                self._dead -= 1
                continue
            event.executed = True
            self._live -= 1
            if not event.daemon:
                self._foreground -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def pop_batch(self) -> list[Event]:
        """Drain every live event sharing the earliest timestamp.

        Events come back in exact sequential :meth:`pop` order (seq
        tie-break preserved); lazy-cancelled entries are skipped with
        the same accounting.  Every returned event is marked
        ``executed`` at collection, so — unlike ``Simulator.run``'s
        lazy inner drain, which leaves each event in the heap until its
        turn — a callback in the batch cancelling a later batch-mate is
        a no-op.  Use it for externally driven tick-at-a-time
        execution; returns ``[]`` on an empty queue.
        """
        heap = self._heap
        pop_entry = heapq.heappop
        while heap and len(heap[0]) == 3 and heap[0][2].cancelled:
            pop_entry(heap)
            self._dead -= 1
        if not heap:
            return []
        tick = heap[0][0]
        batch: list[Event] = []
        append = batch.append
        while heap and heap[0][0] == tick:
            entry = pop_entry(heap)
            if len(entry) == 4:
                time, seq, fn, args = entry
                self._live -= 1
                self._foreground -= 1
                event = Event(time, seq, fn, args, self, False)
                event.executed = True
                append(event)
                continue
            event = entry[2]
            if event.cancelled:
                self._dead -= 1
                continue
            event.executed = True
            self._live -= 1
            if not event.daemon:
                self._foreground -= 1
            append(event)
        return batch

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and len(heap[0]) == 3 and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify (O(live)).

        Triggered from :meth:`Event.cancel` once cancelled entries
        outnumber live ones — mass cancellation (hedged-RPC losers,
        crash-time timer sweeps) would otherwise leave the heap mostly
        dead weight for the remainder of the run.

        Rebuilds **in place** (slice assignment): ``Simulator.run``
        holds a direct reference to the heap list across callbacks, and
        a callback may cancel events and trigger compaction mid-run.
        """
        self._heap[:] = [
            entry for entry in self._heap
            if len(entry) == 4 or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._dead = 0
