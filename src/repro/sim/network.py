"""Simulated message-passing network.

The network delivers arbitrary Python objects between registered nodes
with per-link latency sampled from a :class:`LatencyModel`.  It can
drop, duplicate and partition — the failure modes whose handling
distinguishes the replication protocols in :mod:`repro.replication`.

Messages between distinct nodes are delivered by scheduling
``dst.deliver(src_id, message)`` on the owning simulator.  Delivery to
a node's own id is allowed (loopback) and uses ``loopback_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Hashable, Iterable, Protocol

from ..analysis.registry import MetricsRegistry
from ..errors import NetworkError
from .core import Simulator
from .trace import MSG_DELIVER, MSG_DROP, MSG_SEND

NodeId = Hashable


class LatencyModel(Protocol):
    """Samples a one-way message delay in milliseconds.

    Models may additionally provide ``link_sampler(src, dst)``
    returning a per-link ``sampler(rng) -> float`` closure; the network
    caches one per (src, dst) pair so the hot send path skips the
    generic dispatch (and any per-pair table lookups) while drawing the
    exact same values from the RNG.  Parameters are captured when the
    first message crosses a link — swap the network's whole ``latency``
    model to reconfigure, don't mutate one in place.
    """

    def sample(self, rng, src: NodeId, dst: NodeId) -> float:  # pragma: no cover
        ...


class FixedLatency:
    """Every message takes exactly ``delay`` ms."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise NetworkError("latency must be non-negative")
        self.delay = delay

    def sample(self, rng, src: NodeId, dst: NodeId) -> float:
        return self.delay

    def link_sampler(self, src: NodeId, dst: NodeId) -> Callable[[Any], float]:
        delay = self.delay
        return lambda rng: delay


class UniformLatency:
    """Delay uniform in ``[low, high]`` ms."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise NetworkError(f"invalid uniform range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng, src: NodeId, dst: NodeId) -> float:
        return rng.uniform(self.low, self.high)

    def link_sampler(self, src: NodeId, dst: NodeId) -> Callable[[Any], float]:
        low, high = self.low, self.high
        return lambda rng: rng.uniform(low, high)


class ExponentialLatency:
    """``base`` plus an exponential tail with the given ``mean`` — the
    standard model for LAN latencies with occasional stragglers."""

    def __init__(self, base: float = 0.5, mean: float = 1.0) -> None:
        if base < 0 or mean <= 0:
            raise NetworkError("base must be >= 0 and mean > 0")
        self.base = base
        self.mean = mean

    def sample(self, rng, src: NodeId, dst: NodeId) -> float:
        return self.base + rng.expovariate(1.0 / self.mean)

    def link_sampler(self, src: NodeId, dst: NodeId) -> Callable[[Any], float]:
        base, rate = self.base, 1.0 / self.mean
        return lambda rng: base + rng.expovariate(rate)


class LogNormalLatency:
    """Log-normal delay, parameterized by its median and sigma.

    Heavy-tailed; a good fit for measured WAN one-way delays.
    """

    def __init__(self, median: float = 1.0, sigma: float = 0.5) -> None:
        if median <= 0 or sigma < 0:
            raise NetworkError("median must be > 0 and sigma >= 0")
        import math

        self.mu = math.log(median)
        self.sigma = sigma

    def sample(self, rng, src: NodeId, dst: NodeId) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def link_sampler(self, src: NodeId, dst: NodeId) -> Callable[[Any], float]:
        mu, sigma = self.mu, self.sigma
        return lambda rng: rng.lognormvariate(mu, sigma)


class MatrixLatency:
    """Per-pair base latency plus a multiplicative jitter factor.

    ``matrix`` maps ``(src, dst)`` (or the node's *site*, see
    ``site_of``) to a one-way base delay.  Jitter multiplies the base by
    ``uniform(1, 1 + jitter)``.
    """

    def __init__(
        self,
        matrix: dict[tuple[Hashable, Hashable], float],
        site_of: Callable[[NodeId], Hashable] | None = None,
        jitter: float = 0.1,
        default: float | None = None,
    ) -> None:
        self.matrix = dict(matrix)
        self.site_of = site_of or (lambda node: node)
        self.jitter = jitter
        self.default = default

    def _base_for(self, src: NodeId, dst: NodeId) -> float:
        key = (self.site_of(src), self.site_of(dst))
        base = self.matrix.get(key)
        if base is None:
            base = self.matrix.get((key[1], key[0]), self.default)
        if base is None:
            raise NetworkError(f"no latency entry for {key}")
        return base

    def sample(self, rng, src: NodeId, dst: NodeId) -> float:
        base = self._base_for(src, dst)
        if self.jitter <= 0:
            return base
        return base * rng.uniform(1.0, 1.0 + self.jitter)

    def link_sampler(self, src: NodeId, dst: NodeId) -> Callable[[Any], float]:
        # Resolve the site mapping and matrix lookups once per link.
        base = self._base_for(src, dst)
        if self.jitter <= 0:
            return lambda rng: base
        ceiling = 1.0 + self.jitter
        return lambda rng: base * rng.uniform(1.0, ceiling)


def estimate_size(obj: Any) -> int:
    """Rough serialized size of a message, in bytes.

    Used for the bandwidth comparisons (Merkle vs. full-state
    anti-entropy, state- vs. delta-CRDT shipping).  The estimate is a
    simple recursive model — 8 bytes per number, string/bytes length,
    container overhead — deliberately deterministic and cheap.
    """
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, str):
        return 2 + len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, bytes):
        return 2 + len(obj)
    if isinstance(obj, dict):
        return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in obj)
    if hasattr(obj, "__dict__"):
        return 8 + estimate_size(vars(obj))
    if is_dataclass(obj):
        # Slotted dataclasses (no __dict__): measure field-name -> value
        # exactly as vars() would on the unslotted equivalent, so adding
        # ``slots=True`` to a message type never changes byte metrics.
        return 8 + estimate_size(
            {f.name: getattr(obj, f.name) for f in fields(obj)}
        )
    if hasattr(obj, "__slots__"):
        return 8 + sum(
            estimate_size(getattr(obj, slot))
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return 16


class NetworkStats:
    """Registry-backed view of the network's counters.

    Keeps the attribute API the analysis layer and the tests have
    always read (``stats.messages_sent`` …), but the values now live
    in the simulator's :class:`MetricsRegistry` under ``net.*`` so
    they show up next to every other metric of a run.
    """

    _COUNTERS = (
        "messages_sent",
        "messages_delivered",
        "messages_dropped_loss",
        "messages_dropped_partition",
        "messages_dropped_link",
        "messages_dropped_crash",
        "messages_duplicated",
        "bytes_sent",
    )

    def __init__(self, registry: MetricsRegistry, prefix: str = "net") -> None:
        self._registry = registry
        self._prefix = prefix
        for name in self._COUNTERS:
            setattr(self, "_" + name, registry.counter(f"{prefix}.{name}"))
        self._type_counters: dict[str, Any] = {}
        # Hot-path cache keyed by message *class*: one dict hit per
        # send instead of re-formatting "<prefix>.by_type.<name>" and
        # re-hashing the name string.  Distinct classes sharing a
        # __name__ share the registry counter, as before.
        self._class_counters: dict[type, Any] = {}

    @property
    def messages_sent(self) -> int:
        return self._messages_sent.value

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered.value

    @property
    def messages_dropped_loss(self) -> int:
        return self._messages_dropped_loss.value

    @property
    def messages_dropped_partition(self) -> int:
        return self._messages_dropped_partition.value

    @property
    def messages_dropped_link(self) -> int:
        return self._messages_dropped_link.value

    @property
    def messages_dropped_crash(self) -> int:
        return self._messages_dropped_crash.value

    @property
    def messages_duplicated(self) -> int:
        return self._messages_duplicated.value

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent.value

    @property
    def by_type(self) -> dict:
        return {
            name: counter.value
            for name, counter in self._type_counters.items()
        }

    def counter_for_type(self, cls: type) -> Any:
        """Get-or-create the ``by_type`` counter for a message class."""
        counter = self._class_counters.get(cls)
        if counter is None:
            name = cls.__name__
            counter = self._type_counters.get(name)
            if counter is None:
                counter = self._registry.counter(
                    f"{self._prefix}.by_type.{name}"
                )
                self._type_counters[name] = counter
            self._class_counters[cls] = counter
        return counter

    def record_type(self, message: Any) -> None:
        self.counter_for_type(type(message)).inc()


@dataclass(slots=True)
class LinkFault:
    """Degradation applied to one (unordered) node pair.

    ``down`` severs the link outright; ``drop_rate`` loses a fraction
    of its messages; ``extra_delay`` (ms) slows every delivery.  All
    three are injected by the chaos nemesis (``slow_link`` /
    ``drop_rate`` bursts, ring/bridge partitions) and counted under the
    dedicated ``net.messages_dropped_link`` counter — never folded into
    the generic ``loss`` bucket, so chaos assertions can tell injected
    faults from background noise.
    """

    down: bool = False
    drop_rate: float = 0.0
    extra_delay: float = 0.0

    @property
    def is_noop(self) -> bool:
        return not self.down and self.drop_rate <= 0 and self.extra_delay <= 0


class Network:
    """The message fabric connecting :class:`repro.sim.node.Node` objects.

    Parameters
    ----------
    sim:
        Owning simulator.
    latency:
        One-way delay model; defaults to 1 ms fixed.
    loss_rate:
        Probability a message is silently dropped (checked per copy).
    duplicate_rate:
        Probability a message is delivered twice.
    loopback_latency:
        Delay for a node sending to itself.
    track_bytes:
        When true, every payload is passed through
        :func:`estimate_size` (costs CPU; off by default).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        loopback_latency: float = 0.01,
        track_bytes: bool = False,
    ) -> None:
        self.sim = sim
        self._latency = latency or FixedLatency(1.0)
        self.loopback_latency = loopback_latency
        self.track_bytes = track_bytes
        self.stats = NetworkStats(sim.metrics)
        self._nodes: dict[NodeId, Any] = {}
        self._partition: dict[NodeId, int] | None = None
        # Group index late-registered nodes fall into while partitioned.
        self._partition_leftover = 0
        # Per-pair fault state, keyed by frozenset({a, b}); empty in
        # healthy runs so the send hot path pays one truthiness check.
        self._link_faults: dict[frozenset, LinkFault] = {}
        self._samplers: dict[tuple[NodeId, NodeId], Callable[[Any], float]] = {}
        # Bound counter methods + per-class inc cache: send()/_deliver()
        # run once per message, so even a counter attribute walk is
        # worth hoisting.
        self._inc_sent = self.stats._messages_sent.inc
        self._inc_delivered = self.stats._messages_delivered.inc
        self._type_incs: dict[type, Callable[..., Any]] = {}
        # Same-(time, dst) deliveries share one scheduled dispatch;
        # the pending payloads live here until _deliver drains them.
        self._inflight: dict[tuple[float, NodeId], list] = {}
        # ``_healthy`` folds the failure-free preconditions (no
        # partition, no link faults, no loss, no duplication) into one
        # flag so the common case pays a single check.  Maintained by
        # the loss/duplicate setters, partition()/heal() and the link
        # fault mutators.
        self._loss_rate = 0.0
        self._duplicate_rate = 0.0
        self._healthy = True
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate

    @property
    def latency(self) -> LatencyModel:
        return self._latency

    @latency.setter
    def latency(self, model: LatencyModel) -> None:
        # Swapping the model invalidates every cached per-link sampler.
        self._latency = model
        self._samplers.clear()

    def _update_healthy(self) -> None:
        self._healthy = (
            self._partition is None
            and not self._link_faults
            and not self._loss_rate
            and not self._duplicate_rate
        )

    @property
    def loss_rate(self) -> float:
        return self._loss_rate

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        if not 0 <= rate < 1:
            raise NetworkError("loss_rate must be in [0, 1)")
        self._loss_rate = rate
        self._update_healthy()

    @property
    def duplicate_rate(self) -> float:
        return self._duplicate_rate

    @duplicate_rate.setter
    def duplicate_rate(self, rate: float) -> None:
        if not 0 <= rate < 1:
            raise NetworkError("duplicate_rate must be in [0, 1)")
        self._duplicate_rate = rate
        self._update_healthy()

    def _link_sampler(
        self, src: NodeId, dst: NodeId
    ) -> Callable[[Any], float]:
        factory = getattr(self._latency, "link_sampler", None)
        if factory is not None:
            return factory(src, dst)
        sample = self._latency.sample
        return lambda rng: sample(rng, src, dst)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, node: Any) -> None:
        """Attach a node (anything with ``.node_id`` and ``.deliver``)."""
        node_id = node.node_id
        if node_id in self._nodes:
            raise NetworkError(f"duplicate node id {node_id!r}")
        self._nodes[node_id] = node

    def node(self, node_id: NodeId) -> Any:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    @property
    def node_ids(self) -> list[NodeId]:
        return list(self._nodes)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, *groups: Iterable) -> None:
        """Split the network: messages cross group boundaries only to be
        dropped.  Nodes not named in any group form one extra implicit
        group — including nodes registered *after* the split, so a
        client connecting mid-partition shares the leftover group with
        the unnamed rest of the world (and with other late arrivals)
        instead of being marooned alone.  Replaces any existing
        partition."""
        assignment: dict[NodeId, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id not in self._nodes:
                    raise NetworkError(f"unknown node {node_id!r} in partition")
                if node_id in assignment:
                    raise NetworkError(f"node {node_id!r} in two partition groups")
                assignment[node_id] = index
        leftover = len(groups)
        for node_id in self._nodes:
            if node_id not in assignment:
                assignment[node_id] = leftover
        self._partition = assignment
        self._partition_leftover = leftover
        self._update_healthy()

    def heal(self) -> None:
        """Remove the partition; in-flight messages already dropped stay
        dropped (links do not retroactively deliver)."""
        self._partition = None
        self._update_healthy()

    def reachable(self, src: NodeId, dst: NodeId) -> bool:
        if src == dst:
            return True
        if self._partition is not None:
            leftover = self._partition_leftover
            if (self._partition.get(src, leftover)
                    != self._partition.get(dst, leftover)):
                return False
        if self._link_faults:
            fault = self._link_faults.get(frozenset((src, dst)))
            if fault is not None and fault.down:
                return False
        return True

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    # ------------------------------------------------------------------
    # Link faults (chaos nemesis hooks)
    # ------------------------------------------------------------------
    def set_link_fault(
        self,
        a: NodeId,
        b: NodeId,
        down: bool = False,
        drop_rate: float = 0.0,
        extra_delay: float = 0.0,
    ) -> None:
        """Degrade the (symmetric) link between ``a`` and ``b``.

        Passing all defaults clears the pair's fault.  Messages lost to
        a faulted link are counted in ``net.messages_dropped_link`` and
        traced with reason ``link_down`` / ``link_loss`` — dedicated
        accounting, distinct from partition and random-loss drops.
        """
        if a not in self._nodes:
            raise NetworkError(f"unknown node {a!r} in link fault")
        if b not in self._nodes:
            raise NetworkError(f"unknown node {b!r} in link fault")
        if not 0 <= drop_rate < 1:
            raise NetworkError("link drop_rate must be in [0, 1)")
        if extra_delay < 0:
            raise NetworkError("link extra_delay must be non-negative")
        key = frozenset((a, b))
        fault = LinkFault(down=down, drop_rate=drop_rate,
                          extra_delay=extra_delay)
        if fault.is_noop:
            self._link_faults.pop(key, None)
        else:
            self._link_faults[key] = fault
        self._update_healthy()

    def link_fault(self, a: NodeId, b: NodeId) -> LinkFault | None:
        """The pair's current fault, or ``None`` when healthy."""
        if not self._link_faults:
            return None
        return self._link_faults.get(frozenset((a, b)))

    def clear_link_fault(self, a: NodeId, b: NodeId) -> None:
        self._link_faults.pop(frozenset((a, b)), None)
        self._update_healthy()

    def clear_link_faults(self) -> None:
        """Restore every degraded link (the nemesis ``heal``)."""
        self._link_faults.clear()
        self._update_healthy()

    @property
    def faulted_links(self) -> int:
        return len(self._link_faults)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, message: Any) -> None:
        """Fire-and-forget unicast.  Drops are silent, as in UDP/IP —
        protocol code must tolerate them.

        This is the hottest function in the simulator after the event
        loop itself: the per-type counter is one class-keyed dict hit,
        the message type name is only computed when tracing is on, the
        payload size estimate only when ``track_bytes`` asked for it,
        per-link latency samplers are built once per (src, dst), and
        the failure-free case takes a branch guarded by one
        ``_healthy`` flag.

        Per-message delay is always sampled *before* grouping (RNG
        draw order is part of the determinism contract); messages
        landing on the same ``(delivery_time, dst)`` share one
        scheduled dispatch (see :meth:`_deliver`).
        """
        nodes = self._nodes
        if dst not in nodes:
            raise NetworkError(f"unknown destination {dst!r}")
        sim = self.sim
        stats = self.stats
        trace = sim.trace
        tracing = trace.enabled
        msg_type = type(message)
        msg_name = msg_type.__name__ if tracing else None
        self._inc_sent()
        type_inc = self._type_incs.get(msg_type)
        if type_inc is None:
            type_inc = stats.counter_for_type(msg_type).inc
            self._type_incs[msg_type] = type_inc
        type_inc()
        if self.track_bytes:
            stats._bytes_sent.inc(estimate_size(message))
        if tracing:
            trace.record(sim.now, MSG_SEND, src=src, dst=dst,
                         msg_type=msg_name)
        src_node = nodes.get(src)
        if src_node is not None and getattr(src_node, "crashed", False):
            # Fail-stop means a crashed node cannot put messages on the
            # wire, not just that it stops hearing them.
            stats._messages_dropped_crash.inc()
            if tracing:
                trace.record(sim.now, MSG_DROP, reason="crash",
                             src=src, dst=dst, msg_type=msg_name)
            return
        if self._healthy:
            # Fast path: no partition, link faults, loss or duplication.
            if src == dst:
                delay = self.loopback_latency
            else:
                sampler = self._samplers.get((src, dst))
                if sampler is None:
                    sampler = self._link_sampler(src, dst)
                    self._samplers[(src, dst)] = sampler
                delay = sampler(sim.rng)
            key = (sim.now + delay, dst)
            bucket = self._inflight.get(key)
            if bucket is None:
                self._inflight[key] = [(src, message)]
                # The key tuple doubles as the (time, dst) argument pair.
                sim._push_fn(key[0], self._deliver, key)
            else:
                bucket.append((src, message))
            return
        if (
            self._partition is not None
            and src != dst
            and self._partition.get(src, self._partition_leftover)
            != self._partition.get(dst, self._partition_leftover)
        ):
            stats._messages_dropped_partition.inc()
            if tracing:
                trace.record(sim.now, MSG_DROP, reason="partition",
                             src=src, dst=dst, msg_type=msg_name)
            return
        fault = None
        if self._link_faults and src != dst:
            fault = self._link_faults.get(frozenset((src, dst)))
            if fault is not None and fault.down:
                # A severed link is its own failure mode with its own
                # counter — not a partition, not random loss.
                stats._messages_dropped_link.inc()
                if tracing:
                    trace.record(sim.now, MSG_DROP, reason="link_down",
                                 src=src, dst=dst, msg_type=msg_name)
                return
        copies = 1
        if self._duplicate_rate and sim.rng.random() < self._duplicate_rate:
            copies = 2
            stats._messages_duplicated.inc()
        for _ in range(copies):
            if self._loss_rate and sim.rng.random() < self._loss_rate:
                stats._messages_dropped_loss.inc()
                if tracing:
                    trace.record(sim.now, MSG_DROP, reason="loss",
                                 src=src, dst=dst, msg_type=msg_name)
                continue
            if fault is not None and fault.drop_rate \
                    and sim.rng.random() < fault.drop_rate:
                stats._messages_dropped_link.inc()
                if tracing:
                    trace.record(sim.now, MSG_DROP, reason="link_loss",
                                 src=src, dst=dst, msg_type=msg_name)
                continue
            if src == dst:
                delay = self.loopback_latency
            else:
                sampler = self._samplers.get((src, dst))
                if sampler is None:
                    sampler = self._link_sampler(src, dst)
                    self._samplers[(src, dst)] = sampler
                delay = sampler(sim.rng)
                if fault is not None and fault.extra_delay > 0:
                    delay += fault.extra_delay
            key = (sim.now + delay, dst)
            bucket = self._inflight.get(key)
            if bucket is None:
                self._inflight[key] = [(src, message)]
                sim._push_fn(key[0], self._deliver, key)
            else:
                bucket.append((src, message))

    def broadcast(self, src: NodeId, message: Any, include_self: bool = False) -> None:
        # Snapshot the membership: a callback reached from send() (e.g.
        # a latency model or future dynamic-membership hook registering
        # a node) must not blow up the iteration.
        for dst in list(self._nodes):
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)

    def _deliver(self, when: float, dst: NodeId) -> None:
        """Dispatch every message grouped under ``(when, dst)``.

        One scheduled event delivers the whole bucket, in send order
        (the grouping key is exact, so only genuinely simultaneous
        same-destination messages coalesce — under continuous latency
        models buckets are almost always singletons).  A grouped
        dispatch of *n* messages credits ``events_processed`` with the
        ``n - 1`` events the queue never had to pop, keeping the
        events/sec basis comparable across grouping regimes.  The
        crash check runs per message: a handler may crash its own node
        mid-batch, and the remaining messages must then drop exactly as
        they would have from their own events.
        """
        batch = self._inflight.pop((when, dst))
        sim = self.sim
        if len(batch) > 1:
            sim.events_processed += len(batch) - 1
        node = self._nodes.get(dst)
        if node is None:  # pragma: no cover - node removed mid-flight
            return
        trace = sim.trace
        tracing = trace.enabled
        inc_delivered = self._inc_delivered
        deliver = node.deliver
        for src, message in batch:
            if getattr(node, "crashed", False):
                self.stats._messages_dropped_crash.inc()
                if tracing:
                    trace.record(sim.now, MSG_DROP, reason="crash",
                                 src=src, dst=dst,
                                 msg_type=type(message).__name__)
                continue
            inc_delivered()
            if tracing:
                trace.record(sim.now, MSG_DELIVER, src=src, dst=dst,
                             msg_type=type(message).__name__)
            deliver(src, message)
