"""The deterministic discrete-event simulator.

A :class:`Simulator` owns a virtual clock, an event queue and a seeded
random number generator.  Everything in this package — network delays,
replica protocols, client workloads — runs as callbacks on one
simulator instance, so a whole distributed execution is a single
deterministic function of the seed.

Time is a ``float`` in **milliseconds**; the unit convention matters
because the geo topologies in :mod:`repro.sim.topology` are expressed
in real-world WAN round-trip terms.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

from ..analysis.registry import MetricsRegistry
from ..errors import SimulationError
from .events import Event, EventQueue
from .trace import NULL_TRACER


def _fn_name(fn: Callable[..., Any]) -> str:
    return getattr(fn, "__qualname__", None) or repr(fn)


class Simulator:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator's RNG.  Two simulators built with the
        same seed and driven by the same code produce byte-identical
        traces.
    tracer:
        Optional :class:`repro.sim.trace.Tracer`.  Defaults to the
        shared no-op tracer, so untraced runs pay only an ``enabled``
        check at each hook point.
    metrics:
        Optional :class:`repro.analysis.registry.MetricsRegistry`;
        one is created per simulator by default.  The network and the
        replication protocols publish their counters here.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    >>> sim.now
    5.0
    """

    def __init__(
        self,
        seed: int = 0,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.now: float = 0.0
        self.trace = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue = EventQueue()
        self._push = self._queue.push  # bound once: scheduling is hot
        self._push_fn = self._queue.push_fn  # handle-free fast path
        self._push_pooled = self._queue.push_pooled  # call_soon backend
        self._running = False
        self._stopped = False
        self.events_processed = 0

    def annotate(self, category: str, **data: Any) -> None:
        """Record a protocol-defined trace annotation at the current
        simulated time (no-op when tracing is disabled)."""
        if self.trace.enabled:
            self.trace.annotate(self.now, category, **data)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated milliseconds.

        Returns a cancellable :class:`Event` handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._push(self.now + delay, fn, args)

    def schedule_daemon(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Like :meth:`schedule`, but the event does not keep
        :meth:`run` alive — use for periodic protocol timers (gossip,
        hint pushes) that would otherwise make the simulation run
        forever."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._push(self.now + delay, fn, args, daemon=True)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        return self._push(time, fn, args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at the current time, after pending events
        already scheduled for this instant.

        This is the fast path the future/process machinery leans on:
        no delay validation, no clock arithmetic — straight onto the
        queue at ``now``.  The returned handle is **pool-backed**: it
        may be cancelled before it fires, but must not be retained
        past dispatch (the dispatch loop recycles it — see
        :func:`repro.sim.events.set_pool_debug`).  Callers needing a
        long-lived handle at the current instant should use
        ``schedule(0.0, ...)``.
        """
        return self._push_pooled(self.now, fn, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  When the queue
            was drained up to ``until``, the clock is advanced to
            ``until`` on return, so periodic timers can be resumed by a
            later ``run`` call.  If the run broke early (``max_events``
            or :meth:`stop`) with live events still due before
            ``until``, the clock stays at the last executed event so a
            later ``run``/:meth:`step` resumes without time-travel.
        max_events:
            Safety valve — stop after this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        limit = max_events if max_events is not None else float("inf")
        # Hot loop: hoist every per-iteration attribute lookup and
        # inline peek/pop straight against the heap (EventQueue._compact
        # rebuilds the heap list in place, so the alias stays valid
        # across callbacks).  The tracer's ``enabled`` flag is a class
        # attribute, so it cannot change mid-run; ``_fn_name`` is only
        # computed when it is on.
        #
        # Dispatch is *batched*: the outer loop picks the next
        # timestamp, the inner loop drains every entry at that instant
        # (including ones pushed mid-batch by the callbacks — call_soon
        # cascades) without re-evaluating the outer-loop conditions.
        # Each entry stays in the heap until its own turn, so a
        # callback cancelling a later same-tick event still skips it —
        # the exact sequential-pop semantics, minus the per-event
        # bookkeeping.  Handle-free ``(time, seq, fn, args)`` entries
        # take the no-attribute-loads branch.
        queue = self._queue
        heap = queue._heap
        pop_entry = heapq.heappop
        recycle = queue.recycle
        trace = self.trace
        tracing = trace.enabled
        trace_record = trace.record
        no_deadline = until is None
        done = False
        try:
            while queue._live and not done:
                if no_deadline and queue._foreground == 0:
                    break  # only daemon timers remain: the run is done
                if not heap:
                    break
                tick = heap[0][0]
                if not no_deadline and tick > until:
                    break
                if tick < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event queue yielded an event in the past")
                self.now = tick
                while True:
                    entry = pop_entry(heap)
                    if len(entry) == 4:
                        fn = entry[2]
                        queue._live -= 1
                        queue._foreground -= 1
                        if tracing:
                            trace_record(
                                tick, "event_executed",
                                fn=_fn_name(fn), seq=entry[1], daemon=False,
                            )
                        fn(*entry[3])
                        processed += 1
                        self.events_processed += 1
                    else:
                        event = entry[2]
                        if event.cancelled:
                            queue._dead -= 1
                            if heap and heap[0][0] == tick:
                                continue
                            break
                        # Same accounting as EventQueue.pop(): mark
                        # executed *before* dispatch so a self-cancel
                        # is a no-op.
                        event.executed = True
                        queue._live -= 1
                        if not event.daemon:
                            queue._foreground -= 1
                        if tracing:
                            trace_record(
                                tick, "event_executed",
                                fn=_fn_name(event.fn), seq=event.seq,
                                daemon=event.daemon,
                            )
                        event.fn(*event.args)
                        if event.pooled:
                            recycle(event)
                        processed += 1
                        self.events_processed += 1
                    if self._stopped or processed >= limit:
                        done = True
                        break
                    if no_deadline and queue._foreground == 0:
                        break
                    if not heap or heap[0][0] != tick:
                        break
            if until is not None and not self._stopped and self.now < until:
                # Fast-forward to the deadline only if nothing is still
                # due before it — a max_events break leaves live events
                # behind, and jumping the clock past them would corrupt
                # the next run()/step() (events "in the past").
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until:
                    self.now = until
        finally:
            self._running = False

    def step(self, daemons: bool = True) -> bool:
        """Process exactly one event.  Returns ``False`` when idle.

        Parameters
        ----------
        daemons:
            When ``False``, a queue holding only daemon timers counts
            as idle — the same termination rule a deadline-less
            :meth:`run` applies.  The default ``True`` steps through
            daemons too (useful when driving the clock by hand).

        Like :meth:`run`, stepping is not re-entrant: the simulator is
        marked running while the callback executes, so a callback that
        calls ``run()`` (or ``step()``) fails loudly instead of
        silently interleaving two dispatch loops.
        """
        if self._running:
            raise SimulationError(
                "simulator is already running (re-entrant step())"
            )
        if not daemons and self._queue.foreground_live == 0:
            return False
        next_time = self._queue.peek_time()
        if next_time is None:
            return False
        if next_time < self.now:  # same guard as run()
            raise SimulationError("event queue yielded an event in the past")
        event = self._queue.pop()
        self.now = event.time
        if self.trace.enabled:
            self.trace.record(
                event.time, "event_executed",
                fn=_fn_name(event.fn), seq=event.seq, daemon=event.daemon,
            )
        self._running = True
        try:
            event.fn(*event.args)
        finally:
            self._running = False
        if event.pooled:
            self._queue.recycle(event)
        self.events_processed += 1
        return True

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active event returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.3f}ms seed={self.seed} "
            f"pending={self.pending_events}>"
        )
