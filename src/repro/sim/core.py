"""The deterministic discrete-event simulator.

A :class:`Simulator` owns a virtual clock, an event queue and a seeded
random number generator.  Everything in this package — network delays,
replica protocols, client workloads — runs as callbacks on one
simulator instance, so a whole distributed execution is a single
deterministic function of the seed.

Time is a ``float`` in **milliseconds**; the unit convention matters
because the geo topologies in :mod:`repro.sim.topology` are expressed
in real-world WAN round-trip terms.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from ..analysis.registry import MetricsRegistry
from ..errors import SimulationError
from .events import Event, EventQueue
from .trace import NULL_TRACER


def _fn_name(fn: Callable[..., Any]) -> str:
    return getattr(fn, "__qualname__", None) or repr(fn)


class Simulator:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator's RNG.  Two simulators built with the
        same seed and driven by the same code produce byte-identical
        traces.
    tracer:
        Optional :class:`repro.sim.trace.Tracer`.  Defaults to the
        shared no-op tracer, so untraced runs pay only an ``enabled``
        check at each hook point.
    metrics:
        Optional :class:`repro.analysis.registry.MetricsRegistry`;
        one is created per simulator by default.  The network and the
        replication protocols publish their counters here.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    >>> sim.now
    5.0
    """

    def __init__(
        self,
        seed: int = 0,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.now: float = 0.0
        self.trace = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    def annotate(self, category: str, **data: Any) -> None:
        """Record a protocol-defined trace annotation at the current
        simulated time (no-op when tracing is disabled)."""
        if self.trace.enabled:
            self.trace.annotate(self.now, category, **data)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated milliseconds.

        Returns a cancellable :class:`Event` handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, fn, args)

    def schedule_daemon(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Like :meth:`schedule`, but the event does not keep
        :meth:`run` alive — use for periodic protocol timers (gossip,
        hint pushes) that would otherwise make the simulation run
        forever."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, fn, args, daemon=True)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        return self._queue.push(time, fn, args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at the current time, after pending events
        already scheduled for this instant."""
        return self._queue.push(self.now, fn, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  When the queue
            was drained up to ``until``, the clock is advanced to
            ``until`` on return, so periodic timers can be resumed by a
            later ``run`` call.  If the run broke early (``max_events``
            or :meth:`stop`) with live events still due before
            ``until``, the clock stays at the last executed event so a
            later ``run``/:meth:`step` resumes without time-travel.
        max_events:
            Safety valve — stop after this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue:
                if until is None and self._queue.foreground_live == 0:
                    break  # only daemon timers remain: the run is done
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event.time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event queue yielded an event in the past")
                self.now = event.time
                if self.trace.enabled:
                    self.trace.record(
                        event.time, "event_executed",
                        fn=_fn_name(event.fn), seq=event.seq,
                        daemon=event.daemon,
                    )
                event.fn(*event.args)
                processed += 1
                self.events_processed += 1
                if self._stopped:
                    break
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and not self._stopped and self.now < until:
                # Fast-forward to the deadline only if nothing is still
                # due before it — a max_events break leaves live events
                # behind, and jumping the clock past them would corrupt
                # the next run()/step() (events "in the past").
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until:
                    self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one event.  Returns ``False`` when idle."""
        next_time = self._queue.peek_time()
        if next_time is None:
            return False
        if next_time < self.now:  # same guard as run()
            raise SimulationError("event queue yielded an event in the past")
        event = self._queue.pop()
        self.now = event.time
        if self.trace.enabled:
            self.trace.record(
                event.time, "event_executed",
                fn=_fn_name(event.fn), seq=event.seq, daemon=event.daemon,
            )
        event.fn(*event.args)
        self.events_processed += 1
        return True

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active event returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.3f}ms seed={self.seed} "
            f"pending={self.pending_events}>"
        )
