"""Named geo-replication topologies.

The tutorial's motivating setting is geo-replication: replicas in
multiple datacenters, clients near one of them, and WAN round trips
dominating latency.  This module provides a :class:`Topology` value
object plus presets with realistic inter-datacenter one-way delays
(derived from published RTT tables; all values in milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..errors import NetworkError
from .network import MatrixLatency


@dataclass(frozen=True)
class Topology:
    """A set of named sites and one-way delays between them.

    ``intra_site`` is the one-way delay between two nodes in the same
    datacenter.  Delays are looked up directed first, so an entry for
    ``(a, b)`` and a different one for ``(b, a)`` model an asymmetric
    link; a single entry serves both directions (the symmetric common
    case).

    ``regions`` optionally groups sites into named regions (e.g. a
    region with several availability zones).  When omitted, every site
    is its own singleton region — the geo presets below all behave
    that way.
    """

    name: str
    sites: tuple[str, ...]
    delays: dict[tuple[str, str], float] = field(hash=False)
    intra_site: float = 0.5
    regions: dict[str, tuple[str, ...]] | None = field(default=None, hash=False)

    def delay(self, a: str, b: str) -> float:
        """One-way delay between sites ``a`` and ``b``."""
        if a == b:
            return self.intra_site
        value = self.delays.get((a, b), self.delays.get((b, a)))
        if value is None:
            raise NetworkError(f"no delay between {a!r} and {b!r} in {self.name}")
        return value

    @property
    def region_names(self) -> tuple[str, ...]:
        """Region names, in declaration order (sites when ungrouped)."""
        if self.regions is None:
            return self.sites
        return tuple(self.regions)

    def region_of(self, site: str) -> str:
        """The region a site belongs to (itself when ungrouped)."""
        if self.regions is not None:
            for region, sites in self.regions.items():
                if site in sites:
                    return region
        if site in self.sites:
            return site
        raise NetworkError(f"unknown site {site!r} in {self.name}")

    def sites_in(self, region: str) -> tuple[str, ...]:
        """The sites grouped under ``region`` (a singleton when ungrouped)."""
        if self.regions is not None and region in self.regions:
            return self.regions[region]
        if region in self.sites:
            return (region,)
        raise NetworkError(f"unknown region {region!r} in {self.name}")

    def latency_model(
        self,
        site_of: dict[Hashable, str],
        jitter: float = 0.1,
    ) -> MatrixLatency:
        """Build a :class:`MatrixLatency` for nodes placed at sites.

        ``site_of`` maps node id → site name; unknown nodes raise at
        send time, which catches placement bugs early.
        """
        for node, site in site_of.items():
            if site not in self.sites:
                raise NetworkError(f"node {node!r} placed at unknown site {site!r}")
        matrix: dict[tuple[str, str], float] = {}
        for a in self.sites:
            for b in self.sites:
                matrix[(a, b)] = self.delay(a, b)
        mapping = dict(site_of)
        return MatrixLatency(matrix, site_of=lambda n: mapping[n], jitter=jitter)

    def nearest_site(self, origin: str, candidates: list[str]) -> str:
        """The candidate site with the lowest delay from ``origin``.

        Ties break deterministically on candidate order: among
        equidistant sites the one listed *first* wins, regardless of
        name.  Callers therefore control tie preference by ordering
        the candidate list.
        """
        if not candidates:
            raise NetworkError("no candidate sites")
        return min(
            enumerate(candidates),
            key=lambda pair: (self.delay(origin, pair[1]), pair[0]),
        )[1]


def symmetric_delays(
    pairs: dict[tuple[str, str], float],
) -> dict[tuple[str, str], float]:
    """Mirror one-way delays both ways — the common case when building
    a custom :class:`Topology` from published RTT tables."""
    out = dict(pairs)
    for (a, b), v in pairs.items():
        out[(b, a)] = v
    return out


def asymmetric_delays(
    forward: dict[tuple[str, str], float],
    reverse: dict[tuple[str, str], float] | None = None,
    skew: float = 1.0,
) -> dict[tuple[str, str], float]:
    """Build a directed delay table for asymmetric WAN links.

    Each ``forward`` entry ``(a, b) -> v`` also gets a reverse entry
    ``(b, a) -> v * skew`` (real WAN paths are rarely symmetric:
    transit routing and congestion differ per direction).  Explicit
    ``reverse`` entries override the skewed default, so individual
    links can be pinned precisely::

        asymmetric_delays({("us", "eu"): 40.0}, skew=1.15)
        # {("us","eu"): 40.0, ("eu","us"): 46.0}
    """
    out = dict(forward)
    for (a, b), v in forward.items():
        out.setdefault((b, a), v * skew)
    if reverse:
        out.update(reverse)
    return out


#: Backwards-compatible short alias used internally.
_sym = symmetric_delays


#: Single datacenter: every node ~0.5 ms from every other.
SINGLE_DC = Topology(
    name="single-dc",
    sites=("dc",),
    delays={},
    intra_site=0.5,
)

#: Three US regions — the "cheap" geo case.
US_TRIANGLE = Topology(
    name="us-triangle",
    sites=("us-east", "us-central", "us-west"),
    delays=_sym(
        {
            ("us-east", "us-central"): 16.0,
            ("us-east", "us-west"): 36.0,
            ("us-central", "us-west"): 22.0,
        }
    ),
)

#: Five continents — the tutorial's worst-case wide-area deployment.
WORLD5 = Topology(
    name="world-5",
    sites=("us-east", "us-west", "eu", "asia", "brazil"),
    delays=_sym(
        {
            ("us-east", "us-west"): 36.0,
            ("us-east", "eu"): 40.0,
            ("us-east", "asia"): 110.0,
            ("us-east", "brazil"): 60.0,
            ("us-west", "eu"): 70.0,
            ("us-west", "asia"): 85.0,
            ("us-west", "brazil"): 95.0,
            ("eu", "asia"): 120.0,
            ("eu", "brazil"): 95.0,
            ("asia", "brazil"): 160.0,
        }
    ),
)

#: Three sites, one per continent — used by the Paxos scaling experiment.
THREE_CONTINENTS = Topology(
    name="three-continents",
    sites=("us-east", "eu", "asia"),
    delays=_sym(
        {
            ("us-east", "eu"): 40.0,
            ("us-east", "asia"): 110.0,
            ("eu", "asia"): 120.0,
        }
    ),
)

TOPOLOGIES: dict[str, Topology] = {
    t.name: t for t in (SINGLE_DC, US_TRIANGLE, WORLD5, THREE_CONTINENTS)
}


def round_robin_placement(node_ids: list, sites: tuple[str, ...]) -> dict:
    """Assign nodes to sites round-robin — the default replica layout."""
    if not sites:
        raise NetworkError("cannot place nodes: no sites given")
    return {node: sites[i % len(sites)] for i, node in enumerate(node_ids)}
