"""Named geo-replication topologies.

The tutorial's motivating setting is geo-replication: replicas in
multiple datacenters, clients near one of them, and WAN round trips
dominating latency.  This module provides a :class:`Topology` value
object plus presets with realistic inter-datacenter one-way delays
(derived from published RTT tables; all values in milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..errors import NetworkError
from .network import MatrixLatency


@dataclass(frozen=True)
class Topology:
    """A set of named sites and symmetric one-way delays between them.

    ``intra_site`` is the one-way delay between two nodes in the same
    datacenter.
    """

    name: str
    sites: tuple[str, ...]
    delays: dict[tuple[str, str], float] = field(hash=False)
    intra_site: float = 0.5

    def delay(self, a: str, b: str) -> float:
        """One-way delay between sites ``a`` and ``b``."""
        if a == b:
            return self.intra_site
        value = self.delays.get((a, b), self.delays.get((b, a)))
        if value is None:
            raise NetworkError(f"no delay between {a!r} and {b!r} in {self.name}")
        return value

    def latency_model(
        self,
        site_of: dict[Hashable, str],
        jitter: float = 0.1,
    ) -> MatrixLatency:
        """Build a :class:`MatrixLatency` for nodes placed at sites.

        ``site_of`` maps node id → site name; unknown nodes raise at
        send time, which catches placement bugs early.
        """
        for node, site in site_of.items():
            if site not in self.sites:
                raise NetworkError(f"node {node!r} placed at unknown site {site!r}")
        matrix: dict[tuple[str, str], float] = {}
        for a in self.sites:
            for b in self.sites:
                matrix[(a, b)] = self.delay(a, b)
        mapping = dict(site_of)
        return MatrixLatency(matrix, site_of=lambda n: mapping[n], jitter=jitter)

    def nearest_site(self, origin: str, candidates: list[str]) -> str:
        """The candidate site with the lowest delay from ``origin``."""
        if not candidates:
            raise NetworkError("no candidate sites")
        return min(candidates, key=lambda s: self.delay(origin, s))


def symmetric_delays(
    pairs: dict[tuple[str, str], float],
) -> dict[tuple[str, str], float]:
    """Mirror one-way delays both ways — the common case when building
    a custom :class:`Topology` from published RTT tables."""
    out = dict(pairs)
    for (a, b), v in pairs.items():
        out[(b, a)] = v
    return out


#: Backwards-compatible short alias used internally.
_sym = symmetric_delays


#: Single datacenter: every node ~0.5 ms from every other.
SINGLE_DC = Topology(
    name="single-dc",
    sites=("dc",),
    delays={},
    intra_site=0.5,
)

#: Three US regions — the "cheap" geo case.
US_TRIANGLE = Topology(
    name="us-triangle",
    sites=("us-east", "us-central", "us-west"),
    delays=_sym(
        {
            ("us-east", "us-central"): 16.0,
            ("us-east", "us-west"): 36.0,
            ("us-central", "us-west"): 22.0,
        }
    ),
)

#: Five continents — the tutorial's worst-case wide-area deployment.
WORLD5 = Topology(
    name="world-5",
    sites=("us-east", "us-west", "eu", "asia", "brazil"),
    delays=_sym(
        {
            ("us-east", "us-west"): 36.0,
            ("us-east", "eu"): 40.0,
            ("us-east", "asia"): 110.0,
            ("us-east", "brazil"): 60.0,
            ("us-west", "eu"): 70.0,
            ("us-west", "asia"): 85.0,
            ("us-west", "brazil"): 95.0,
            ("eu", "asia"): 120.0,
            ("eu", "brazil"): 95.0,
            ("asia", "brazil"): 160.0,
        }
    ),
)

#: Three sites, one per continent — used by the Paxos scaling experiment.
THREE_CONTINENTS = Topology(
    name="three-continents",
    sites=("us-east", "eu", "asia"),
    delays=_sym(
        {
            ("us-east", "eu"): 40.0,
            ("us-east", "asia"): 110.0,
            ("eu", "asia"): 120.0,
        }
    ),
)

TOPOLOGIES: dict[str, Topology] = {
    t.name: t for t in (SINGLE_DC, US_TRIANGLE, WORLD5, THREE_CONTINENTS)
}


def round_robin_placement(node_ids: list, sites: tuple[str, ...]) -> dict:
    """Assign nodes to sites round-robin — the default replica layout."""
    return {node: sites[i % len(sites)] for i, node in enumerate(node_ids)}
