"""Client-side session guarantees (Terry et al.), as an enforcement layer.

The tutorial frames session guarantees as a *client library* concern:
the store stays eventually consistent, and the client tracks version
floors — the newest version it has written (for read-your-writes) and
read (for monotonic reads) per key — and refuses to accept replies
below its floor, retrying (same or another replica) until the floor is
met.  Writes-follow-reads and monotonic writes additionally require
the *store* to order writes after a floor; single-master stores
(timeline, primary-backup, Multi-Paxos) give both for free, which is
why this layer only needs the two read-side floors.

:class:`SessionClient` is store-agnostic: it wraps any pair of
``read_fn(key) -> Future[(value, version)]`` and
``write_fn(key, value) -> Future[version]`` callables — see
:func:`timeline_session` for the PNUTS adapter used in E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from ..errors import TimeoutError as ReproTimeoutError
from ..histories import HistoryRecorder
from ..sim import Future, Simulator, spawn

GUARANTEES = ("ryw", "mr", "mw", "wfr")


@dataclass
class SessionStats:
    """Cost accounting for guarantee enforcement."""

    reads: int = 0
    writes: int = 0
    read_retries: int = 0
    reads_rejected_stale: int = 0


@dataclass
class SessionState:
    """The session token: per-key floors."""

    write_floor: dict = field(default_factory=dict)   # key -> version
    read_floor: dict = field(default_factory=dict)    # key -> version

    def required_version(self, key: Hashable, guarantees: frozenset) -> int:
        floor = 0
        if "ryw" in guarantees:
            floor = max(floor, self.write_floor.get(key, 0))
        if "mr" in guarantees:
            floor = max(floor, self.read_floor.get(key, 0))
        return floor

    def note_write(self, key: Hashable, version: int) -> None:
        current = self.write_floor.get(key, 0)
        if version > current:
            self.write_floor[key] = version

    def note_read(self, key: Hashable, version: int) -> None:
        current = self.read_floor.get(key, 0)
        if version > current:
            self.read_floor[key] = version


class SessionClient:
    """Wraps raw read/write functions with session-guarantee floors.

    Parameters
    ----------
    sim:
        The simulator (for retry timers).
    read_fn / write_fn:
        The underlying store operations.  ``read_fn`` may optionally
        accept an ``attempt`` keyword (used to spread retries across
        replicas); plain single-argument callables work too.
    guarantees:
        Any subset of ``{"ryw", "mr", "mw", "wfr"}``.  The read-side
        pair drives the retry loop; ``mw``/``wfr`` are recorded for
        introspection (single-master stores enforce them server-side).
    retry_delay:
        Backoff between stale-read retries, in ms.
    max_retries:
        Give up (fail the read future) after this many stale replies.
    """

    def __init__(
        self,
        sim: Simulator,
        read_fn: Callable[..., Future],
        write_fn: Callable[[Hashable, Any], Future],
        guarantees: Iterable[str] = (),
        retry_delay: float = 10.0,
        max_retries: int = 50,
        session_id: Hashable = "session",
    ) -> None:
        guarantees = frozenset(guarantees)
        unknown = guarantees - set(GUARANTEES)
        if unknown:
            raise ValueError(f"unknown guarantees: {sorted(unknown)}")
        self.sim = sim
        self.read_fn = read_fn
        self.write_fn = write_fn
        self.guarantees = guarantees
        self.retry_delay = retry_delay
        self.max_retries = max_retries
        self.state = SessionState()
        self.stats = SessionStats()
        self.session_id = session_id
        #: Client-observed history: only *accepted* replies appear, so
        #: checkers see what the application saw (raw store histories
        #: include the stale replies the floors rejected).
        self.recorder = HistoryRecorder(sim)
        self._accepts_attempt = self._probe_attempt_kwarg(read_fn)

    @staticmethod
    def _probe_attempt_kwarg(read_fn: Callable) -> bool:
        import inspect

        try:
            signature = inspect.signature(read_fn)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return False
        return "attempt" in signature.parameters

    # ------------------------------------------------------------------
    def write(self, key: Hashable, value: Any) -> Future:
        """Write through the store; floors advance on success."""
        self.stats.writes += 1
        handle = self.recorder.begin("write", key, self.session_id)
        inner = self.write_fn(key, value)
        outer = Future(self.sim, label=f"session-write({key!r})")

        def done(future: Future) -> None:
            if future.error is not None:
                self.recorder.fail(handle)
                outer.fail(future.error)
                return
            version = future.value
            self.state.note_write(key, version)
            self.recorder.complete(handle, version, value)
            outer.resolve(version)

        inner.add_callback(done)
        return outer

    def read(self, key: Hashable) -> Future:
        """Read honoring the session's floors; resolves (value, version)."""
        self.stats.reads += 1
        floor = self.state.required_version(key, self.guarantees)
        handle = self.recorder.begin("read", key, self.session_id)
        outer = Future(self.sim, label=f"session-read({key!r})")

        def attempt_read(attempt: int):
            if self._accepts_attempt:
                inner = self.read_fn(key, attempt=attempt)
            else:
                inner = self.read_fn(key)
            try:
                value, version = yield inner
            except Exception as exc:  # noqa: BLE001 - surface to caller
                self.recorder.fail(handle)
                outer.fail(exc)
                return
            if version >= floor:
                self.state.note_read(key, version)
                self.recorder.complete(handle, version, value)
                outer.resolve((value, version))
                return
            self.stats.reads_rejected_stale += 1
            if attempt >= self.max_retries:
                self.recorder.fail(handle)
                outer.fail(
                    ReproTimeoutError(
                        f"read of {key!r} below floor v{floor} after "
                        f"{attempt} retries"
                    )
                )
                return
            self.stats.read_retries += 1
            yield self.retry_delay
            spawn(self.sim, attempt_read(attempt + 1), name="session-retry")

        spawn(self.sim, attempt_read(1), name="session-read")
        return outer

    def history(self):
        """The session-level (client-observed) history."""
        return self.recorder.history()


def timeline_session(
    client,
    guarantees: Iterable[str] = ("ryw", "mr"),
    retry_delay: float = 10.0,
    spread_replicas: bool = False,
) -> SessionClient:
    """Session layer over a :class:`~repro.replication.TimelineClient`.

    Reads use ``read_any`` (cheap, possibly stale) and let the floor
    loop enforce the guarantees — the tutorial's point that session
    guarantees are purchasable *on top of* an eventually consistent
    read path.  With ``spread_replicas`` retries rotate the home
    replica, converting waiting into shopping around.
    """
    cluster = client.cluster

    def read_fn(key, attempt: int = 1) -> Future:
        if spread_replicas and attempt > 1:
            nodes = cluster.node_ids
            client.home = nodes[(attempt - 1) % len(nodes)]
        return client.read_any(key)

    def write_fn(key, value) -> Future:
        return client.write(key, value)

    return SessionClient(
        client.sim,
        read_fn,
        write_fn,
        guarantees=guarantees,
        retry_delay=retry_delay,
        session_id=client.session,
    )
