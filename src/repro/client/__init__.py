"""Client-side consistency machinery: session guarantees as a library."""

from .session import (
    GUARANTEES,
    SessionClient,
    SessionState,
    SessionStats,
    timeline_session,
)

__all__ = [
    "SessionClient",
    "SessionState",
    "SessionStats",
    "GUARANTEES",
    "timeline_session",
]
