"""Exception hierarchy for the repro library.

Every exception raised by this package derives from :class:`ReproError`
so callers can catch library failures with a single ``except`` clause
while still distinguishing simulator misuse from protocol-level outcomes
(timeouts, unavailability, transaction aborts).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state (e.g. scheduling
    an event in the past, or running a stopped simulator)."""


class NetworkError(ReproError):
    """Invalid use of the simulated network (unknown node, bad group)."""


class UnavailableError(ReproError):
    """An operation could not complete because too few replicas were
    reachable — the 'A' a system gives up under partition (CAP)."""


class TimeoutError(ReproError):  # noqa: A001 - deliberate domain name
    """An operation did not complete within its deadline."""


class OverloadedError(UnavailableError):
    """A server shed the request at admission (bounded service queue
    full, or token-bucket throttle) instead of queueing it.

    Carries an advisory ``retry_after`` hint in milliseconds — the
    server's estimate of when capacity frees up.  The RPC retry layer
    treats the hint as a back-pressure signal: the request is
    retryable (it was never executed), but not before ``retry_after``
    elapses.
    """

    def __init__(self, message: str = "overloaded",
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuorumError(UnavailableError):
    """A read or write quorum could not be assembled."""


class TransactionAborted(ReproError):
    """A transaction was aborted (deadlock, conflict, or invariant)."""

    def __init__(self, reason: str = "aborted") -> None:
        super().__init__(reason)
        self.reason = reason


class InvariantViolation(ReproError):
    """An application invariant (e.g. non-negative balance) would be
    violated by the requested operation."""


class ConsistencyViolation(ReproError):
    """A checker found a history that violates the claimed model.

    Raised only by ``check_*_or_raise`` helpers; the plain checkers
    return structured verdicts instead of raising.
    """


class NotLeaderError(ReproError):
    """A request requiring the leader/master was sent to a non-leader."""


class StorageError(ReproError):
    """Invalid use of a storage engine (missing key where required)."""
