"""Logical clocks: the causality machinery under every protocol here.

* :class:`LamportClock` — scalar happened-before witness, LWW tiebreak.
* :class:`VectorClock` — exact causality; detects concurrency.
* :class:`VersionVector` — per-object causality for replicated stores.
* :class:`DottedValueSet` — dotted version vectors (Riak-style sibling
  management without sibling explosion).
* :class:`HybridLogicalClock` — physical-time-flavored causal stamps.
"""

from .dvv import Dot, DottedValueSet, DottedVersion
from .hlc import HLCStamp, HybridLogicalClock
from .lamport import LamportClock, LamportStamp
from .vector import EMPTY_CLOCK, Ordering, VectorClock
from .version_vector import VersionVector, joint_ceiling, reduce_siblings

__all__ = [
    "LamportClock",
    "LamportStamp",
    "VectorClock",
    "Ordering",
    "EMPTY_CLOCK",
    "VersionVector",
    "reduce_siblings",
    "joint_ceiling",
    "Dot",
    "DottedVersion",
    "DottedValueSet",
    "HLCStamp",
    "HybridLogicalClock",
]
