"""Vector clocks and the causal partial order.

A vector clock maps node id → event count.  Comparison yields one of
four :class:`Ordering` outcomes; ``CONCURRENT`` is the case that makes
eventual consistency interesting — two updates neither of which saw
the other, which a replica must either arbitrate (LWW), keep as
siblings (MV-register), or merge (CRDT).

Vector clocks here are immutable value objects: every mutation returns
a new clock.  That keeps them safe to embed in messages and recorded
histories without defensive copying.
"""

from __future__ import annotations

import enum
from typing import Hashable, Iterator, Mapping


class Ordering(enum.Enum):
    """Outcome of comparing two vector clocks under happened-before."""

    BEFORE = "before"          # self < other
    AFTER = "after"            # self > other
    EQUAL = "equal"
    CONCURRENT = "concurrent"  # incomparable


class VectorClock(Mapping[Hashable, int]):
    """An immutable vector clock.

    >>> v = VectorClock().tick("a").tick("a").tick("b")
    >>> v["a"], v["b"], v["c"]
    (2, 1, 0)
    >>> w = v.tick("c")
    >>> v.compare(w) is Ordering.BEFORE
    True
    >>> x, y = VectorClock().tick("a"), VectorClock().tick("b")
    >>> x.compare(y) is Ordering.CONCURRENT
    True
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: Mapping[Hashable, int] | None = None) -> None:
        source = dict(counts or {})
        for node, count in source.items():
            if not isinstance(count, int) or count < 0:
                raise ValueError(f"invalid count {count!r} for {node!r}")
        self._counts: dict[Hashable, int] = {
            k: v for k, v in source.items() if v > 0
        }
        self._hash: int | None = None

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, node: Hashable) -> int:
        return self._counts.get(node, 0)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._counts == other._counts

    # -- Clock operations -------------------------------------------------
    def tick(self, node: Hashable) -> "VectorClock":
        """Return a clock with ``node``'s entry incremented."""
        counts = dict(self._counts)
        counts[node] = counts.get(node, 0) + 1
        return VectorClock(counts)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum — the join of the causal lattice."""
        counts = dict(self._counts)
        for node, count in other._counts.items():
            if count > counts.get(node, 0):
                counts[node] = count
        return VectorClock(counts)

    def compare(self, other: "VectorClock") -> Ordering:
        """Compare under the happened-before partial order."""
        le = all(self[n] <= other[n] for n in self._counts)
        ge = all(other[n] <= self[n] for n in other._counts)
        if le and ge:
            return Ordering.EQUAL
        if le:
            return Ordering.BEFORE
        if ge:
            return Ordering.AFTER
        return Ordering.CONCURRENT

    def dominates(self, other: "VectorClock") -> bool:
        """True when ``self >= other`` pointwise (EQUAL or AFTER)."""
        return all(self[n] >= c for n, c in other._counts.items())

    def strictly_dominates(self, other: "VectorClock") -> bool:
        return self.dominates(other) and self._counts != other._counts

    def concurrent_with(self, other: "VectorClock") -> bool:
        return self.compare(other) is Ordering.CONCURRENT

    def entries(self) -> dict[Hashable, int]:
        """A plain-dict copy (for serialization / size accounting)."""
        return dict(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{node}:{count}"
            for node, count in sorted(self._counts.items(), key=lambda kv: str(kv[0]))
        )
        return f"VC({inner})"


EMPTY_CLOCK = VectorClock()
