"""Version vectors: per-object causality for replicated stores.

Structurally a version vector is a vector clock, but the entries count
*updates applied at each replica to one object*, not events at a
process.  The distinction matters for the API: replicas ``bump`` their
own entry on a coordinated write, and stores compare vectors to decide
whether an incoming version supersedes, is superseded by, or conflicts
with the local one.

This module reuses :class:`~repro.clocks.vector.VectorClock` for the
math and adds the store-facing operations, including sibling reduction
(dropping versions dominated by another version in a set).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from .vector import Ordering, VectorClock


class VersionVector(VectorClock):
    """A vector clock counting updates per replica for one object."""

    __slots__ = ()

    def bump(self, replica: Hashable) -> "VersionVector":
        """Record one more update coordinated by ``replica``."""
        return VersionVector(self.tick(replica).entries())

    def descends_from(self, other: "VersionVector") -> bool:
        """True when this vector has seen everything ``other`` has.

        ``v.descends_from(w)`` means a value at ``v`` may safely
        overwrite one at ``w`` — no update is lost.
        """
        return self.dominates(other)

    def merge(self, other: VectorClock) -> "VersionVector":  # type: ignore[override]
        return VersionVector(super().merge(other).entries())

    def __repr__(self) -> str:
        return "VV" + super().__repr__()[2:]


def reduce_siblings(
    versions: Iterable[tuple[VersionVector, object]],
) -> list[tuple[VersionVector, object]]:
    """Drop versions whose vector is dominated by another's.

    Input is ``(vector, value)`` pairs; the result keeps one
    representative per distinct maximal vector (later entries win among
    exact-equal vectors, matching overwrite semantics) and preserves
    first-seen order of the survivors.
    """
    items = list(versions)
    survivors: list[tuple[VersionVector, object]] = []
    for vector, value in items:
        dominated = False
        replaced_index: int | None = None
        for index, (kept_vector, _kept_value) in enumerate(survivors):
            cmp = vector.compare(kept_vector)
            if cmp is Ordering.BEFORE:
                dominated = True
                break
            if cmp in (Ordering.AFTER, Ordering.EQUAL):
                replaced_index = index
                break
        if dominated:
            continue
        if replaced_index is not None:
            # The new version supersedes (or equals) a survivor; it may
            # also supersede others, so sweep the rest too.
            survivors[replaced_index] = (vector, value)
            survivors = [
                kept
                for i, kept in enumerate(survivors)
                if i == replaced_index
                or not vector.strictly_dominates(kept[0])
            ]
        else:
            survivors.append((vector, value))
    return survivors


def joint_ceiling(vectors: Iterable[Mapping[Hashable, int]]) -> VersionVector:
    """Pointwise max over many vectors — the least vector dominating all."""
    out = VersionVector()
    for vector in vectors:
        out = out.merge(
            vector if isinstance(vector, VectorClock) else VectorClock(vector)
        )
    return out
