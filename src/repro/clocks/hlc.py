"""Hybrid logical clocks (Kulkarni et al.).

HLC timestamps stay close to physical time but still respect
happened-before, which lets last-writer-wins arbitration approximate
"wall-clock latest" without the lost-update anomalies of raw physical
clocks under skew.  Used by the timeline and LWW stores when a
wall-clock-flavored total order is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Callable, Hashable


@total_ordering
@dataclass(frozen=True)
class HLCStamp:
    """An HLC timestamp: (physical component, logical tiebreaker, node)."""

    physical: float
    logical: int
    node: Hashable

    def __lt__(self, other: "HLCStamp") -> bool:
        if not isinstance(other, HLCStamp):
            return NotImplemented
        return (self.physical, self.logical, str(self.node)) < (
            other.physical,
            other.logical,
            str(other.node),
        )

    def __str__(self) -> str:
        return f"{self.physical:.3f}.{self.logical}@{self.node}"


class HybridLogicalClock:
    """Per-node HLC driven by a physical-time source.

    ``physical_time`` is any zero-argument callable — in simulations,
    ``lambda: sim.now`` (possibly offset to model clock skew).
    """

    def __init__(self, node: Hashable, physical_time: Callable[[], float]) -> None:
        self.node = node
        self.physical_time = physical_time
        self._last_physical = 0.0
        self._logical = 0

    def now(self) -> HLCStamp:
        """Stamp a local event (send or local update)."""
        pt = self.physical_time()
        if pt > self._last_physical:
            self._last_physical = pt
            self._logical = 0
        else:
            self._logical += 1
        return HLCStamp(self._last_physical, self._logical, self.node)

    def observe(self, stamp: HLCStamp) -> HLCStamp:
        """Stamp a message receipt, advancing past the sender."""
        pt = self.physical_time()
        if pt > self._last_physical and pt > stamp.physical:
            self._last_physical = pt
            self._logical = 0
        elif stamp.physical > self._last_physical:
            self._last_physical = stamp.physical
            self._logical = stamp.logical + 1
        elif stamp.physical == self._last_physical:
            self._logical = max(self._logical, stamp.logical) + 1
        else:
            self._logical += 1
        return HLCStamp(self._last_physical, self._logical, self.node)

    @property
    def drift(self) -> float:
        """How far the HLC has run ahead of physical time (0 when the
        physical component equals the local physical clock)."""
        return max(0.0, self._last_physical - self.physical_time())
