"""Dotted version vectors (Preguiça et al.), as used by Riak.

Plain version vectors conflate "the client read version X" with "the
server stored version X", which inflates sibling sets under concurrent
writes through the same coordinator (the *sibling explosion* problem).
A dotted version vector names each stored write with a unique **dot**
``(replica, counter)`` on top of a causal-context vector, so a server
can tell exactly which siblings a new write supersedes: those covered
by the write's context.

The unit of state here is :class:`DottedValueSet` — the full sibling
set for one key at one replica — with the two server operations:

* :meth:`DottedValueSet.put` — coordinate a client write carrying the
  causal context the client last read.
* :meth:`DottedValueSet.sync` — merge the sets of two replicas
  (anti-entropy / read repair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .vector import VectorClock


@dataclass(frozen=True)
class Dot:
    """A globally unique write identifier: the n-th write at a replica."""

    replica: Hashable
    counter: int

    def __str__(self) -> str:
        return f"({self.replica},{self.counter})"


@dataclass(frozen=True)
class DottedVersion:
    """One stored sibling: its dot plus the context it was written in."""

    dot: Dot
    context: VectorClock
    value: object

    def covered_by(self, clock: VectorClock) -> bool:
        """True when ``clock`` has seen this version's dot."""
        return clock[self.dot.replica] >= self.dot.counter


class DottedValueSet:
    """Sibling set for one key at one replica, with DVV semantics.

    >>> s = DottedValueSet()
    >>> ctx0 = s.context()
    >>> s = s.put("r1", "a", ctx0)          # first write
    >>> s = s.put("r1", "b", ctx0)          # concurrent write, same ctx
    >>> sorted(s.values())
    ['a', 'b']
    >>> s = s.put("r1", "c", s.context())   # read-modify-write
    >>> s.values()
    ['c']
    """

    __slots__ = ("versions", "clock")

    def __init__(
        self,
        versions: tuple[DottedVersion, ...] = (),
        clock: VectorClock | None = None,
    ) -> None:
        self.versions = versions
        self.clock = clock if clock is not None else VectorClock()

    # ------------------------------------------------------------------
    def context(self) -> VectorClock:
        """The causal context to hand to readers: the replica's clock."""
        return self.clock

    def values(self) -> list[object]:
        """Current sibling values, in stored order."""
        return [v.value for v in self.versions]

    def is_empty(self) -> bool:
        return not self.versions

    # ------------------------------------------------------------------
    def put(
        self, replica: Hashable, value: object, client_context: VectorClock
    ) -> "DottedValueSet":
        """Apply a client write coordinated at ``replica``.

        The write supersedes exactly the siblings covered by
        ``client_context``; others remain as concurrent siblings.
        Returns a new set (value semantics).
        """
        counter = self.clock[replica] + 1
        dot = Dot(replica, counter)
        new_clock = self.clock.merge(client_context).merge(
            VectorClock({replica: counter})
        )
        survivors = tuple(
            v for v in self.versions if not v.covered_by(client_context)
        )
        new_version = DottedVersion(dot=dot, context=client_context, value=value)
        return DottedValueSet(survivors + (new_version,), new_clock)

    def sync(self, other: "DottedValueSet") -> "DottedValueSet":
        """Merge two replicas' sets (commutative, associative, idempotent).

        A version survives iff the *other* side has not seen its dot, or
        both sides store it.
        """
        mine = {v.dot: v for v in self.versions}
        theirs = {v.dot: v for v in other.versions}
        keep: dict[Dot, DottedVersion] = {}
        for dot, version in mine.items():
            if dot in theirs or not version.covered_by(other.clock):
                keep[dot] = version
        for dot, version in theirs.items():
            if dot in keep:
                continue
            if dot in mine or not version.covered_by(self.clock):
                keep[dot] = version
        merged_clock = self.clock.merge(other.clock)
        ordered = tuple(
            sorted(keep.values(), key=lambda v: (str(v.dot.replica), v.dot.counter))
        )
        return DottedValueSet(ordered, merged_clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sibs = ", ".join(f"{v.dot}={v.value!r}" for v in self.versions)
        return f"DVV[{sibs} | ctx={self.clock!r}]"
