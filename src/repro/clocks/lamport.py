"""Lamport scalar clocks (Lamport 1978).

The tutorial's ordering discussion bottoms out in Lamport's
happened-before relation; the scalar clock is its cheapest witness:
if ``a`` happened-before ``b`` then ``L(a) < L(b)`` (but not
conversely).  Ties are broken by node id to give the total order used
by last-writer-wins registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Hashable


@total_ordering
@dataclass(frozen=True)
class LamportStamp:
    """A (counter, node) pair; totally ordered, counter-major."""

    counter: int
    node: Hashable

    def __lt__(self, other: "LamportStamp") -> bool:
        if not isinstance(other, LamportStamp):
            return NotImplemented
        return (self.counter, str(self.node)) < (other.counter, str(other.node))

    def __str__(self) -> str:
        return f"{self.counter}@{self.node}"


class LamportClock:
    """A per-node Lamport clock.

    >>> a, b = LamportClock("a"), LamportClock("b")
    >>> s1 = a.tick()
    >>> s2 = b.observe(s1)   # receive: advance past the sender
    >>> s1 < s2
    True
    """

    def __init__(self, node: Hashable, start: int = 0) -> None:
        self.node = node
        self.counter = start

    def tick(self) -> LamportStamp:
        """Local event: advance and stamp."""
        self.counter += 1
        return LamportStamp(self.counter, self.node)

    def observe(self, stamp: LamportStamp) -> LamportStamp:
        """Message receipt: jump past the incoming stamp, then tick."""
        self.counter = max(self.counter, stamp.counter)
        return self.tick()

    def peek(self) -> LamportStamp:
        """Current stamp without advancing (for reads)."""
        return LamportStamp(self.counter, self.node)
