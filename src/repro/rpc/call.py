"""The engine executing one logical RPC under a :class:`RetryPolicy`.

An :class:`RpcCall` drives a small state machine over a client's
one-shot request primitive:

* sequential attempts with exponential, jittered backoff, rotating
  across a failover-ordered endpoint list;
* an optional speculative *hedge* launched after ``hedge_after`` ms of
  silence — first response wins, the loser is abandoned (its eventual
  reply is traced as a ``hedge_cancel`` drop);
* one overall deadline bounding attempts *and* backoff waits.

The engine publishes ``rpc.*`` counters through the simulator's
metrics registry and ``rpc_*`` annotations through its tracer, so
retries, failovers and hedge wins are visible in the same places the
protocols already report to.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from ..errors import TimeoutError as ReproTimeoutError
from ..sim import Future
from .policy import RetryPolicy

#: Counter names published under the ``rpc.`` prefix.
RPC_COUNTERS = (
    "calls",
    "attempts",
    "retries",
    "failovers",
    "hedges",
    "hedge_wins",
    "deadline_exceeded",
    "dedup_hits",
    "throttled",
)


def rpc_counters(metrics) -> dict:
    """Get-or-create the shared ``rpc.*`` counters on a registry."""
    return {name: metrics.counter(f"rpc.{name}") for name in RPC_COUNTERS}


class RpcCall:
    """One logical call: retries + hedges over failover endpoints.

    Built by :meth:`repro.replication.common.ClientNode.call`; the
    interesting state is exposed for tests (``attempts``, ``hedges``,
    ``future``).
    """

    __slots__ = (
        "client", "sim", "endpoints", "payload", "policy",
        "idempotency_key", "deadline_at", "future", "attempts", "hedges",
        "_pending", "_cursor", "_retry_timer", "_hedge_timer", "_metrics",
    )

    def __init__(
        self,
        client,
        endpoints: Sequence[Hashable],
        payload: Any,
        policy: RetryPolicy,
        timeout: float | None = None,
        idempotency_key: Hashable | None = None,
    ) -> None:
        self.client = client
        self.sim = client.sim
        self.endpoints = list(endpoints)
        if not self.endpoints:
            raise ValueError("call needs at least one endpoint")
        self.payload = payload
        self.policy = policy
        self.idempotency_key = idempotency_key
        deadline = policy.deadline if policy.deadline is not None else timeout
        self.deadline_at = None if deadline is None else self.sim.now + deadline
        self.future = Future(
            self.sim, label=f"rpc({type(payload).__name__})"
        )
        self.attempts = 0           # sequential attempts launched
        self.hedges = 0             # speculative duplicates launched
        self._pending: dict[int, Hashable] = {}   # request_id -> endpoint
        self._cursor = 0            # next failover endpoint index
        self._hedge_timer = None
        self._retry_timer = None
        self._metrics = client._rpc_counters
        self._metrics["calls"].inc()
        self._launch(hedge=False)

    # ------------------------------------------------------------------
    # Launching attempts
    # ------------------------------------------------------------------
    def _next_endpoint(self) -> Hashable:
        if not self.policy.failover or len(self.endpoints) == 1:
            return self.endpoints[0]
        endpoint = self.endpoints[self._cursor % len(self.endpoints)]
        self._cursor += 1
        return endpoint

    def _launch(self, hedge: bool) -> None:
        timeout = self.policy.request_timeout
        if self.deadline_at is not None:
            remaining = self.deadline_at - self.sim.now
            if remaining <= 0:
                self._deadline_exceeded()
                return
            timeout = remaining if timeout is None else min(timeout, remaining)
        endpoint = self._next_endpoint()
        locality = getattr(self.client, "locality", None)
        local = locality.is_local(endpoint) if locality is not None else None
        if hedge:
            self.hedges += 1
            self._metrics["hedges"].inc()
            self.sim.annotate(
                "rpc_hedge", client=self.client.node_id, endpoint=endpoint,
                payload=type(self.payload).__name__,
            )
        else:
            self.attempts += 1
            if self.attempts > 1 and endpoint != self.endpoints[0]:
                self._metrics["failovers"].inc()
                if local is False:
                    self.sim.metrics.counter(
                        "rpc.cross_region_failovers"
                    ).inc()
                self.sim.annotate(
                    "rpc_failover", client=self.client.node_id,
                    endpoint=endpoint,
                    payload=type(self.payload).__name__,
                )
        self._metrics["attempts"].inc()
        request_id, inner = self.client._issue(
            endpoint, self.payload, timeout=timeout,
            idempotency_key=self.idempotency_key,
        )
        self._pending[request_id] = endpoint
        inner.add_callback(
            lambda f, rid=request_id, h=hedge: self._attempt_done(rid, h, f)
        )
        if (
            not hedge
            and self.policy.hedge_after is not None
            and self.hedges < self.policy.max_hedges
        ):
            self._hedge_timer = self.client.set_timer(
                self.policy.hedge_after, self._fire_hedge
            )

    def _fire_hedge(self) -> None:
        self._hedge_timer = None
        if self.future.done or not self._pending:
            return
        if self.hedges >= self.policy.max_hedges:
            return
        self._launch(hedge=True)

    def _retry(self) -> None:
        self._retry_timer = None
        if self.future.done:
            return
        self._launch(hedge=False)

    # ------------------------------------------------------------------
    # Attempt outcomes
    # ------------------------------------------------------------------
    def _attempt_done(self, request_id: int, hedge: bool, inner: Future) -> None:
        self._pending.pop(request_id, None)
        if self.future.done:
            return
        if inner.error is None:
            self._succeed(hedge, inner.value)
            return
        if self._pending:
            # A concurrent (hedged) attempt is still in flight — let it
            # decide the call's fate before retrying or failing.
            return
        if not self.policy.retryable(inner.error):
            self._finish(error=inner.error)
            return
        if self.attempts >= self.policy.max_attempts:
            self._finish(error=inner.error)
            return
        delay = self.policy.backoff(self.attempts - 1, self.sim.rng)
        hint = getattr(inner.error, "retry_after", None)
        if hint is not None and hint > delay:
            # Back-pressure: the server told us when capacity frees up;
            # retrying sooner would only be shed again.
            delay = hint
            self._metrics["throttled"].inc()
        if (
            self.deadline_at is not None
            and self.sim.now + delay >= self.deadline_at
        ):
            self._deadline_exceeded()
            return
        self._metrics["retries"].inc()
        self.sim.annotate(
            "rpc_retry", client=self.client.node_id,
            attempt=self.attempts, delay=round(delay, 3),
            error=type(inner.error).__name__,
            payload=type(self.payload).__name__,
        )
        self._retry_timer = self.client.set_timer(delay, self._retry)

    def _succeed(self, hedge: bool, value: Any) -> None:
        self._cancel_timers()
        for request_id, endpoint in list(self._pending.items()):
            self.client._abandon(request_id, endpoint, reason="hedge_cancel")
        self._pending.clear()
        if hedge:
            self._metrics["hedge_wins"].inc()
            self.sim.annotate(
                "rpc_hedge_win", client=self.client.node_id,
                payload=type(self.payload).__name__,
            )
        self.future.resolve(value)

    def _finish(self, error: BaseException) -> None:
        self._cancel_timers()
        self.future.fail(error)

    def _deadline_exceeded(self) -> None:
        self._cancel_timers()
        self._metrics["deadline_exceeded"].inc()
        self.sim.annotate(
            "rpc_deadline_exceeded", client=self.client.node_id,
            attempts=self.attempts, payload=type(self.payload).__name__,
        )
        self.future.fail(ReproTimeoutError(
            f"rpc deadline exceeded after {self.attempts} attempt(s)"
        ))

    def _cancel_timers(self) -> None:
        if self._hedge_timer is not None:
            self._hedge_timer.cancel()
            self._hedge_timer = None
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
