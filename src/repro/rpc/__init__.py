"""Resilient RPC: retry policies, failover, hedging, idempotency.

The tutorial's availability claims for eventually consistent stores
(PAPER.md, E5) rest on *client-side redundancy*: a Dynamo-lineage
client retries, fails over to another replica, and hedges slow
requests, so the store keeps serving while a strongly consistent store
blocks.  This package is that machinery, shared by every protocol
client instead of re-invented (or skipped) per protocol:

* :class:`RetryPolicy` — declarative policy: attempt budget,
  per-attempt timeout, overall deadline, exponential backoff with
  seeded-RNG jitter, endpoint failover, and optional hedged requests.
* :class:`RpcCall` — the engine driving one logical call under a
  policy (used via :meth:`repro.replication.common.ClientNode.call`).

All timing randomness (backoff jitter) is drawn from the simulator's
seeded RNG, so retried and hedged runs stay byte-for-byte
deterministic — the property the CI determinism job asserts.
"""

from .call import RPC_COUNTERS, RpcCall, rpc_counters
from .policy import DEFAULT_RETRYABLE, RetryPolicy

__all__ = [
    "RetryPolicy",
    "RpcCall",
    "DEFAULT_RETRYABLE",
    "RPC_COUNTERS",
    "rpc_counters",
]
