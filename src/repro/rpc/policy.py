"""Retry policies: the declarative half of the RPC layer.

A :class:`RetryPolicy` says *when* a call may be re-issued — how many
sequential attempts, how long each may run, how long the whole call
may run, how retries back off, whether retries rotate across failover
endpoints, and whether a speculative hedge is launched while the
first attempt is still pending.  The engine that executes a policy
lives in :mod:`repro.rpc.call`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import TimeoutError as ReproTimeoutError
from ..errors import UnavailableError

#: Errors a retry can plausibly fix: the request (or its reply) was
#: lost in transit, or the serving node could not assemble enough
#: replicas.  Semantic failures (``NotLeaderError`` at a fixed
#: endpoint, validation errors) are not retried unless a policy
#: explicitly opts in via ``retry_on``.
DEFAULT_RETRYABLE: tuple[type, ...] = (ReproTimeoutError, UnavailableError)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How one logical RPC may be re-issued.

    Parameters
    ----------
    max_attempts:
        Sequential attempt budget (1 = no retries).  Hedges are
        speculative duplicates and draw from ``max_hedges`` instead.
    request_timeout:
        Per-attempt timeout in ms (clipped to the remaining deadline).
    deadline:
        Overall budget in ms for the whole call, across all attempts
        and backoff waits.  When ``None``, the ``timeout`` argument of
        :meth:`ClientNode.call` acts as the deadline, so existing
        ``timeout=`` plumbing (the workload driver, session options)
        bounds the retrying call end-to-end.
    backoff_base / backoff_factor / backoff_max:
        Retry ``i`` (0-based) waits ``min(backoff_max,
        backoff_base * backoff_factor**i)`` ms before re-issuing.
    jitter:
        Multiplies each backoff by ``1 + jitter * rng.random()`` using
        the *simulator's* seeded RNG — randomized spacing that is still
        a deterministic function of the sim seed.
    failover:
        Rotate retries (and hedges) across the call's endpoint list
        instead of hammering the preferred endpoint.
    hedge_after:
        When set, launch a speculative duplicate attempt after this
        many ms without a response (pick it near the expected p9x
        latency).  First response wins; the loser is abandoned and
        shows up in traces as a ``hedge_cancel`` drop.
    max_hedges:
        Hedge budget for the whole call.
    retry_on:
        Exception classes worth retrying; anything else fails fast.
    """

    max_attempts: int = 3
    request_timeout: float | None = 200.0
    deadline: float | None = None
    backoff_base: float = 10.0
    backoff_factor: float = 2.0
    backoff_max: float = 2_000.0
    jitter: float = 0.5
    failover: bool = True
    hedge_after: float | None = None
    max_hedges: int = 1
    retry_on: tuple[type, ...] = field(default=DEFAULT_RETRYABLE)

    def __post_init__(self) -> None:
        object.__setattr__(self, "retry_on", tuple(self.retry_on))
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.backoff_max < 0:
            raise ValueError("backoff_max must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.hedge_after is not None and self.hedge_after < 0:
            raise ValueError("hedge_after must be non-negative")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be non-negative")

    def backoff(self, retry_index: int, rng: random.Random) -> float:
        """Delay in ms before retry ``retry_index`` (0-based)."""
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** retry_index,
        )
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retry_on)
