"""Sequential consistency checker.

Sequential consistency drops linearizability's real-time constraint:
there must be *some* single total order of all operations, consistent
with each session's program order, in which every read returns the
latest preceding write.  Unlike linearizability it is **not local** —
keys cannot be checked independently — so the search interleaves whole
sessions and tracks the register state of every key at once.

Exact checking is exponential; the memoized DFS below is fine for the
history sizes the experiments produce (E11 charts the growth).
"""

from __future__ import annotations

from ..histories import History, Operation
from .base import Verdict


def check_sequential(history: History, max_states: int = 2_000_000) -> Verdict:
    """Is there a legal sequentially consistent total order?"""
    verdict = Verdict("sequential-consistency")
    sessions = [history.by_session(s) for s in history.sessions]
    sessions = [ops for ops in sessions if ops]
    verdict.checked_ops = sum(len(ops) for ops in sessions)
    if not sessions:
        return verdict

    seen: set[tuple] = set()
    budget = [max_states]

    def dfs(positions: tuple[int, ...], versions: tuple) -> bool:
        if all(
            position == len(session)
            for position, session in zip(positions, sessions)
        ):
            return True
        state = (positions, versions)
        if state in seen or budget[0] <= 0:
            return False
        budget[0] -= 1
        seen.add(state)
        version_map = dict(versions)
        for index, session in enumerate(sessions):
            position = positions[index]
            if position == len(session):
                continue
            op: Operation = session[position]
            next_positions = (
                positions[:index] + (position + 1,) + positions[index + 1:]
            )
            if op.is_read:
                if version_map.get(op.key, 0) == op.version:
                    if dfs(next_positions, versions):
                        return True
            else:
                new_map = dict(version_map)
                new_map[op.key] = op.version
                new_versions = tuple(sorted(new_map.items(), key=lambda kv: repr(kv)))
                if dfs(next_positions, new_versions):
                    return True
        return False

    ok = dfs(tuple(0 for _ in sessions), ())
    if not ok:
        if budget[0] <= 0:
            verdict.add(
                f"undecided — state budget exhausted ({max_states} states)"
            )
        else:
            verdict.add("no sequentially consistent total order exists")
    return verdict


def check_sequential_or_raise(history: History) -> Verdict:
    return check_sequential(history).raise_if_violated()
