"""Eventual-consistency (convergence) checking.

The liveness half of eventual consistency: once updates stop and
replicas keep exchanging state, all replicas expose the same data.
These helpers compare replica snapshots (any ``snapshot()``-providing
store or a plain dict) and quantify divergence while a run is still
in flight, which is what the anti-entropy experiment (E4) plots over
time.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from .base import Verdict


def _as_snapshot(replica: Any) -> Mapping:
    if isinstance(replica, Mapping):
        return replica
    snapshot = getattr(replica, "snapshot", None)
    if callable(snapshot):
        return snapshot()
    raise TypeError(f"cannot snapshot {type(replica).__name__}")


def check_convergence(replicas: Sequence[Any]) -> Verdict:
    """All replicas expose identical key→value mappings."""
    verdict = Verdict("convergence")
    if not replicas:
        return verdict
    snapshots = [_as_snapshot(replica) for replica in replicas]
    reference = snapshots[0]
    all_keys = set()
    for snapshot in snapshots:
        all_keys |= set(snapshot)
    verdict.checked_ops = len(all_keys) * len(snapshots)
    for index, snapshot in enumerate(snapshots[1:], start=1):
        for key in all_keys:
            left = reference.get(key, _MISSING)
            right = snapshot.get(key, _MISSING)
            if left != right:
                verdict.add(
                    f"replica 0 and replica {index} disagree on {key!r}: "
                    f"{_show(left)} vs {_show(right)}"
                )
    return verdict


def divergence(replicas: Sequence[Any]) -> float:
    """Fraction of (key, replica-pair) combinations that disagree.

    0.0 means fully converged; 1.0 means no key agrees anywhere.
    """
    snapshots = [_as_snapshot(replica) for replica in replicas]
    if len(snapshots) < 2:
        return 0.0
    all_keys = set()
    for snapshot in snapshots:
        all_keys |= set(snapshot)
    if not all_keys:
        return 0.0
    disagreements = 0
    comparisons = 0
    for i in range(len(snapshots)):
        for j in range(i + 1, len(snapshots)):
            for key in all_keys:
                comparisons += 1
                if snapshots[i].get(key, _MISSING) != snapshots[j].get(
                    key, _MISSING
                ):
                    disagreements += 1
    return disagreements / comparisons


def stale_keys(reference: Any, replica: Any) -> set:
    """Keys where ``replica`` differs from ``reference``."""
    ref = _as_snapshot(reference)
    snap = _as_snapshot(replica)
    return {
        key
        for key in set(ref) | set(snap)
        if ref.get(key, _MISSING) != snap.get(key, _MISSING)
    }


class _Missing:
    def __repr__(self) -> str:
        return "<missing>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Missing)

    def __hash__(self) -> int:  # pragma: no cover
        return 0


_MISSING = _Missing()


def _show(value: Any) -> str:
    return repr(value)
