"""Linearizability checker (Wing–Gong search with memoization).

Linearizability is the strong end of the tutorial's spectrum: every
operation appears to take effect atomically between its invocation and
response.  Checking a recorded register history is NP-complete in
general; the classic Wing–Gong depth-first search with Lowe's
memoization is exact and fast on the histories our simulator produces.

Linearizability is *local* (a history is linearizable iff each key's
sub-history is), so we check per key and join the results — this is
what keeps the checker usable on multi-key workloads, and E11 measures
the residual exponential worst case on adversarial single-key
histories.

Semantics: writes install distinct versions of a key; a read returns
the version of the most recent linearized write (0 = initial state).
Operations with ``end is None`` (no response observed) may have taken
effect or not; the checker tries both.
"""

from __future__ import annotations

import math
from typing import Hashable

from ..histories import History, Operation
from .base import Verdict

_INFINITY = math.inf


def check_linearizability(
    history: History, max_states: int = 2_000_000
) -> Verdict:
    """Check the whole history, key by key.

    ``max_states`` bounds the search per key; if exhausted the verdict
    reports a violation flagged ``undecided`` rather than hanging.
    """
    verdict = Verdict("linearizability")
    verdict.checked_ops = len(history.completed)
    for key in history.keys:
        ops = [op for op in history.by_key(key)]
        result = _check_single_key(key, ops, max_states)
        if result is not None:
            verdict.add(result, ops=())
    return verdict


def check_linearizability_key(
    history: History, key: Hashable, max_states: int = 2_000_000
) -> bool:
    """Convenience: is the sub-history of ``key`` linearizable?"""
    return _check_single_key(key, history.by_key(key), max_states) is None


def _check_single_key(
    key: Hashable, ops: list[Operation], max_states: int
) -> str | None:
    """None if linearizable, else a violation description."""
    if not ops:
        return None
    reads = [op for op in ops if op.is_read]
    writes = [op for op in ops if op.is_write]
    incomplete_reads = [op for op in reads if not op.completed]
    # A read with no response constrains nothing.
    reads = [op for op in reads if op.completed]
    del incomplete_reads

    candidates = reads + writes
    id_to_op = {op.op_id: op for op in candidates}
    end_of = {
        op.op_id: (op.end if op.completed else _INFINITY) for op in candidates
    }
    start_of = {op.op_id: op.start for op in candidates}
    pending_write_ids = frozenset(
        op.op_id for op in writes if not op.completed
    )

    all_ids = frozenset(id_to_op)
    seen_states: set[tuple[frozenset, int]] = set()
    budget = [max_states]

    def dfs(remaining: frozenset, version: int) -> bool:
        if not remaining:
            return True
        state = (remaining, version)
        if state in seen_states:
            return False
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        seen_states.add(state)
        # An op may be linearized first among `remaining` iff no other
        # remaining op responded before it was invoked.
        frontier = min(end_of[op_id] for op_id in remaining)
        for op_id in remaining:
            if start_of[op_id] > frontier:
                continue
            op = id_to_op[op_id]
            rest = remaining - {op_id}
            if op.is_read:
                if op.version == version and dfs(rest, version):
                    return True
            else:
                if dfs(rest, op.version):
                    return True
                # A write with no response may also never take effect.
                if op_id in pending_write_ids and dfs(rest, version):
                    return True
        return False

    ok = dfs(all_ids, 0)
    if ok:
        return None
    if budget[0] <= 0:
        return (
            f"key {key!r}: undecided — state budget exhausted "
            f"({max_states} states)"
        )
    return f"key {key!r}: no linearization of {len(candidates)} ops exists"


def check_linearizability_or_raise(history: History) -> Verdict:
    return check_linearizability(history).raise_if_violated()
