"""Causal consistency checker.

Given a history where each read records the (per-key versioned) write
it returned, causal consistency requires an order containing

* session (program) order,
* reads-from order (a write precedes any read returning it),
* per-key version order (v1 < v2 for the same key),

under which no read returns a write that the order already supersedes:
if write ``w'`` (same key, higher version... or rather *any* other
version) causally precedes read ``r`` and the write ``w`` that ``r``
returned causally precedes ``w'``, then ``r`` read an overwritten
value — a causality violation.

With version order given, this is the polynomial-time variant
(transitive closure + one pass over reads); E11 contrasts its cost
with linearizability's exponential search.
"""

from __future__ import annotations

from ..histories import History, Operation
from .base import Verdict


def _build_causal_order(history: History) -> tuple[list[Operation], dict[int, set[int]]]:
    """Return (ops, predecessors) where predecessors[i] is the set of
    op indices causally before op i (transitively closed)."""
    ops = [op for op in history.completed]
    index_of = {op.op_id: i for i, op in enumerate(ops)}
    n = len(ops)
    direct: list[set[int]] = [set() for _ in range(n)]

    # Session order (consecutive edges suffice before closure).
    for session in history.sessions:
        session_ops = [op for op in history.by_session(session)]
        for earlier, later in zip(session_ops, session_ops[1:]):
            if earlier.op_id in index_of and later.op_id in index_of:
                direct[index_of[later.op_id]].add(index_of[earlier.op_id])

    # Reads-from: the write a read returned precedes the read.
    writes_by_key_version: dict[tuple, int] = {}
    for i, op in enumerate(ops):
        if op.is_write:
            writes_by_key_version[(op.key, op.version)] = i
    for i, op in enumerate(ops):
        if op.is_read and op.version > 0:
            writer = writes_by_key_version.get((op.key, op.version))
            if writer is not None:
                direct[i].add(writer)

    # Per-key version order between writes.
    for key in history.keys:
        key_writes = sorted(
            (op for op in ops if op.is_write and op.key == key),
            key=lambda op: op.version,
        )
        for earlier, later in zip(key_writes, key_writes[1:]):
            direct[index_of[later.op_id]].add(index_of[earlier.op_id])

    # Transitive closure over a topological-ish order.  The relation
    # may contain cycles if the history is already inconsistent; we
    # close with a simple fixpoint which handles that too.
    closed: list[set[int]] = [set(edges) for edges in direct]
    changed = True
    while changed:
        changed = False
        for i in range(n):
            additions: set[int] = set()
            for j in closed[i]:
                additions |= closed[j] - closed[i]
            if additions:
                closed[i] |= additions
                changed = True
    return ops, {i: closed[i] for i in range(n)}


def check_causal(history: History) -> Verdict:
    """Check causal consistency given per-key version order."""
    verdict = Verdict("causal-consistency")
    ops, predecessors = _build_causal_order(history)
    index_writes: dict[tuple, int] = {}
    for i, op in enumerate(ops):
        if op.is_write:
            index_writes[(op.key, op.version)] = i

    for i, op in enumerate(ops):
        # Cycle detection: an op causally preceding itself means the
        # session/reads-from/version orders contradict each other.
        if i in predecessors[i]:
            verdict.add(
                f"causality cycle through {op!r}", ops=(op,)
            )

    for i, op in enumerate(ops):
        if not op.is_read:
            continue
        verdict.checked_ops += 1
        # The read returns version op.version.  It is a violation if
        # some write w' to the same key causally precedes the read,
        # while the returned write is itself causally before w'
        # (i.e. the read observed a superseded value).
        returned = index_writes.get((op.key, op.version))
        for j in predecessors[i]:
            other = ops[j]
            if not (other.is_write and other.key == op.key):
                continue
            if other.version == op.version:
                continue
            if returned is None:
                # Read of the initial state while a causally earlier
                # write to the key exists.
                if op.version == 0:
                    verdict.add(
                        f"read of initial {op.key!r} despite causally "
                        f"preceding write v{other.version}",
                        ops=(op, other),
                    )
                    break
                continue
            if returned in predecessors[j]:
                verdict.add(
                    f"read {op.key!r}=v{op.version} superseded by causally "
                    f"preceding write v{other.version}",
                    ops=(op, other),
                )
                break
    return verdict


def check_causal_or_raise(history: History) -> Verdict:
    return check_causal(history).raise_if_violated()
