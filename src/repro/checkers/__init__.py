"""Consistency checkers: predicates over recorded histories.

One checker per rung of the tutorial's consistency ladder —
linearizability, sequential, causal, the four session guarantees,
bounded staleness, and eventual convergence — so every experiment's
consistency claims are machine-verified.
"""

from .base import Verdict, Violation
from .causal import check_causal, check_causal_or_raise
from .convergence import check_convergence, divergence, stale_keys
from .elastic import MISSING, check_no_lost_writes, read_back
from .linearizability import (
    check_linearizability,
    check_linearizability_key,
    check_linearizability_or_raise,
)
from .sequential import check_sequential, check_sequential_or_raise
from .session import (
    ALL_SESSION_GUARANTEES,
    check_all_session_guarantees,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_writes_follow_reads,
)
from .staleness import (
    ANY_TIER,
    ReadStaleness,
    TierStaleness,
    check_bounded_staleness,
    measure_staleness,
    stale_read_fraction,
    staleness_by_tier,
    staleness_distribution,
)

__all__ = [
    "Verdict",
    "Violation",
    "check_linearizability",
    "check_linearizability_key",
    "check_linearizability_or_raise",
    "check_sequential",
    "check_sequential_or_raise",
    "check_causal",
    "check_causal_or_raise",
    "check_read_your_writes",
    "check_monotonic_reads",
    "check_monotonic_writes",
    "check_writes_follow_reads",
    "check_all_session_guarantees",
    "ALL_SESSION_GUARANTEES",
    "check_convergence",
    "divergence",
    "stale_keys",
    "check_no_lost_writes",
    "read_back",
    "MISSING",
    "measure_staleness",
    "ReadStaleness",
    "TierStaleness",
    "ANY_TIER",
    "check_bounded_staleness",
    "stale_read_fraction",
    "staleness_by_tier",
    "staleness_distribution",
]
