"""Durability across topology changes: no acknowledged write lost.

The membership-churn anomaly the elastic chaos suite hunts for is a
*lost write*: a write the store acknowledged before (or during) a ring
move whose value is gone after the move commits and the store settles.
Version-rank comparisons do not survive a key changing clusters — the
donor's and recipient's token spaces are disjoint — so this checker
works from real time and values instead:

* for each key, the **last acknowledged write** is the completed write
  with the greatest end time in the client-observed history;
* the post-settle read-back of that key must return that value, the
  value of a *concurrent-or-later* acknowledged write (LWW arbitration
  between overlapping writes is the store's call), or the value of a
  **maybe-applied** write — a timed-out write the recorder kept,
  because its ack was lost but its effect may stand;
* a key with acknowledged writes that reads back *empty* is always a
  violation — eventual consistency never un-writes a key.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from ..histories import History, Operation
from .base import Verdict

#: Sentinel for "key absent on read-back" (distinct from value None).
MISSING = object()


def read_back(
    store: Any,
    keys: Iterable[Hashable],
    mode: str | None = None,
    timeout: float = 400.0,
    session_name: str = "verify",
) -> dict:
    """Read every key through one fresh session and run the simulator
    until the reads settle.  Returns ``key -> value`` with
    :data:`MISSING` for keys that failed or returned nothing."""
    sim = store.sim
    session = store.session(session_name)
    results: dict = {}
    for key in sorted(set(keys), key=repr):
        future = session.get(key, timeout=timeout)

        def done(f, k=key):
            if f.error is not None:
                results[k] = MISSING
            else:
                value, token = f.value
                results[k] = MISSING if value is None and token is None \
                    else value

        future.add_callback(done)
    sim.run()
    return results


def check_no_lost_writes(history: History, final: Mapping) -> Verdict:
    """Every key's settled value is explainable by the write history
    (see module docstring for the allowed set)."""
    verdict = Verdict("durability")
    writes: dict[Hashable, list[Operation]] = {}
    for op in history:
        if op.is_write:
            writes.setdefault(op.key, []).append(op)
    for key in sorted(writes, key=repr):
        acked = [op for op in writes[key] if op.completed]
        if not acked:
            continue
        verdict.checked_ops += 1
        last = max(acked, key=lambda op: (op.end, op.start, op.op_id))
        value = final.get(key, MISSING)
        if value is MISSING:
            verdict.add(
                f"key {key!r}: last acknowledged write of {last.value!r} "
                f"(acked at t={last.end:.2f}) read back empty",
                ops=(last,),
            )
            continue
        allowed = {op.value for op in acked if op.end >= last.start}
        allowed.update(
            op.value for op in writes[key] if not op.completed
        )
        if value not in allowed:
            verdict.add(
                f"key {key!r}: settled value {value!r} matches no "
                f"acknowledged-or-maybe-applied write at/after the last "
                f"ack ({last.value!r} at t={last.end:.2f})",
                ops=(last,),
            )
    return verdict
