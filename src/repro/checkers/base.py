"""Shared checker result types.

Checkers never raise on a violation — they return a :class:`Verdict`
listing every violation found, because the experiments *count*
violations (e.g. "stale-read rate under R=W=1").  ``*_or_raise``
wrappers exist for tests that want hard failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ConsistencyViolation
from ..histories import Operation


@dataclass(frozen=True)
class Violation:
    """One detected anomaly."""

    guarantee: str                 # e.g. "read-your-writes"
    description: str
    ops: tuple[Operation, ...] = ()

    def __str__(self) -> str:
        return f"[{self.guarantee}] {self.description}"


@dataclass
class Verdict:
    """Outcome of a checker run."""

    guarantee: str
    checked_ops: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def violation_rate(self) -> float:
        """Violations per checked operation (0 when nothing checked)."""
        if self.checked_ops == 0:
            return 0.0
        return len(self.violations) / self.checked_ops

    def add(
        self,
        description: str,
        ops: Iterable[Operation] = (),
        guarantee: str | None = None,
    ) -> None:
        self.violations.append(
            Violation(guarantee or self.guarantee, description, tuple(ops))
        )

    def raise_if_violated(self) -> "Verdict":
        if not self.ok:
            first = self.violations[0]
            raise ConsistencyViolation(
                f"{len(self.violations)} violation(s) of {self.guarantee}; "
                f"first: {first}"
            )
        return self

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return f"<{self.guarantee}: {status} over {self.checked_ops} ops>"
