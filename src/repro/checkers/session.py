"""Session-guarantee checkers (Terry et al., Bayou).

The four session guarantees are the tutorial's client-centric rungs
between eventual and causal consistency:

* **Read-your-writes** — a read sees every earlier write of its own
  session.
* **Monotonic reads** — successive reads never go backwards.
* **Monotonic writes** — a session's writes are applied everywhere in
  session order.
* **Writes-follow-reads** — a write is ordered after the writes whose
  effects the session had read.

All four are checked against the per-key version order recorded in the
history (see :mod:`repro.histories.events` for conventions).  All four
together (plus per-session total order) amount to causal consistency
for that client's observations.
"""

from __future__ import annotations

from ..histories import History
from .base import Verdict


def check_read_your_writes(history: History) -> Verdict:
    """Every read returns a version >= the session's own latest
    completed write to that key."""
    verdict = Verdict("read-your-writes")
    for session in history.sessions:
        highest_write: dict = {}
        for op in history.by_session(session):
            if op.is_write:
                highest_write[op.key] = max(
                    highest_write.get(op.key, 0), op.version
                )
            else:
                verdict.checked_ops += 1
                floor = highest_write.get(op.key, 0)
                if op.version < floor:
                    verdict.add(
                        f"session {session!r} wrote {op.key!r} v{floor} but a "
                        f"later read returned v{op.version}",
                        ops=(op,),
                    )
    return verdict


def check_monotonic_reads(history: History) -> Verdict:
    """Per session and key, read versions never decrease."""
    verdict = Verdict("monotonic-reads")
    for session in history.sessions:
        highest_read: dict = {}
        for op in history.by_session(session):
            if not op.is_read:
                continue
            verdict.checked_ops += 1
            floor = highest_read.get(op.key, 0)
            if op.version < floor:
                verdict.add(
                    f"session {session!r} read {op.key!r} v{floor} then "
                    f"went back to v{op.version}",
                    ops=(op,),
                )
            highest_read[op.key] = max(floor, op.version)
    return verdict


def check_monotonic_writes(history: History) -> Verdict:
    """Per session and key, installed write versions increase in
    session order (i.e. the system ordered the session's writes as
    issued)."""
    verdict = Verdict("monotonic-writes")
    for session in history.sessions:
        last_version: dict = {}
        for op in history.by_session(session):
            if not op.is_write:
                continue
            verdict.checked_ops += 1
            previous = last_version.get(op.key)
            if previous is not None and op.version <= previous:
                verdict.add(
                    f"session {session!r} writes to {op.key!r} installed "
                    f"out of order (v{previous} then v{op.version})",
                    ops=(op,),
                )
            last_version[op.key] = op.version
    return verdict


def check_writes_follow_reads(history: History) -> Verdict:
    """A session's write to a key is ordered after every version of
    that key the session had previously read."""
    verdict = Verdict("writes-follow-reads")
    for session in history.sessions:
        highest_read: dict = {}
        for op in history.by_session(session):
            if op.is_read:
                highest_read[op.key] = max(
                    highest_read.get(op.key, 0), op.version
                )
            else:
                verdict.checked_ops += 1
                floor = highest_read.get(op.key, 0)
                if op.version <= floor and floor > 0:
                    verdict.add(
                        f"session {session!r} read {op.key!r} v{floor} but "
                        f"its later write was ordered at v{op.version}",
                        ops=(op,),
                    )
    return verdict


ALL_SESSION_GUARANTEES = {
    "read-your-writes": check_read_your_writes,
    "monotonic-reads": check_monotonic_reads,
    "monotonic-writes": check_monotonic_writes,
    "writes-follow-reads": check_writes_follow_reads,
}


def check_all_session_guarantees(history: History) -> dict[str, Verdict]:
    """Run all four checkers; the combination approximates
    client-observed causal consistency."""
    return {name: check(history) for name, check in ALL_SESSION_GUARANTEES.items()}
