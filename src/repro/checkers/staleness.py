"""Staleness metrics and bounded-staleness checking.

Bounded staleness is the tutorial's "quantified eventual consistency":
a read may be stale, but by at most *k* versions (k-staleness) or *t*
milliseconds (t-visibility / Δ-atomicity).  These functions measure
both quantities for every read in a history and check declared bounds;
the PBS experiment (E2) aggregates them into the staleness
distributions the quorum sweep reports.

Histories recorded at a cache boundary tag each op with the serving
tier (``Operation.tier``: ``"cache"`` hit vs ``"store"`` backing
read).  Staleness is always measured against *all* completed writes —
the authoritative timeline — but every function here accepts a
``tier=`` filter so staleness can be attributed to the tier that
caused it, and :func:`staleness_by_tier` breaks the whole history down
per tier in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..histories import History, Operation
from .base import Verdict

#: Sentinel for "no tier filter" — ``None`` is itself a meaningful
#: tier value (ops recorded below any cache).
ANY_TIER = object()


@dataclass(frozen=True)
class ReadStaleness:
    """Staleness measurements for one read."""

    op: Operation
    versions_behind: int      # k-staleness: newest completed version - read version
    time_behind: float        # how long ago the read's version was superseded (0 if fresh)

    @property
    def fresh(self) -> bool:
        return self.versions_behind == 0


def measure_staleness(
    history: History, tier: Any = ANY_TIER
) -> list[ReadStaleness]:
    """Per-read staleness relative to writes completed before the read
    *started* (writes concurrent with the read never count as missed).

    ``tier`` restricts which *reads* are measured (e.g. ``"cache"``
    for hits only); the write timeline stays authoritative — every
    completed write counts regardless of the tier that recorded it.
    """
    out: list[ReadStaleness] = []
    writes_by_key: dict = {}
    for op in history.writes():
        if op.completed:
            writes_by_key.setdefault(op.key, []).append(op)
    for ops in writes_by_key.values():
        ops.sort(key=lambda op: op.version)

    for read in history.reads():
        if tier is not ANY_TIER and read.tier != tier:
            continue
        completed = [
            w for w in writes_by_key.get(read.key, ()) if w.end <= read.start
        ]
        if not completed:
            out.append(ReadStaleness(read, 0, 0.0))
            continue
        newest = completed[-1]
        behind = sum(1 for w in completed if w.version > read.version)
        time_behind = 0.0
        if behind:
            # When was the read's version first superseded?
            superseders = [w for w in completed if w.version > read.version]
            time_behind = max(0.0, read.start - min(w.end for w in superseders))
        del newest
        out.append(ReadStaleness(read, behind, time_behind))
    return out


def check_bounded_staleness(
    history: History,
    max_versions: int | None = None,
    max_time: float | None = None,
    tier: Any = ANY_TIER,
) -> Verdict:
    """Check every read against a k-staleness and/or t-visibility bound.

    ``tier`` narrows the check to reads served by one tier — e.g. a
    cache declares a TTL bound for its hits while the backing store
    declares its own."""
    if max_versions is None and max_time is None:
        raise ValueError("provide max_versions and/or max_time")
    bound_bits = []
    if max_versions is not None:
        bound_bits.append(f"k<={max_versions}")
    if max_time is not None:
        bound_bits.append(f"t<={max_time}ms")
    verdict = Verdict(f"bounded-staleness({','.join(bound_bits)})")
    for measurement in measure_staleness(history, tier=tier):
        verdict.checked_ops += 1
        if (
            max_versions is not None
            and measurement.versions_behind > max_versions
        ):
            verdict.add(
                f"read of {measurement.op.key!r} was "
                f"{measurement.versions_behind} versions behind "
                f"(bound {max_versions})",
                ops=(measurement.op,),
            )
        elif max_time is not None and measurement.time_behind > max_time:
            verdict.add(
                f"read of {measurement.op.key!r} returned a value "
                f"superseded {measurement.time_behind:.2f}ms earlier "
                f"(bound {max_time}ms)",
                ops=(measurement.op,),
            )
    return verdict


def stale_read_fraction(history: History, tier: Any = ANY_TIER) -> float:
    """Fraction of reads that missed at least one completed write."""
    measurements = measure_staleness(history, tier=tier)
    if not measurements:
        return 0.0
    return sum(1 for m in measurements if not m.fresh) / len(measurements)


def staleness_distribution(
    history: History, tier: Any = ANY_TIER
) -> dict[int, int]:
    """Histogram: k-staleness → number of reads."""
    histogram: dict[int, int] = {}
    for measurement in measure_staleness(history, tier=tier):
        histogram[measurement.versions_behind] = (
            histogram.get(measurement.versions_behind, 0) + 1
        )
    return histogram


@dataclass(frozen=True)
class TierStaleness:
    """Aggregate staleness of the reads one serving tier answered."""

    tier: Hashable
    reads: int
    stale: int
    max_versions_behind: int
    max_time_behind: float

    @property
    def stale_fraction(self) -> float:
        return self.stale / self.reads if self.reads else 0.0


def staleness_by_tier(history: History) -> dict[Hashable, TierStaleness]:
    """Per-tier staleness attribution in one pass.

    Groups every measured read by ``Operation.tier`` and aggregates,
    so a cache-fronted run can answer "is the staleness coming from
    hits or from the backing store?" directly.  Histories recorded
    below any cache land under the single ``None`` tier.
    """
    grouped: dict[Hashable, list[ReadStaleness]] = {}
    for measurement in measure_staleness(history):
        grouped.setdefault(measurement.op.tier, []).append(measurement)
    return {
        tier: TierStaleness(
            tier=tier,
            reads=len(measurements),
            stale=sum(1 for m in measurements if not m.fresh),
            max_versions_behind=max(
                (m.versions_behind for m in measurements), default=0
            ),
            max_time_behind=max(
                (m.time_behind for m in measurements), default=0.0
            ),
        )
        for tier, measurements in grouped.items()
    }
