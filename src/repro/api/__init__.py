"""Protocol-agnostic store API: one client surface for every mechanism.

>>> from repro.api import registry
>>> for name in registry.names():
...     print(name)
bayou
cached
causal
chain
multipaxos
pileus
primary_backup
quorum
quorum_siblings
timeline
"""

from . import registry
from .store import (
    READ_PREFERENCES,
    ConsistentStore,
    FnSession,
    StoreCapabilities,
    StoreSession,
    mapped_future,
    resolved,
)

# Importing the adapters module registers every protocol.
from . import adapters  # noqa: E402,F401

__all__ = [
    "READ_PREFERENCES",
    "ConsistentStore",
    "StoreSession",
    "FnSession",
    "StoreCapabilities",
    "registry",
    "mapped_future",
    "resolved",
    "adapters",
]
