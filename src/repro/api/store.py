"""The protocol-agnostic store interface.

The tutorial's taxonomy has one axis of consistency guarantees and one
axis of mechanisms — but a *client* only ever sees a key-value store.
:class:`ConsistentStore` is that client surface, one per replication
mechanism: ``put``/``get`` sessions plus a declared
:class:`StoreCapabilities` record saying which read modes, session
guarantees, and failure behaviors the mechanism offers.  Everything
above this layer — the workload driver, the sharded router, the CLI,
the conformance suite — is written once against this interface and
works for every registered protocol.

Contract
--------
* ``store.session(name)`` returns a :class:`StoreSession` — one
  client session attached to the simulated network.
* ``session.put(key, value, timeout=) -> Future`` resolves with a
  protocol-specific **version token** (Lamport stamp, causal rank,
  sequence number, …) whose only required property is a total order
  within a key.
* ``session.get(key, mode=, timeout=) -> Future`` resolves with
  ``(value, token)``.  ``mode`` must be one of
  ``store.capabilities.read_modes``.
* Failures surface as :class:`repro.errors.ReproError` on the future.
* ``store.history()`` returns the store-side recorded history when the
  protocol keeps one (``capabilities.has_history``); the driver keeps
  its own client-side history either way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..histories import History
from ..sim import Future, Network, Simulator

#: The read preferences a region-aware session may request.
#:
#: * ``primary`` — route reads to the authoritative replica (master,
#:   coordinator, primary) wherever it lives; strongest semantics, WAN
#:   round trips when the primary is remote.
#: * ``local_follower`` — read a replica in the session's own region;
#:   eventual/bounded-staleness semantics at intra-region latency.
#: * ``nearest`` — read whichever replica is cheapest to reach from
#:   the session's region (the local one when the region holds a
#:   replica, else the closest remote region).
READ_PREFERENCES = ("primary", "local_follower", "nearest")


@dataclass(frozen=True)
class StoreCapabilities:
    """What a registered protocol can do, for drivers and the CLI."""

    name: str
    description: str = ""
    #: Read modes ``get`` accepts; index 0 is the default.
    read_modes: tuple[str, ...] = ("default",)
    #: Session guarantees enforceable via ``session(guarantees=...)``.
    session_guarantees: tuple[str, ...] = ()
    #: Exposes a tentative (pre-commit) read view.
    tentative_reads: bool = False
    #: Reads may return multiple sibling values.
    multi_value_reads: bool = False
    #: Clients reach the store over the simulated network (False for
    #: Bayou's direct-attach replicas).
    networked: bool = True
    #: Keeps a store-side history (``store.history()`` works).
    has_history: bool = True
    #: Client ops keep succeeding when one non-coordinator replica
    #: crashes (chain replication famously does not, without
    #: reconfiguration).
    survives_replica_crash: bool = True
    #: Reads may be safely re-issued under a :class:`repro.rpc
    #: .RetryPolicy` (reads are naturally idempotent for every
    #: networked store).
    retry_safe_reads: bool = True
    #: Writes may be safely retried: the client attaches idempotency
    #: keys, so a re-sent write is applied at most once per server.
    retry_safe_writes: bool = True
    #: Retried reads rotate to other replicas when the preferred
    #: endpoint is down (False where one fixed node must serve the
    #: mode's semantics, e.g. chain tails and Paxos leaders).
    failover_reads: bool = False
    #: Retried writes rotate to other replicas (only protocols where
    #: any replica can coordinate or accept a write).
    failover_writes: bool = False
    #: Read modes whose completed reads are linearizable; the chaos
    #: conformance suite runs the linearizability checker on histories
    #: recorded in these modes (empty = no linearizability claim).
    linearizable_read_modes: tuple[str, ...] = ()
    #: Replicas converge once faults heal and :meth:`ConsistentStore
    #: .settle` quiesces the store — the liveness half of eventual
    #: consistency, asserted by the chaos convergence check.
    eventually_convergent: bool = True
    #: Topology is live: the store supports ``resize()`` /
    #: ``add_shard()`` / ``decommission_shard()`` mid-run (the elastic
    #: sharded router; fixed single clusters say False).
    elastic: bool = False
    #: Read preferences honoured by ``session(read_preference=...,
    #: region=...)`` when the store was built with a
    #: :class:`~repro.placement.Placement` (subset of
    #: :data:`READ_PREFERENCES`; empty = region-blind adapter).
    read_preferences: tuple[str, ...] = ()
    #: Guarantees this adapter explicitly does *not* defend under
    #: injected faults, as ``(guarantee, reason)`` pairs.  The chaos
    #: runner reports them as WAIVED instead of failing — a waiver is
    #: a documented design limitation, not a free pass: the reason is
    #: printed in every verdict table.
    chaos_waivers: tuple[tuple[str, str], ...] = ()
    #: Declared upper bound (simulated ms) on the t-visibility
    #: staleness a default-mode read may exhibit, when the store can
    #: promise one — a cache over a fresh backing store declares
    #: roughly its TTL plus write-visibility lag.  ``None`` = no
    #: declared bound; the conformance suites check
    #: ``check_bounded_staleness`` against this number when set.
    staleness_bound_ms: float | None = None

    @property
    def default_read_mode(self) -> str:
        return self.read_modes[0]

    def waiver_for(self, guarantee: str) -> str | None:
        """The documented waiver reason for ``guarantee``, if any."""
        for name, reason in self.chaos_waivers:
            if name == guarantee:
                return reason
        return None


class StoreSession(ABC):
    """One client session: the uniform ``put``/``get`` surface."""

    #: Session name (used as the history session id).
    name: Hashable
    #: The session's network node id, when it is a network client.
    client_id: Hashable | None = None
    #: The read preference this session was opened with (one of
    #: :data:`READ_PREFERENCES`), or ``None`` for region-blind sessions.
    read_preference: str | None = None
    #: The region this session originates from, when placed.
    region: str | None = None

    @abstractmethod
    def put(
        self, key: Hashable, value: Any, timeout: float | None = None
    ) -> Future:
        """Write; resolves with the write's version token."""

    @abstractmethod
    def get(
        self,
        key: Hashable,
        mode: str | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Read; resolves with ``(value, version token)``."""


class FnSession(StoreSession):
    """A session assembled from per-mode read callables.

    Most adapters are exactly this: a wrapped protocol client, one
    ``put`` callable, and a dict of read-mode callables — each taking
    ``(key, timeout)`` and returning a future already normalized to
    the contract above.
    """

    def __init__(
        self,
        name: Hashable,
        put_fn: Callable[[Hashable, Any, float | None], Future],
        read_fns: dict[str, Callable[[Hashable, float | None], Future]],
        default_mode: str,
        client_id: Hashable | None = None,
        client: Any = None,
        read_preference: str | None = None,
        region: str | None = None,
    ) -> None:
        self.name = name
        self.client_id = client_id
        self.client = client           # underlying protocol client (escape hatch)
        self.read_preference = read_preference
        self.region = region
        self._put_fn = put_fn
        self._read_fns = read_fns
        self._default_mode = default_mode

    def put(
        self, key: Hashable, value: Any, timeout: float | None = None
    ) -> Future:
        return self._put_fn(key, value, timeout)

    def get(
        self,
        key: Hashable,
        mode: str | None = None,
        timeout: float | None = None,
    ) -> Future:
        mode = mode or self._default_mode
        read_fn = self._read_fns.get(mode)
        if read_fn is None:
            raise ValueError(
                f"store does not support read mode {mode!r}; "
                f"have {sorted(self._read_fns)}"
            )
        return read_fn(key, timeout)


class ConsistentStore(ABC):
    """A replicated KV store behind one client surface.

    Adapters wrap the concrete cluster classes in
    :mod:`repro.replication` / :mod:`repro.sla`; the wrapped cluster
    stays reachable as ``store.cluster`` for protocol-specific
    experimentation.
    """

    capabilities: StoreCapabilities

    #: The :class:`~repro.placement.Placement` the store was built
    #: with, when region-aware (adapters accepting ``placement=`` set
    #: it; the nemesis and routing layers read it duck-typed).
    placement = None

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network

    @abstractmethod
    def session(self, name: Hashable | None = None, **opts: Any) -> StoreSession:
        """Create a client session (``opts`` are adapter-specific:
        ``coordinator=``, ``home=``, ``guarantees=``, ``sla=`` …)."""

    @abstractmethod
    def server_ids(self) -> list[Hashable]:
        """Ids of the server/replica nodes (for fault injection)."""

    def history(self) -> History:
        """The store-side recorded history (when kept)."""
        raise NotImplementedError(
            f"{self.capabilities.name} keeps no store-side history; "
            "use the workload driver's history instead"
        )

    def snapshots(self) -> list[dict]:
        """Per-replica state snapshots (for convergence checks)."""
        raise NotImplementedError

    def resize(self, shards: int, **opts: Any) -> Future:
        """Grow/shrink a live topology to ``shards`` shards (elastic
        stores only); resolves when the last ring move commits."""
        raise NotImplementedError(
            f"{self.capabilities.name} is not elastic; topology is "
            "fixed at build time"
        )

    def settle(self) -> None:
        """Force quiescence (anti-entropy sweep etc.); default no-op."""

    def crash(self, node_id: Hashable) -> None:
        """Crash one server node."""
        self._server(node_id).crash()

    def recover(self, node_id: Hashable) -> None:
        """Recover a crashed server node."""
        self._server(node_id).recover()

    def _server(self, node_id: Hashable):
        node = self.network.node(node_id)
        if node is None or node_id not in self.server_ids():
            raise KeyError(node_id)
        return node


def mapped_future(sim: Simulator, inner: Future, fn: Callable[[Any], Any]) -> Future:
    """A future resolving with ``fn(inner.value)`` (errors pass through)."""
    outer = Future(sim)

    def done(future: Future) -> None:
        if future.error is not None:
            outer.fail(future.error)
        else:
            outer.resolve(fn(future.value))

    inner.add_callback(done)
    return outer


def resolved(sim: Simulator, value: Any = None,
             error: BaseException | None = None) -> Future:
    """An already-completed future (for direct-attach stores like
    Bayou whose operations are synchronous local calls)."""
    future = Future(sim)
    if error is not None:
        future.fail(error)
    else:
        future.resolve(value)
    return future
