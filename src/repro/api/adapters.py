"""One :class:`~repro.api.store.ConsistentStore` adapter per mechanism.

Each adapter normalizes a protocol's native client surface
(``DynamoClient.put/get``, ``TimelineClient.write/read_any/…``,
``BayouReplica.write/read_tentative``, …) to the uniform session
contract: ``put -> Future[token]``, ``get -> Future[(value, token)]``,
where a *token* is the protocol's version metadata, totally ordered
within a key (the driver densifies tokens into checkable versions).

Registered names
----------------
``primary_backup``, ``quorum``, ``quorum_siblings``, ``causal``,
``timeline``, ``bayou``, ``chain``, ``multipaxos``, ``pileus``.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..client import timeline_session
from ..rpc import RetryPolicy
from ..replication import (
    BayouCluster,
    CausalCluster,
    ChainCluster,
    DynamoCluster,
    MultiPaxosCluster,
    PrimaryBackupCluster,
    SiblingDynamoCluster,
    TimelineCluster,
)
from ..placement import Placement
from ..sim import Network, Simulator
from ..sla import SHOPPING_CART, SLA, SLAClient
from . import registry
from .store import (
    READ_PREFERENCES,
    ConsistentStore,
    FnSession,
    StoreCapabilities,
    StoreSession,
    mapped_future,
    resolved,
)


def _tune_servers(
    nodes,
    service_time: float = 0.0,
    queue_limit: int | None = None,
    admission_rate: float | None = None,
    admission_burst: float | None = None,
) -> None:
    """Apply capacity/overload knobs to a cluster's server nodes (see
    :class:`repro.replication.common.ServerNode` for semantics)."""
    for node in nodes:
        if service_time > 0:
            node.service_time = service_time
        if queue_limit is not None:
            node.queue_limit = queue_limit
        if admission_rate is not None:
            node.admission_rate = admission_rate
        if admission_burst is not None:
            node.admission_burst = admission_burst


def _apply_retry(client, session_retry, store_retry) -> None:
    """Attach the effective :class:`RetryPolicy` to a protocol client:
    the session-level override wins over the store-wide default."""
    policy = session_retry if session_retry is not None else store_retry
    if policy is not None:
        client.retry = policy


def _norm_versioned(pair):
    """(value, int-version) -> (value, token) with 0 meaning 'nothing'."""
    value, version = pair
    return value, (version or None)


def _spread_unplaced(placement: Placement | None, node_ids) -> None:
    """Region-spread any server nodes no one placed yet.

    The sharded router pre-places each shard's replicas with a
    per-shard stagger before building the cluster; a standalone store
    built directly with ``placement=`` gets the default round-robin
    spread here instead."""
    if placement is None:
        return
    unplaced = [n for n in node_ids if not placement.is_placed(n)]
    if unplaced:
        placement.spread(unplaced)


def _session_region(store, read_preference, region):
    """Validate and resolve a session's ``(read_preference, region)``.

    Returns ``(None, None)`` for region-blind sessions.  Otherwise the
    store must have been built with ``placement=`` and the preference
    must be declared in its capabilities; ``region`` falls back to the
    placement's ``default_region``."""
    if read_preference is None and region is None:
        return None, None
    placement = store.placement
    if placement is None:
        raise ValueError(
            f"{store.capabilities.name}: read_preference=/region= need a "
            "store built with placement="
        )
    supported = store.capabilities.read_preferences
    if read_preference is not None and read_preference not in supported:
        raise ValueError(
            f"{store.capabilities.name} does not support read preference "
            f"{read_preference!r}; have {supported or '()'}"
        )
    region = region if region is not None else placement.default_region
    if region is None:
        raise ValueError(
            "session needs region= (placement has no default_region)"
        )
    if region not in placement.region_names:
        raise ValueError(f"unknown region {region!r}")
    return read_preference, region


def _attach_locality(placement, client, region, read_preference) -> None:
    """Place a session's client node in its region; for the follower
    and nearest preferences also attach the locality view that makes
    :meth:`ClientNode.call` order endpoints nearest-first.  The
    ``primary`` preference deliberately gets *no* locality: the
    authoritative replica must stay first in failover lists even when
    it is the remote endpoint."""
    placement.place(client.node_id, region)
    if read_preference in ("local_follower", "nearest"):
        client.locality = placement.locality(region)


# ---------------------------------------------------------------------------
# Dynamo-style quorums (LWW)
# ---------------------------------------------------------------------------


@registry.register(StoreCapabilities(
    name="quorum",
    description="Dynamo partial quorums, LWW, read repair, sloppy option",
    read_modes=("quorum",),
    failover_reads=True,
    failover_writes=True,
    read_preferences=READ_PREFERENCES,
))
class QuorumStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = DynamoCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(placement, self.cluster.ring.nodes)
        _tune_servers(self.cluster.nodes, service_time, queue_limit,
                      admission_rate, admission_burst)

    def session(
        self,
        name: Hashable | None = None,
        retry: RetryPolicy | None = None,
        read_preference: str | None = None,
        region: str | None = None,
        **opts: Any,
    ) -> StoreSession:
        read_preference, region = _session_region(
            self, read_preference, region
        )
        if region is not None and read_preference in (
            "local_follower", "nearest",
        ):
            # Quorum reads still touch R replicas wherever they live;
            # what locality buys is a same-region *coordinator*, so the
            # client<->coordinator hop stays off the WAN.
            ring_nodes = self.cluster.ring.nodes
            locals_ = self.placement.nodes_in(region, within=ring_nodes)
            if read_preference == "local_follower" and locals_:
                opts.setdefault("coordinator", locals_[0])
            else:
                opts.setdefault(
                    "coordinator",
                    self.placement.locality(region).nearest(ring_nodes),
                )
        client = self.cluster.connect(session=name, **opts)
        _apply_retry(client, retry, self.retry)
        if region is not None:
            _attach_locality(self.placement, client, region, read_preference)
        return FnSession(
            client.session,
            put_fn=lambda k, v, t: client.put(k, v, timeout=t),
            read_fns={"quorum": lambda k, t: client.get(k, timeout=t)},
            default_mode="quorum",
            client_id=client.node_id,
            client=client,
            read_preference=read_preference,
            region=region,
        )

    def server_ids(self) -> list[Hashable]:
        return self.cluster.ring.nodes

    def history(self):
        return self.cluster.history()

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.anti_entropy_sweep()


# ---------------------------------------------------------------------------
# Dynamo-style quorums with siblings (DVV)
# ---------------------------------------------------------------------------


def _context_token(context: dict):
    """A total order over DVV contexts compatible with causality:
    (vector sum, canonicalized entries) — concurrent contexts tie-break
    deterministically."""
    if not context:
        return None
    return (
        sum(context.values()),
        tuple(sorted((str(node), counter) for node, counter in context.items())),
    )


@registry.register(StoreCapabilities(
    name="quorum_siblings",
    description="partial quorums keeping concurrent siblings (DVV contexts)",
    read_modes=("quorum",),
    multi_value_reads=True,
    has_history=False,
    failover_reads=True,
    failover_writes=True,
))
class SiblingQuorumStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = SiblingDynamoCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(placement, self.cluster.ring.nodes)
        _tune_servers(self.cluster.nodes, service_time, queue_limit,
                      admission_rate, admission_burst)

    def session(
        self,
        name: Hashable | None = None,
        retry: RetryPolicy | None = None,
        **opts: Any,
    ) -> StoreSession:
        client = self.cluster.connect(session=name, **opts)
        _apply_retry(client, retry, self.retry)
        return FnSession(
            client.session,
            put_fn=lambda k, v, t: mapped_future(
                self.sim, client.put(k, v, timeout=t), _context_token
            ),
            read_fns={
                "quorum": lambda k, t: mapped_future(
                    self.sim,
                    client.get(k, timeout=t),
                    lambda reply: (tuple(reply[0]), _context_token(reply[1])),
                ),
            },
            default_mode="quorum",
            client_id=client.node_id,
            client=client,
        )

    def server_ids(self) -> list[Hashable]:
        return self.cluster.ring.nodes

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.anti_entropy_sweep()


# ---------------------------------------------------------------------------
# COPS-style causal store
# ---------------------------------------------------------------------------


@registry.register(StoreCapabilities(
    name="causal",
    description="COPS-style causal broadcast KV; local reads/writes",
    read_modes=("local",),
    session_guarantees=("ryw", "mr", "mw", "wfr"),
    failover_reads=True,
    failover_writes=True,
))
class CausalStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = CausalCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(placement, self.cluster.node_ids)
        _tune_servers(self.cluster.replicas, service_time, queue_limit,
                      admission_rate, admission_burst)
        self._next_home = 0

    def session(
        self,
        name: Hashable | None = None,
        home: Hashable | None = None,
        retry: RetryPolicy | None = None,
        **opts: Any,
    ) -> StoreSession:
        if home is None:
            ids = self.cluster.node_ids
            home = ids[self._next_home % len(ids)]
            self._next_home += 1
        client = self.cluster.connect(home=home, session=name, **opts)
        _apply_retry(client, retry, self.retry)
        return FnSession(
            client.session,
            put_fn=lambda k, v, t: mapped_future(
                self.sim, client.put(k, v, timeout=t),
                lambda rank: tuple(rank),
            ),
            read_fns={
                "local": lambda k, t: mapped_future(
                    self.sim, client.get(k, timeout=t),
                    lambda reply: (
                        reply[0],
                        tuple(reply[1]) if reply[1] is not None else None,
                    ),
                ),
            },
            default_mode="local",
            client_id=client.node_id,
            client=client,
        )

    def server_ids(self) -> list[Hashable]:
        return list(self.cluster.node_ids)

    def history(self):
        return self.cluster.history()

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.anti_entropy_sweep()


# ---------------------------------------------------------------------------
# PNUTS-style record timelines
# ---------------------------------------------------------------------------


@registry.register(StoreCapabilities(
    name="timeline",
    description="PNUTS per-record mastership; any/critical/latest reads",
    read_modes=("any", "critical", "latest"),
    session_guarantees=("ryw", "mr", "mw", "wfr"),
    failover_reads=True,
    read_preferences=READ_PREFERENCES,
))
class TimelineStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = TimelineCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(placement, self.cluster.node_ids)
        if placement is not None:
            # The write-forwarding proxy is an extra network node; it
            # lives with the first replica so forwarded writes pay one
            # WAN hop, not a mystery-region hop.
            placement.place(
                self.cluster._forwarder.node_id,
                placement.region_of(self.cluster.node_ids[0]),
            )
        _tune_servers(self.cluster.replicas, service_time, queue_limit,
                      admission_rate, admission_burst)

    def session(
        self,
        name: Hashable | None = None,
        guarantees: tuple[str, ...] | None = None,
        retry_delay: float = 10.0,
        spread_replicas: bool = False,
        retry: RetryPolicy | None = None,
        read_preference: str | None = None,
        region: str | None = None,
        **opts: Any,
    ) -> StoreSession:
        read_preference, region = _session_region(
            self, read_preference, region
        )
        default_mode = "any"
        if region is not None:
            node_ids = self.cluster.node_ids
            if read_preference == "primary":
                # Authoritative reads: the record master, wherever it is.
                default_mode = "latest"
            elif read_preference == "local_follower":
                locals_ = self.placement.nodes_in(region, within=node_ids)
                opts.setdefault(
                    "home",
                    locals_[0] if locals_
                    else self.placement.locality(region).nearest(node_ids),
                )
            elif read_preference == "nearest":
                opts.setdefault(
                    "home",
                    self.placement.locality(region).nearest(node_ids),
                )
        client = self.cluster.connect(session=name, **opts)
        _apply_retry(client, retry, self.retry)
        if region is not None:
            _attach_locality(self.placement, client, region, read_preference)
        if guarantees is not None:
            wrapped = timeline_session(
                client, guarantees=guarantees, retry_delay=retry_delay,
                spread_replicas=spread_replicas,
            )
            session = FnSession(
                client.session,
                put_fn=lambda k, v, t: wrapped.write(k, v),
                read_fns={
                    "any": lambda k, t: mapped_future(
                        self.sim, wrapped.read(k), _norm_versioned
                    ),
                    "critical": lambda k, t: mapped_future(
                        self.sim, client.read_critical(k, timeout=t),
                        _norm_versioned,
                    ),
                    "latest": lambda k, t: mapped_future(
                        self.sim, client.read_latest(k, timeout=t),
                        _norm_versioned,
                    ),
                },
                default_mode=default_mode,
                client_id=client.node_id,
                client=client,
                read_preference=read_preference,
                region=region,
            )
            session.session_client = wrapped
            return session
        return FnSession(
            client.session,
            put_fn=lambda k, v, t: client.write(k, v, timeout=t),
            read_fns={
                "any": lambda k, t: mapped_future(
                    self.sim, client.read_any(k, timeout=t), _norm_versioned
                ),
                "critical": lambda k, t: mapped_future(
                    self.sim, client.read_critical(k, timeout=t),
                    _norm_versioned,
                ),
                "latest": lambda k, t: mapped_future(
                    self.sim, client.read_latest(k, timeout=t), _norm_versioned
                ),
            },
            default_mode=default_mode,
            client_id=client.node_id,
            client=client,
            read_preference=read_preference,
            region=region,
        )

    def server_ids(self) -> list[Hashable]:
        return list(self.cluster.node_ids)

    def history(self):
        return self.cluster.recorder.history()

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.anti_entropy_sweep()


# ---------------------------------------------------------------------------
# Bayou tentative/committed replication
# ---------------------------------------------------------------------------


@registry.register(StoreCapabilities(
    name="bayou",
    description="Bayou tentative/committed writes, primary commit order",
    read_modes=("tentative", "committed"),
    tentative_reads=True,
    networked=False,
    has_history=False,
    retry_safe_reads=False,
    retry_safe_writes=False,
))
class BayouStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 4,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,  # noqa: ARG002 - direct-attach, no queue
        retry: RetryPolicy | None = None,  # noqa: ARG002 - no RPC path
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.placement = placement
        self.cluster = BayouCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(placement, self.cluster.node_ids)
        self._next_replica = 0
        self._sessions = 0

    def session(
        self,
        name: Hashable | None = None,
        replica: Hashable | None = None,
        retry: RetryPolicy | None = None,  # noqa: ARG002 - no RPC path
        **opts: Any,
    ) -> StoreSession:
        if replica is None:
            index = self._next_replica % len(self.cluster.replicas)
            self._next_replica += 1
            node = self.cluster.replicas[index]
        else:
            node = next(
                r for r in self.cluster.replicas if r.node_id == replica
            )
        self._sessions += 1
        name = name if name is not None else f"bayou-session-{self._sessions}"
        sim = self.sim

        def put_fn(key, value, _timeout):
            record = node.write(key, value)
            return resolved(sim, record.stamp)

        return FnSession(
            name,
            put_fn=put_fn,
            read_fns={
                "tentative": lambda k, t: resolved(
                    sim, (node.read_tentative(k), None)
                ),
                "committed": lambda k, t: resolved(
                    sim, (node.read_committed(k), None)
                ),
            },
            default_mode="tentative",
            client_id=node.node_id,
            client=node,
        )

    def server_ids(self) -> list[Hashable]:
        return list(self.cluster.node_ids)

    def snapshots(self) -> list[dict]:
        return [replica.snapshot() for replica in self.cluster.replicas]

    def settle(self) -> None:
        """Instantaneous pairwise anti-entropy, twice: once to flood
        writes to the primary, once to flood commit orders back."""
        for _round in range(2):
            for source in self.cluster.replicas:
                write_set = source._write_set(reply_expected=False)
                for target in self.cluster.replicas:
                    if target is not source:
                        target.handle_WriteSet(source.node_id, write_set)


# ---------------------------------------------------------------------------
# Primary–backup
# ---------------------------------------------------------------------------


@registry.register(StoreCapabilities(
    name="primary_backup",
    description="single primary, async/sync/quorum backup acks",
    read_modes=("primary", "backup"),
    failover_reads=True,
    # Linearizable only while every op funnels through the one
    # primary: holds for single-attempt primary reads, not for reads
    # that failed over to a possibly-stale backup.
    linearizable_read_modes=("primary",),
    read_preferences=READ_PREFERENCES,
))
class PrimaryBackupStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        mode: str = "async",
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = PrimaryBackupCluster(
            sim, network, n=nodes, mode=mode, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(
            placement, [r.node_id for r in self.cluster.replicas]
        )
        _tune_servers(self.cluster.replicas, service_time, queue_limit,
                      admission_rate, admission_burst)

    def session(
        self,
        name: Hashable | None = None,
        retry: RetryPolicy | None = None,
        read_preference: str | None = None,
        region: str | None = None,
        **opts: Any,
    ) -> StoreSession:
        read_preference, region = _session_region(
            self, read_preference, region
        )
        client = self.cluster.connect(session=name, **opts)
        _apply_retry(client, retry, self.retry)
        default_mode = "primary"

        if read_preference in ("local_follower", "nearest"):
            default_mode = "backup"
            placement = self.placement
            locality = placement.locality(region)

            def read_backup(key, timeout):
                # Re-resolved per read so a promotion (region failover)
                # re-routes follower reads without reopening sessions.
                replicas = self.cluster.replicas
                locals_ = [
                    r for r in replicas
                    if placement.region_of(r.node_id) == region
                ]
                if read_preference == "local_follower" and locals_:
                    target = locals_[0]
                else:
                    target = min(
                        replicas, key=lambda r: locality.delay_to(r.node_id)
                    )
                return mapped_future(
                    self.sim,
                    client.get(key, replica=target, timeout=timeout),
                    _norm_versioned,
                )
        else:
            def read_backup(key, timeout):
                backups = self.cluster.backups
                target = backups[0] if backups else self.cluster.primary
                return mapped_future(
                    self.sim, client.get(key, replica=target, timeout=timeout),
                    _norm_versioned,
                )

        if region is not None:
            _attach_locality(self.placement, client, region, read_preference)
        return FnSession(
            client.session,
            put_fn=lambda k, v, t: client.put(k, v, timeout=t),
            read_fns={
                "primary": lambda k, t: mapped_future(
                    self.sim, client.get(k, timeout=t), _norm_versioned
                ),
                "backup": read_backup,
            },
            default_mode=default_mode,
            client_id=client.node_id,
            client=client,
            read_preference=read_preference,
            region=region,
        )

    def server_ids(self) -> list[Hashable]:
        return [replica.node_id for replica in self.cluster.replicas]

    def history(self):
        return self.cluster.recorder.history()

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.anti_entropy_sweep()


# ---------------------------------------------------------------------------
# Chain replication
# ---------------------------------------------------------------------------


@registry.register(StoreCapabilities(
    name="chain",
    description="chain replication: writes at head, linearizable tail reads",
    read_modes=("tail",),
    survives_replica_crash=False,
    linearizable_read_modes=("tail",),
))
class ChainStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = ChainCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(
            placement, [r.node_id for r in self.cluster.replicas]
        )
        _tune_servers(self.cluster.replicas, service_time, queue_limit,
                      admission_rate, admission_burst)

    def session(
        self,
        name: Hashable | None = None,
        retry: RetryPolicy | None = None,
        **opts: Any,
    ) -> StoreSession:
        client = self.cluster.connect(session=name, **opts)
        _apply_retry(client, retry, self.retry)
        return FnSession(
            client.session,
            put_fn=lambda k, v, t: client.put(k, v, timeout=t),
            read_fns={
                "tail": lambda k, t: mapped_future(
                    self.sim, client.get(k, timeout=t), _norm_versioned
                ),
            },
            default_mode="tail",
            client_id=client.node_id,
            client=client,
        )

    def server_ids(self) -> list[Hashable]:
        return [replica.node_id for replica in self.cluster.replicas]

    def history(self):
        return self.cluster.recorder.history()

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.anti_entropy_sweep()


# ---------------------------------------------------------------------------
# Multi-Paxos
# ---------------------------------------------------------------------------


@registry.register(StoreCapabilities(
    name="multipaxos",
    description="consensus-replicated KV log; linearizable log reads",
    read_modes=("log", "local"),
    linearizable_read_modes=("log",),
))
class MultiPaxosStore(ConsistentStore):
    """Builds the group *and runs the leader election to completion*
    (``sim.run()``) so sessions are immediately usable — build stores
    before spawning workload processes."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        elect: bool = True,
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = MultiPaxosCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(placement, self.cluster.node_ids)
        _tune_servers(self.cluster.replicas, service_time, queue_limit,
                      admission_rate, admission_burst)
        if elect:
            self.cluster.elect()
            sim.run()

    def session(
        self,
        name: Hashable | None = None,
        retry: RetryPolicy | None = None,
        **opts: Any,
    ) -> StoreSession:
        client = self.cluster.connect(session=name, **opts)
        _apply_retry(client, retry, self.retry)
        return FnSession(
            client.session,
            put_fn=lambda k, v, t: client.put(k, v, timeout=t),
            read_fns={
                "log": lambda k, t: mapped_future(
                    self.sim, client.get(k, timeout=t), _norm_versioned
                ),
                "local": lambda k, t: mapped_future(
                    self.sim, client.local_get(k, timeout=t), _norm_versioned
                ),
            },
            default_mode="log",
            client_id=client.node_id,
            client=client,
        )

    def server_ids(self) -> list[Hashable]:
        return list(self.cluster.node_ids)

    def history(self):
        return self.cluster.recorder.history()

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.catch_up()


# ---------------------------------------------------------------------------
# Pileus consistency SLAs (over a timeline cluster)
# ---------------------------------------------------------------------------


class FixedTargetSLAClient(SLAClient):
    """An SLA client pinned to one replica — the fixed-strategy
    baseline Pileus is compared against in E7."""

    def __init__(self, client, target: Hashable, monitor=None) -> None:
        super().__init__(client, monitor)
        self._target = target

    def select_target(self, key, sla):
        return self._target, 0


@registry.register(StoreCapabilities(
    name="pileus",
    description="per-read consistency SLAs over a timeline store",
    read_modes=("sla",),
    session_guarantees=("ryw", "mr"),
    chaos_waivers=(
        ("ryw", "SLA reads degrade to the eventual subclause by design "
         "when stronger targets are partitioned away, so read-my-writes "
         "is best-effort under faults (Pileus trades it for latency)"),
        ("mr", "same SLA degradation: a read served by a laggard "
         "replica after the preferred target drops out may move the "
         "session backwards"),
    ),
))
class PileusStore(ConsistentStore):
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
        service_time: float = 0.0,
        queue_limit: int | None = None,
        admission_rate: float | None = None,
        admission_burst: float | None = None,
        retry: RetryPolicy | None = None,
        placement: Placement | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(sim, network)
        self.retry = retry
        self.placement = placement
        self.cluster = TimelineCluster(
            sim, network, nodes=nodes, node_ids=node_ids, **kwargs
        )
        _spread_unplaced(placement, self.cluster.node_ids)
        if placement is not None:
            placement.place(
                self.cluster._forwarder.node_id,
                placement.region_of(self.cluster.node_ids[0]),
            )
        _tune_servers(self.cluster.replicas, service_time, queue_limit,
                      admission_rate, admission_burst)

    def session(
        self,
        name: Hashable | None = None,
        sla: SLA = SHOPPING_CART,
        target: Hashable | None = None,
        retry: RetryPolicy | None = None,
        region: str | None = None,
        **opts: Any,
    ) -> StoreSession:
        _pref, region = _session_region(self, None, region)
        client = self.cluster.connect(session=name, **opts)
        _apply_retry(client, retry, self.retry)
        if target is not None:
            sla_client = FixedTargetSLAClient(client, target)
        else:
            sla_client = SLAClient(client)
        if region is not None:
            # Per-tenant region origin: the session's client node lives
            # in its region and the monitor starts from the *real* WAN
            # round trips instead of the flat default, so sub-SLA
            # selection reflects geography from the first read.
            self.placement.place(client.node_id, region)
            for node_id in self.cluster.node_ids:
                sla_client.monitor.latency[node_id] = 2 * self.placement.delay(
                    region, self.placement.region_of(node_id)
                )

        session = FnSession(
            client.session,
            put_fn=lambda k, v, t: sla_client.write(k, v, timeout=t),
            read_fns={
                "sla": lambda k, t: mapped_future(
                    self.sim,
                    sla_client.read(k, sla, timeout=t),
                    lambda outcome: (outcome.value, outcome.version or None),
                ),
            },
            default_mode="sla",
            client_id=client.node_id,
            client=client,
            region=region,
        )
        session.sla_client = sla_client
        return session

    def server_ids(self) -> list[Hashable]:
        return list(self.cluster.node_ids)

    def history(self):
        return self.cluster.recorder.history()

    def snapshots(self) -> list[dict]:
        return self.cluster.snapshots()

    def settle(self) -> None:
        self.cluster.anti_entropy_sweep()


# Importing the cache tier registers the "cached" wrapper adapter —
# last, so it can wrap any of the protocols registered above.
from .. import cache as _cache  # noqa: E402,F401
