"""Protocol registry: every replication mechanism, by name.

The taxonomy's mechanism axis as a lookup table::

    from repro.api import registry

    spec = registry.get("quorum")
    store = spec.build(sim, network, nodes=5, n=3, r=2, w=2)
    session = store.session("alice")

Adapters self-register at import time (see :mod:`repro.api.adapters`);
``registry.names()`` is the authoritative list the CLI's
``repro protocols`` command prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..sim import Network, Simulator
from .store import ConsistentStore, StoreCapabilities

_REGISTRY: dict[str, "StoreSpec"] = {}


@dataclass(frozen=True)
class StoreSpec:
    """One registered protocol: its capabilities and a factory."""

    name: str
    capabilities: StoreCapabilities
    factory: Callable[..., ConsistentStore]

    def build(
        self,
        sim: Simulator,
        network: Network | None = None,
        **kwargs: Any,
    ) -> ConsistentStore:
        """Construct a ready-to-use store on ``sim``.

        ``network`` defaults to a fresh loss-free :class:`Network`.
        Common kwargs every adapter accepts: ``nodes`` (cluster size),
        ``node_ids`` (explicit ids), ``service_time`` (per-node
        request-processing ms, see
        :class:`repro.replication.common.ServerNode`), and ``retry``
        (a store-wide :class:`repro.rpc.RetryPolicy` applied to every
        session; sessions can override with ``session(retry=...)``).
        Remaining kwargs pass through to the underlying cluster class.
        """
        if network is None:
            network = Network(sim)
        return self.factory(sim, network, **kwargs)


def register(
    capabilities: StoreCapabilities,
) -> Callable[[Callable[..., ConsistentStore]], Callable[..., ConsistentStore]]:
    """Class/factory decorator adding an adapter to the registry."""

    def wrap(factory: Callable[..., ConsistentStore]):
        if capabilities.name in _REGISTRY:
            raise ValueError(f"protocol {capabilities.name!r} already registered")
        if isinstance(factory, type):
            factory.capabilities = capabilities
        _REGISTRY[capabilities.name] = StoreSpec(
            capabilities.name, capabilities, factory
        )
        return factory

    return wrap


def get(name: str) -> StoreSpec:
    """Look up a protocol by registry name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown protocol {name!r}; registered: {', '.join(names())}"
        )
    return spec


def build(
    name: str,
    sim: Simulator,
    network: Network | None = None,
    **kwargs: Any,
) -> ConsistentStore:
    """Shorthand for ``get(name).build(...)``."""
    return get(name).build(sim, network, **kwargs)


def names() -> list[str]:
    """All registered protocol names, sorted."""
    return sorted(_REGISTRY)


def specs() -> list[StoreSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in names()]
