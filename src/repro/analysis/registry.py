"""A sim-wide registry of named counters, gauges, and latency stats.

Every :class:`repro.sim.Simulator` owns one
:class:`MetricsRegistry` (``sim.metrics``).  The network and the
replication protocols publish their operational counters into it
under dotted names (``net.messages_sent``, ``quorum.read_repairs``,
``gossip.rounds_started``, …) instead of scattering ad-hoc ints and
dicts, so any experiment can read — or print — every metric of a run
from one place::

    sim = Simulator(seed=7)
    ...  # run a workload
    print(sim.metrics.render(prefix="quorum"))
    snapshot = sim.metrics.snapshot()

Handles are get-or-create: ``registry.counter(name)`` returns the
same :class:`Counter` every time, so publishers keep a reference and
increment it directly on hot paths.
"""

from __future__ import annotations

from typing import Iterator

from .metrics import LatencyStats


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class MetricsRegistry:
    """Named counters / gauges / :class:`LatencyStats`, get-or-create."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._latencies: dict[str, LatencyStats] = {}

    # -- handles -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def latency(self, name: str) -> LatencyStats:
        stats = self._latencies.get(name)
        if stats is None:
            stats = self._latencies[name] = LatencyStats()
        return stats

    # -- reading -------------------------------------------------------
    def counters(self, prefix: str | None = None) -> dict[str, int]:
        return {
            name: counter.value
            for name, counter in sorted(self._counters.items())
            if prefix is None or name.startswith(prefix)
        }

    def gauges(self, prefix: str | None = None) -> dict[str, float]:
        return {
            name: gauge.value
            for name, gauge in sorted(self._gauges.items())
            if prefix is None or name.startswith(prefix)
        }

    def latencies(self, prefix: str | None = None) -> dict[str, LatencyStats]:
        return {
            name: stats
            for name, stats in sorted(self._latencies.items())
            if prefix is None or name.startswith(prefix)
        }

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._latencies
        )

    def __iter__(self) -> Iterator[str]:
        yield from sorted(
            set(self._counters) | set(self._gauges) | set(self._latencies)
        )

    def snapshot(self) -> dict:
        """Everything, as plain data (latencies as their summaries)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "latencies": {
                name: stats.summary()
                for name, stats in self.latencies().items()
            },
        }

    def render(self, prefix: str | None = None) -> str:
        """Aligned ``name  value`` lines, optionally prefix-filtered."""
        rows: list[tuple[str, str]] = []
        for name, value in self.counters(prefix).items():
            rows.append((name, str(value)))
        for name, value in self.gauges(prefix).items():
            rows.append((name, f"{value:g}"))
        for name, stats in self.latencies(prefix).items():
            summary = stats.summary()
            rows.append((
                name,
                f"n={summary['count']} mean={summary['mean']} "
                f"p50={summary['p50']} p99={summary['p99']}",
            ))
        if not rows:
            return "(no metrics)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)

    def reset(self) -> None:
        """Zero every counter/gauge and drop latency samples (handles
        stay valid — publishers keep their references)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for stats in self._latencies.values():
            stats.samples.clear()
