"""Probabilistically Bounded Staleness (Bailis et al., VLDB 2012).

The quantitative answer to "how eventual is eventual?": for a
Dynamo-style partial quorum (N, R, W), what is the probability a read
started *t* ms after a write commits returns that write (t-visibility),
and the probability it is at most *k* versions stale (k-staleness)?

This module implements the paper's **WARS** Monte-Carlo model.  One
write/read round samples, per replica:

* ``W``  — write-request network delay to the replica,
* ``A``  — ack delay back to the coordinator
  (the write *commits* when the ``w``-th ack arrives),
* ``R``  — read-request delay to the replica,
* ``S``  — response delay back.

The read (issued t ms after commit) misses the write at replica ``i``
iff the write arrives there *after* the replica answers the read:
``W_i > commit + t + R_i``.  The read is stale iff every replica in
the read quorum (the ``r`` fastest responders) misses it.

``R + W > N`` makes staleness impossible in this failure-free model —
the overlap argument — which the Monte Carlo reproduces exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

LatencySampler = Callable[[random.Random], float]


def exponential(mean: float, base: float = 0.0) -> LatencySampler:
    """The PBS paper's fitted shape: a floor plus an exponential tail."""
    if mean <= 0:
        raise ValueError("mean must be positive")

    def sample(rng: random.Random) -> float:
        return base + rng.expovariate(1.0 / mean)

    return sample


@dataclass(frozen=True)
class WARSModel:
    """Latency distributions for the four WARS legs."""

    w: LatencySampler        # coordinator -> replica (write)
    a: LatencySampler        # replica -> coordinator (write ack)
    r: LatencySampler        # coordinator -> replica (read)
    s: LatencySampler        # replica -> coordinator (read response)

    @classmethod
    def lan(cls) -> "WARSModel":
        """A LAN-ish profile (sub-ms medians, light tail)."""
        return cls(
            w=exponential(1.0, base=0.2),
            a=exponential(1.0, base=0.2),
            r=exponential(0.8, base=0.2),
            s=exponential(0.8, base=0.2),
        )

    @classmethod
    def wan(cls) -> "WARSModel":
        """A geo profile (tens of ms, heavier tail)."""
        return cls(
            w=exponential(15.0, base=5.0),
            a=exponential(15.0, base=5.0),
            r=exponential(12.0, base=5.0),
            s=exponential(12.0, base=5.0),
        )


@dataclass(frozen=True)
class PBSResult:
    n: int
    r: int
    w: int
    t: float
    p_consistent: float        # t-visibility: P[read sees the write]
    mean_read_latency: float
    mean_write_latency: float
    trials: int


def simulate_t_visibility(
    n: int,
    r: int,
    w: int,
    t: float,
    model: WARSModel | None = None,
    trials: int = 10_000,
    seed: int = 0,
) -> PBSResult:
    """Monte-Carlo t-visibility for an (N, R, W) partial quorum."""
    if not (1 <= r <= n and 1 <= w <= n):
        raise ValueError("need 1 <= r, w <= n")
    if t < 0:
        raise ValueError("t must be >= 0")
    model = model or WARSModel.lan()
    rng = random.Random(seed)
    consistent = 0
    read_latency_total = 0.0
    write_latency_total = 0.0
    for _ in range(trials):
        write_arrivals = [model.w(rng) for _ in range(n)]
        acks = sorted(
            write_arrivals[i] + model.a(rng) for i in range(n)
        )
        commit_time = acks[w - 1]
        write_latency_total += commit_time
        read_start = commit_time + t
        # Each replica answers the read; the r fastest responses form
        # the read quorum.  Replica i has the write iff it arrived
        # before the replica serves the read request.
        responses = []
        for i in range(n):
            request_arrival = read_start + model.r(rng)
            has_write = write_arrivals[i] <= request_arrival
            response_time = request_arrival + model.s(rng) - read_start
            responses.append((response_time, has_write))
        responses.sort()
        quorum = responses[:r]
        read_latency_total += quorum[-1][0]
        if any(has_write for _time, has_write in quorum):
            consistent += 1
    return PBSResult(
        n=n,
        r=r,
        w=w,
        t=t,
        p_consistent=consistent / trials,
        mean_read_latency=read_latency_total / trials,
        mean_write_latency=write_latency_total / trials,
        trials=trials,
    )


def simulate_k_staleness(
    n: int,
    r: int,
    w: int,
    k: int,
    model: WARSModel | None = None,
    trials: int = 5_000,
    seed: int = 0,
) -> float:
    """P[a read returns a value at most k versions stale] when reads
    race an unbounded stream of back-to-back writes (t = 0).

    The PBS paper's approximation: k-staleness ≈ 1 - (1 - p_incons)^k
    where p_incons is the per-version inconsistency probability; we
    compute it by direct iteration for exactness.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    base = simulate_t_visibility(n, r, w, t=0.0, model=model, trials=trials,
                                 seed=seed)
    p_inconsistent = 1.0 - base.p_consistent
    return 1.0 - p_inconsistent ** k


def quorum_sweep(
    n: int,
    t_values: list[float],
    model: WARSModel | None = None,
    trials: int = 5_000,
    seed: int = 0,
) -> list[PBSResult]:
    """All (R, W) combinations for a given N, at each t — the grid
    behind the PBS paper's headline figures (reproduced as E2)."""
    results = []
    for r in range(1, n + 1):
        for w in range(1, n + 1):
            for t in t_values:
                results.append(
                    simulate_t_visibility(
                        n, r, w, t, model=model, trials=trials, seed=seed,
                    )
                )
    return results
