"""Plain-text table rendering for benchmark output.

Every experiment harness prints its rows through :func:`render_table`
so the benches produce the aligned, diffable tables recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> None:
    print()
    print(render_table(headers, rows, title=title))
