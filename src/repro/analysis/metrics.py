"""Latency/throughput metrics for experiment harnesses."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Streaming-ish latency collector (keeps samples; fine at sim scale)."""

    samples: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError("latency cannot be negative")
        self.samples.append(value)

    def extend(self, values) -> None:
        for value in values:
            self.record(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((x - mu) ** 2 for x in self.samples) / (len(self.samples) - 1)
        )

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": round(self.p50, 3),
            "p95": round(self.p95, 3),
            "p99": round(self.p99, 3),
            "max": round(self.maximum, 3),
        }


def throughput(operations: int, duration_ms: float) -> float:
    """Ops per (simulated) second."""
    if duration_ms <= 0:
        return 0.0
    return operations / (duration_ms / 1000.0)
