"""Analysis tooling: latency stats, the PBS staleness model, tables."""

from .metrics import LatencyStats, throughput
from .pbs import (
    PBSResult,
    WARSModel,
    exponential,
    quorum_sweep,
    simulate_k_staleness,
    simulate_t_visibility,
)
from .tables import print_table, render_table

__all__ = [
    "LatencyStats",
    "throughput",
    "WARSModel",
    "PBSResult",
    "exponential",
    "simulate_t_visibility",
    "simulate_k_staleness",
    "quorum_sweep",
    "render_table",
    "print_table",
]
