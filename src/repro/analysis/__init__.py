"""Analysis tooling: latency stats, metrics registry, PBS, tables."""

from .metrics import LatencyStats, throughput
from .registry import Counter, Gauge, MetricsRegistry
from .pbs import (
    PBSResult,
    WARSModel,
    exponential,
    quorum_sweep,
    simulate_k_staleness,
    simulate_t_visibility,
)
from .tables import print_table, render_table

__all__ = [
    "LatencyStats",
    "throughput",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "WARSModel",
    "PBSResult",
    "exponential",
    "simulate_t_visibility",
    "simulate_k_staleness",
    "quorum_sweep",
    "render_table",
    "print_table",
]
