"""Merkle trees for anti-entropy difference detection.

Exchanging full states costs O(database) per sync even when replicas
differ in one key.  Dynamo/Cassandra hash the key space into a Merkle
tree: replicas compare roots, descend only into differing subtrees,
and transfer just the keys in differing leaves.  Here the tree is
built over ``2**depth`` leaf buckets of a key→fingerprint map.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable

from .ring import stable_hash


def fingerprint(value: object) -> int:
    """Deterministic fingerprint of a stored version."""
    return stable_hash(repr(value))


def _combine(left: int, right: int) -> int:
    digest = hashlib.blake2b(digest_size=8)
    digest.update(left.to_bytes(8, "big"))
    digest.update(right.to_bytes(8, "big"))
    return int.from_bytes(digest.digest(), "big")


@dataclass(frozen=True)
class MerkleTree:
    """An immutable Merkle tree over leaf-bucket hashes."""

    depth: int
    leaf_hashes: tuple[int, ...]
    root: int

    @property
    def leaf_count(self) -> int:
        return len(self.leaf_hashes)


def bucket_of(key: Hashable, depth: int) -> int:
    return stable_hash(key) % (1 << depth)


def build_tree(entries: dict[Hashable, object], depth: int = 6) -> MerkleTree:
    """Build a tree from key → fingerprintable version objects."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    leaves = 1 << depth
    buckets: list[list[tuple[str, int]]] = [[] for _ in range(leaves)]
    for key, version in entries.items():
        buckets[bucket_of(key, depth)].append((repr(key), fingerprint(version)))
    leaf_hashes = []
    for bucket in buckets:
        digest = hashlib.blake2b(digest_size=8)
        for key_repr, print_ in sorted(bucket):
            digest.update(key_repr.encode("utf-8"))
            digest.update(print_.to_bytes(8, "big"))
        leaf_hashes.append(int.from_bytes(digest.digest(), "big"))
    level = leaf_hashes
    while len(level) > 1:
        level = [
            _combine(level[i], level[i + 1]) for i in range(0, len(level), 2)
        ]
    return MerkleTree(depth, tuple(leaf_hashes), level[0])


def differing_leaves(mine: MerkleTree, theirs: MerkleTree) -> list[int]:
    """Leaf bucket indices where the trees disagree.

    Simulates the recursive descent: identical roots short-circuit to
    nothing; otherwise only differing subtrees are opened.  (The
    returned set equals the pointwise leaf comparison; the descent
    matters for the *message* cost, which callers account separately.)
    """
    if mine.depth != theirs.depth:
        raise ValueError("cannot diff trees of different depth")
    if mine.root == theirs.root:
        return []
    return [
        index
        for index, (a, b) in enumerate(zip(mine.leaf_hashes, theirs.leaf_hashes))
        if a != b
    ]


def keys_in_buckets(
    entries: dict[Hashable, object], buckets: set[int], depth: int
) -> list[Hashable]:
    """The keys of ``entries`` that fall in the given leaf buckets."""
    return [
        key for key in entries if bucket_of(key, depth) in buckets
    ]
