"""Replication protocols — the mechanism axis of the taxonomy.

* :class:`PrimaryBackupCluster` — master/slave, async/sync/quorum acks.
* :class:`DynamoCluster` — partial quorums, sloppy quorums, hinted
  handoff, read repair on a consistent hash ring (LWW conflicts).
* :class:`SiblingDynamoCluster` — same quorums with multi-value
  (sibling) conflicts and dotted-version-vector contexts.
* :class:`GossipCluster` — anti-entropy (full-state or Merkle).
* :class:`BayouCluster` — tentative/committed writes with rollback
  and primary commit order (Bayou).
* :class:`MultiPaxosCluster` — consensus-replicated KV state machine.
* :class:`TimelineCluster` — PNUTS per-record mastership.
* :class:`CausalCluster` — COPS-style causal broadcast KV.
* :class:`ChainCluster` — chain replication.
* :class:`Proposer`/:class:`Acceptor` — single-decree Paxos.
"""

from .anti_entropy import GossipCluster, GossipReplica
from .bayou import BayouCluster, BayouReplica, BayouWrite
from .causal_store import CausalClient, CausalCluster, CausalReplica
from .chain import ChainClient, ChainCluster, ChainReplica
from .common import ClientNode, Reply, Request, ServerNode
from .merkle import MerkleTree, build_tree, differing_leaves, keys_in_buckets
from .multipaxos import (
    GetCmd,
    MultiPaxosCluster,
    PaxosClient,
    PaxosReplica,
    PutCmd,
)
from .paxos import Acceptor, Ballot, Proposer
from .primary_backup import PBClient, PBReplica, PrimaryBackupCluster
from .quorum import DynamoClient, DynamoCluster, DynamoNode
from .quorum_siblings import (
    SiblingDynamoClient,
    SiblingDynamoCluster,
    SiblingDynamoNode,
)
from .ring import HashRing, stable_hash
from .timeline import TimelineClient, TimelineCluster, TimelineReplica

__all__ = [
    "ClientNode",
    "CausalCluster",
    "CausalClient",
    "CausalReplica",
    "ServerNode",
    "Request",
    "Reply",
    "PrimaryBackupCluster",
    "PBClient",
    "PBReplica",
    "DynamoCluster",
    "DynamoClient",
    "SiblingDynamoCluster",
    "SiblingDynamoClient",
    "SiblingDynamoNode",
    "DynamoNode",
    "HashRing",
    "stable_hash",
    "GossipCluster",
    "GossipReplica",
    "BayouCluster",
    "BayouReplica",
    "BayouWrite",
    "MerkleTree",
    "build_tree",
    "differing_leaves",
    "keys_in_buckets",
    "Proposer",
    "Acceptor",
    "Ballot",
    "MultiPaxosCluster",
    "PaxosClient",
    "PaxosReplica",
    "PutCmd",
    "GetCmd",
    "TimelineCluster",
    "TimelineClient",
    "TimelineReplica",
    "ChainCluster",
    "ChainClient",
    "ChainReplica",
]
