"""Dynamo-style partial-quorum replication.

The tutorial's flagship eventually consistent store: N replicas per
key on a consistent hash ring, writes acknowledged after W replica
acks, reads after R replies, with

* **read repair** — a read that observes divergent replicas pushes the
  winning version back to the stale ones,
* **hinted handoff + sloppy quorum** — when a home replica is
  unreachable, the coordinator recruits the next node on the ring,
  which stores the write with a *hint* and forwards it when the home
  replica returns,
* LWW conflict arbitration via per-coordinator Lamport stamps (total
  order ⇒ the history checkers get dense per-key versions).

``R + W > N`` gives regular-register-like freshness in the failure-free
case; smaller quorums trade staleness for latency — exactly the PBS
trade-off E2 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from ..clocks import LamportClock, LamportStamp
from ..errors import QuorumError
from ..histories import History, Operation
from ..sim import Future, Network, Simulator
from .common import ClientNode, ServerNode
from .ring import HashRing

# ---------------------------------------------------------------------------
# Wire types
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class QPut:
    """Client → coordinator write.

    ``context`` is the highest stamp the client has observed (from its
    own writes and reads); the coordinator's Lamport clock observes it
    before stamping, so a client's successive writes are ordered even
    when coordinated by different nodes — Dynamo's vector-clock
    context, reduced to the LWW case.
    """

    key: Hashable
    value: Any
    context: LamportStamp | None = None


@dataclass(slots=True)
class QGet:
    """Client → coordinator read."""

    key: Hashable


@dataclass(slots=True)
class StoreMsg:
    """Coordinator → replica: store a stamped version."""

    op_id: int
    key: Hashable
    value: Any
    stamp: LamportStamp
    hint_for: Hashable | None = None   # sloppy-quorum hint


@dataclass(slots=True)
class StoreAck:
    op_id: int


@dataclass(slots=True)
class FetchMsg:
    op_id: int
    key: Hashable


@dataclass(slots=True)
class FetchReply:
    op_id: int
    key: Hashable
    value: Any
    stamp: LamportStamp | None


# ---------------------------------------------------------------------------
# Replica node
# ---------------------------------------------------------------------------


class DynamoNode(ServerNode):
    """One storage node; every node can coordinate any request."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "DynamoCluster",
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.clock = LamportClock(node_id)
        self.data: dict[Hashable, tuple[Any, LamportStamp]] = {}
        # Hinted writes held for unreachable home replicas:
        # home node id -> {key: (value, stamp)}
        self.hints: dict[Hashable, dict[Hashable, tuple[Any, LamportStamp]]] = {}
        self._ops: dict[int, _CoordinatorOp] = {}
        self._op_ids = 0
        if cluster.hint_interval is not None:
            self.every(cluster.hint_interval, self._push_hints, jitter=0.3)

    # -- local storage ----------------------------------------------------
    def apply(self, key: Hashable, value: Any, stamp: LamportStamp) -> bool:
        self.clock.observe(stamp)
        current = self.data.get(key)
        if current is None or stamp > current[1]:
            self.data[key] = (value, stamp)
            return True
        return False

    def local_read(self, key: Hashable) -> tuple[Any, LamportStamp | None]:
        value, stamp = self.data.get(key, (None, None))
        return value, stamp

    def snapshot(self) -> dict:
        return {key: value for key, (value, _stamp) in self.data.items()}

    # -- client-facing coordination ----------------------------------------
    def serve_QPut(self, src: Hashable, payload: QPut) -> Future:
        if payload.context is not None:
            self.clock.observe(payload.context)
        stamp = self.clock.tick()
        return self._coordinate_write(payload.key, payload.value, stamp)

    def serve_QGet(self, src: Hashable, payload: QGet) -> Future:
        return self._coordinate_read(payload.key)

    def _next_op(self) -> int:
        self._op_ids += 1
        return self._op_ids

    def _coordinate_write(
        self, key: Hashable, value: Any, stamp: LamportStamp
    ) -> Future:
        cluster = self.cluster
        targets = cluster.ring.preference_list(key, cluster.n)
        op_id = self._next_op()
        future = Future(self.sim, label=f"qput#{op_id}")
        op = _CoordinatorOp(
            kind="write",
            key=key,
            future=future,
            needed=cluster.w,
            targets=set(targets),
            value=value,
            stamp=stamp,
        )
        self._ops[op_id] = op
        for target in targets:
            self.send(target, StoreMsg(op_id, key, value, stamp))
        self.set_timer(cluster.replica_timeout, self._write_fallback, op_id)
        self.set_timer(cluster.op_deadline, self._expire, op_id)
        return future

    def _coordinate_read(self, key: Hashable) -> Future:
        cluster = self.cluster
        targets = cluster.ring.preference_list(key, cluster.n)
        op_id = self._next_op()
        future = Future(self.sim, label=f"qget#{op_id}")
        op = _CoordinatorOp(
            kind="read",
            key=key,
            future=future,
            needed=cluster.r,
            targets=set(targets),
        )
        self._ops[op_id] = op
        for target in targets:
            self.send(target, FetchMsg(op_id, key))
        self.set_timer(cluster.op_deadline, self._expire, op_id)
        return future

    # -- replica side -----------------------------------------------------
    def handle_StoreMsg(self, src: Hashable, msg: StoreMsg) -> None:
        if msg.hint_for is not None and msg.hint_for != self.node_id:
            # We are a stand-in: remember the hint for the home node.
            self.hints.setdefault(msg.hint_for, {})
            slot = self.hints[msg.hint_for]
            current = slot.get(msg.key)
            if current is None or msg.stamp > current[1]:
                slot[msg.key] = (msg.value, msg.stamp)
            self.clock.observe(msg.stamp)
        else:
            self.apply(msg.key, msg.value, msg.stamp)
        self.send(src, StoreAck(msg.op_id))

    def handle_FetchMsg(self, src: Hashable, msg: FetchMsg) -> None:
        value, stamp = self.local_read(msg.key)
        self.send(src, FetchReply(msg.op_id, msg.key, value, stamp))

    # -- coordinator ack collection ------------------------------------------
    def handle_StoreAck(self, src: Hashable, msg: StoreAck) -> None:
        op = self._ops.get(msg.op_id)
        if op is None or op.kind != "write":
            return
        op.acks += 1
        op.responded.add(src)
        if op.acks >= op.needed and not op.future.done:
            op.future.resolve((op.value, op.stamp))
            self.cluster._c_writes_succeeded.inc()

    def handle_FetchReply(self, src: Hashable, msg: FetchReply) -> None:
        op = self._ops.get(msg.op_id)
        if op is None or op.kind != "read":
            return
        op.replies.append((src, msg.value, msg.stamp))
        op.responded.add(src)
        if len(op.replies) >= op.needed and not op.future.done:
            value, stamp = _freshest(op.replies)
            op.future.resolve((value, stamp))
            if self.cluster.read_repair:
                self._read_repair(op, value, stamp)

    def _read_repair(
        self, op: "_CoordinatorOp", value: Any, stamp: LamportStamp | None
    ) -> None:
        if stamp is None:
            return
        repair_id = self._next_op()  # acks for repairs are ignored
        for target, _value, replica_stamp in op.replies:
            if replica_stamp is None or replica_stamp < stamp:
                self.send(target, StoreMsg(repair_id, op.key, value, stamp))
                self.cluster._c_read_repairs.inc()
                self.sim.annotate("read_repair", key=op.key,
                                  coordinator=self.node_id, target=target)

    # -- sloppy quorum / hinted handoff ---------------------------------------
    def _write_fallback(self, op_id: int) -> None:
        op = self._ops.get(op_id)
        if op is None or op.future.done or op.kind != "write":
            return
        if not self.cluster.sloppy:
            return
        missing = op.targets - op.responded
        if not missing:
            return
        stand_ins = self.cluster.ring.fallbacks(op.key, exclude=op.targets)
        for home, stand_in in zip(sorted(missing, key=str), stand_ins):
            self.send(
                stand_in,
                StoreMsg(op_id, op.key, op.value, op.stamp, hint_for=home),
            )
            self.cluster._c_hinted_writes.inc()
            self.sim.annotate("hinted_write", key=op.key, home=home,
                              stand_in=stand_in)

    def _push_hints(self) -> None:
        for home, entries in list(self.hints.items()):
            if not entries:
                del self.hints[home]
                continue
            for key, (value, stamp) in list(entries.items()):
                if self.network.reachable(self.node_id, home):
                    hint_id = self._next_op()
                    self.send(home, StoreMsg(hint_id, key, value, stamp))
                    del entries[key]
                    self.cluster._c_hints_delivered.inc()

    # -- lifecycle ---------------------------------------------------------
    def _expire(self, op_id: int) -> None:
        op = self._ops.pop(op_id, None)
        if op is None:
            return
        if not op.future.done:
            got = op.acks if op.kind == "write" else len(op.replies)
            op.future.fail(
                QuorumError(
                    f"{op.kind} quorum not met for {op.key!r} "
                    f"({got}/{op.needed})"
                )
            )
            if op.kind == "write":
                self.cluster._c_writes_failed.inc()
            else:
                self.cluster._c_reads_failed.inc()


def _freshest(replies: list) -> tuple[Any, LamportStamp | None]:
    """LWW arbitration over fetch replies."""
    best_value, best_stamp = None, None
    for _src, value, stamp in replies:
        if stamp is not None and (best_stamp is None or stamp > best_stamp):
            best_value, best_stamp = value, stamp
    return best_value, best_stamp


@dataclass(slots=True)
class _CoordinatorOp:
    kind: str
    key: Hashable
    future: Future
    needed: int
    targets: set
    value: Any = None
    stamp: LamportStamp | None = None
    acks: int = 0
    replies: list = field(default_factory=list)
    responded: set = field(default_factory=set)


# ---------------------------------------------------------------------------
# Client + cluster
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _RawOp:
    """History record before stamps are densified into versions."""

    kind: str
    key: Hashable
    session: Hashable
    start: float
    end: float | None
    stamp: LamportStamp | None
    value: Any
    replica: Hashable


class DynamoClient(ClientNode):
    """Session-scoped client; records raw stamped history."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "DynamoCluster",
        session: Hashable,
        coordinator: Hashable | None = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.session = session
        #: Pinned coordinator (e.g. the nearest node), overriding the
        #: cluster policy — how real deployments route via a local node.
        self.coordinator = coordinator
        #: Highest stamp this session has observed (its causal context).
        self.context: LamportStamp | None = None

    def _observe(self, stamp: LamportStamp | None) -> None:
        if stamp is not None and (self.context is None or stamp > self.context):
            self.context = stamp

    def _coordinator_for(self, key: Hashable) -> Hashable:
        if self.coordinator is not None:
            return self.coordinator
        if self.cluster.coordinator_policy == "first":
            return self.cluster.ring.coordinator(key)
        nodes = self.cluster.ring.nodes
        return nodes[self.sim.rng.randrange(len(nodes))]

    def _endpoints(self, coordinator: Hashable) -> list:
        """Failover order: the chosen coordinator, then the rest of the
        ring — any node can coordinate a Dynamo operation."""
        return [coordinator] + [
            node for node in self.cluster.ring.nodes if node != coordinator
        ]

    def put(
        self, key: Hashable, value: Any, timeout: float | None = None
    ) -> Future:
        """Resolves with the write's arbitration stamp."""
        coordinator = self._coordinator_for(key)
        start = self.sim.now
        inner = self.call(
            self._endpoints(coordinator),
            QPut(key, value, context=self.context),
            timeout or self.cluster.client_timeout,
            idempotent=True,
        )
        outer = Future(self.sim, label=f"dput({key!r})")

        def done(future: Future) -> None:
            if future.error is not None:
                self.cluster._raw_ops.append(
                    _RawOp("write", key, self.session, start, None, None,
                           value, coordinator)
                )
                outer.fail(future.error)
            else:
                _value, stamp = future.value
                self._observe(stamp)
                self.cluster._raw_ops.append(
                    _RawOp("write", key, self.session, start, self.sim.now,
                           stamp, value, coordinator)
                )
                self.cluster._lat_writes.record(self.sim.now - start)
                outer.resolve(stamp)

        inner.add_callback(done)
        return outer

    def get(self, key: Hashable, timeout: float | None = None) -> Future:
        """Resolves with ``(value, stamp)``."""
        coordinator = self._coordinator_for(key)
        start = self.sim.now
        inner = self.call(
            self._endpoints(coordinator), QGet(key),
            timeout or self.cluster.client_timeout,
        )
        outer = Future(self.sim, label=f"dget({key!r})")

        def done(future: Future) -> None:
            if future.error is not None:
                self.cluster._raw_ops.append(
                    _RawOp("read", key, self.session, start, None, None,
                           None, coordinator)
                )
                outer.fail(future.error)
            else:
                value, stamp = future.value
                self._observe(stamp)
                self.cluster._raw_ops.append(
                    _RawOp("read", key, self.session, start, self.sim.now,
                           stamp, value, coordinator)
                )
                self.cluster._lat_reads.record(self.sim.now - start)
                outer.resolve((value, stamp))

        inner.add_callback(done)
        return outer


class DynamoCluster:
    """Configuration + node factory for a partial-quorum store.

    Parameters mirror Dynamo's: ``n`` replicas per key, ``r``/``w``
    quorum sizes, ``sloppy`` quorums with hinted handoff, and
    ``read_repair``.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 5,
        n: int = 3,
        r: int = 2,
        w: int = 2,
        sloppy: bool = False,
        read_repair: bool = True,
        vnodes: int = 16,
        replica_timeout: float = 25.0,
        op_deadline: float = 200.0,
        client_timeout: float = 400.0,
        hint_interval: float | None = 50.0,
        node_ids: list[Hashable] | None = None,
        coordinator_policy: str = "first",
    ) -> None:
        if not 1 <= n:
            raise ValueError("n must be >= 1")
        if not 1 <= r <= n or not 1 <= w <= n:
            raise ValueError("need 1 <= r,w <= n")
        if coordinator_policy not in ("first", "random"):
            raise ValueError("coordinator_policy must be 'first' or 'random'")
        ids = node_ids or [f"dyn{i}" for i in range(nodes)]
        if n > len(ids):
            raise ValueError("replication factor exceeds node count")
        self.sim = sim
        self.network = network
        self.n, self.r, self.w = n, r, w
        self.sloppy = sloppy
        self.read_repair = read_repair
        self.replica_timeout = replica_timeout
        self.op_deadline = op_deadline
        self.client_timeout = client_timeout
        self.hint_interval = hint_interval
        self.coordinator_policy = coordinator_policy
        self.ring = HashRing(ids, vnodes=vnodes)
        # Counters the experiments read — published into the sim-wide
        # metrics registry (two clusters on one sim share them).
        metrics = sim.metrics
        self._c_read_repairs = metrics.counter("quorum.read_repairs")
        self._c_hinted_writes = metrics.counter("quorum.hinted_writes")
        self._c_hints_delivered = metrics.counter("quorum.hints_delivered")
        self._c_writes_succeeded = metrics.counter("quorum.writes_succeeded")
        self._c_writes_failed = metrics.counter("quorum.writes_failed")
        self._c_reads_failed = metrics.counter("quorum.reads_failed")
        self._lat_reads = metrics.latency("quorum.read_ms")
        self._lat_writes = metrics.latency("quorum.write_ms")
        self.nodes = [DynamoNode(sim, network, node_id, self) for node_id in ids]
        self._raw_ops: list[_RawOp] = []
        self._clients = 0

    @property
    def read_repairs(self) -> int:
        return self._c_read_repairs.value

    @property
    def hinted_writes(self) -> int:
        return self._c_hinted_writes.value

    @property
    def hints_delivered(self) -> int:
        return self._c_hints_delivered.value

    @property
    def writes_succeeded(self) -> int:
        return self._c_writes_succeeded.value

    @property
    def writes_failed(self) -> int:
        return self._c_writes_failed.value

    @property
    def reads_failed(self) -> int:
        return self._c_reads_failed.value

    def node(self, node_id: Hashable) -> DynamoNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def connect(
        self,
        session: Hashable | None = None,
        client_id: Hashable | None = None,
        coordinator: Hashable | None = None,
    ) -> DynamoClient:
        self._clients += 1
        session = session if session is not None else f"session-{self._clients}"
        client_id = client_id if client_id is not None else f"dclient-{self._clients}"
        return DynamoClient(
            self.sim, self.network, client_id, self, session,
            coordinator=coordinator,
        )

    # ------------------------------------------------------------------
    def history(self) -> History:
        """Densify Lamport stamps into per-key integer versions."""
        rank: dict[tuple[Hashable, LamportStamp], int] = {}
        stamps_by_key: dict[Hashable, list[LamportStamp]] = {}
        for raw in self._raw_ops:
            # Reads contribute their observed stamps too, so a write
            # that timed out client-side but landed on replicas still
            # gets a consistent rank when reads observe it.
            if raw.stamp is not None:
                stamps_by_key.setdefault(raw.key, []).append(raw.stamp)
        for key, stamps in stamps_by_key.items():
            for index, stamp in enumerate(sorted(set(stamps)), start=1):
                rank[(key, stamp)] = index
        ops = []
        for raw in self._raw_ops:
            version = 0
            if raw.stamp is not None:
                version = rank.get((raw.key, raw.stamp), 0)
            ops.append(
                Operation(
                    kind=raw.kind,
                    key=raw.key,
                    version=version,
                    session=raw.session,
                    start=raw.start,
                    end=raw.end,
                    value=raw.value,
                    replica=raw.replica,
                )
            )
        return History(ops)

    def snapshots(self) -> list[dict]:
        return [node.snapshot() for node in self.nodes]

    def anti_entropy_sweep(self) -> None:
        """Instantaneous full pairwise sync (test/bench convenience for
        'run to quiescence' without waiting for gossip)."""
        for a in self.nodes:
            for b in self.nodes:
                if a is b:
                    continue
                for key, (value, stamp) in b.data.items():
                    a.apply(key, value, stamp)
