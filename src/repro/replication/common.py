"""Request/reply plumbing shared by every replication protocol.

Clients are first-class network nodes (:class:`ClientNode`): a client
operation is a :class:`Request` message to some server node, matched
to a :class:`Reply` by id, with an optional timeout.  This keeps
client-observed latency honest — it includes the client↔server hops
through the same latency/partition model the replicas use — and gives
every protocol the same failure surface (a request into a partitioned
server simply times out).

Servers implement ``serve_<PayloadClassName>(src, payload) -> result``;
returning a :class:`Future` defers the reply until the protocol round
(quorum, acks, consensus) completes.  Raising inside ``serve_*`` or
failing the future sends an error reply that fails the client future.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from .. import errors
from ..errors import ReproError, SimulationError
from ..errors import TimeoutError as ReproTimeoutError
from ..sim import Future, Network, Node, Simulator


@dataclass
class Request:
    request_id: int
    payload: Any


@dataclass
class Reply:
    request_id: int
    payload: Any = None
    error: str | None = None          # exception class name
    error_message: str = ""


def _error_reply(request_id: int, exc: BaseException) -> Reply:
    return Reply(
        request_id,
        error=type(exc).__name__,
        error_message=str(exc),
    )


def _rebuild_error(reply: Reply) -> ReproError:
    exc_type = getattr(errors, reply.error or "", None)
    if isinstance(exc_type, type) and issubclass(exc_type, BaseException):
        return exc_type(reply.error_message)
    return ReproError(f"{reply.error}: {reply.error_message}")


class ClientNode(Node):
    """A network-attached client issuing request/reply operations."""

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable):
        super().__init__(sim, network, node_id)
        self._next_request = 0
        self._outstanding: dict[int, Future] = {}

    def request(
        self, dst: Hashable, payload: Any, timeout: float | None = None
    ) -> Future:
        """Send ``payload`` to ``dst``; the future resolves with the
        reply payload (or fails with the server's error / a timeout)."""
        self._next_request += 1
        request_id = self._next_request
        future = Future(self.sim, label=f"req#{request_id}->{dst}")
        self._outstanding[request_id] = future
        self.send(dst, Request(request_id, payload))
        if timeout is not None:
            self.set_timer(timeout, self._timeout, request_id)
        return future

    def _timeout(self, request_id: int) -> None:
        future = self._outstanding.pop(request_id, None)
        if future is not None and not future.done:
            future.fail(ReproTimeoutError(f"request #{request_id} timed out"))

    def handle_Reply(self, src: Hashable, msg: Reply) -> None:
        future = self._outstanding.pop(msg.request_id, None)
        if future is None or future.done:
            return  # late reply after timeout
        if msg.error is not None:
            future.fail(_rebuild_error(msg))
        else:
            future.resolve(msg.payload)


class ServerNode(Node):
    """A node that serves typed request payloads.

    Subclasses define ``serve_<PayloadClassName>`` methods; each may
    return a plain value (replied immediately) or a :class:`Future`
    (replied when it resolves).

    ``service_time`` (ms, default 0 = infinitely fast) models the
    node's request-processing capacity: requests are admitted through
    a FIFO single-server queue, so one node saturates at
    ``1000 / service_time`` client ops per second.  It is what makes
    horizontal scaling (:mod:`repro.sharding`) measurable — without
    it every node has infinite capacity and sharding cannot help
    throughput.
    """

    #: Per-request processing time in ms; 0 disables queueing entirely.
    service_time: float = 0.0

    def __init__(self, sim, network, node_id: Hashable) -> None:
        super().__init__(sim, network, node_id)
        self._busy_until = 0.0

    def handle_Request(self, src: Hashable, msg: Request) -> None:
        if self.service_time <= 0:
            self._dispatch_request(src, msg)
            return
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.service_time
        self.set_timer(self._busy_until - self.sim.now,
                       self._dispatch_request, src, msg)

    def _dispatch_request(self, src: Hashable, msg: Request) -> None:
        handler = getattr(self, f"serve_{type(msg.payload).__name__}", None)
        if handler is None:
            raise SimulationError(
                f"{type(self).__name__} {self.node_id!r} cannot serve "
                f"{type(msg.payload).__name__}"
            )
        try:
            result = handler(src, msg.payload)
        except ReproError as exc:
            self.send(src, _error_reply(msg.request_id, exc))
            return
        if isinstance(result, Future):
            result.add_callback(
                lambda future: self._reply_from_future(src, msg.request_id, future)
            )
        else:
            self.send(src, Reply(msg.request_id, result))

    def _reply_from_future(
        self, src: Hashable, request_id: int, future: Future
    ) -> None:
        if self.crashed:
            return
        if future.error is not None:
            self.send(src, _error_reply(request_id, future.error))
        else:
            self.send(src, Reply(request_id, future.value))
