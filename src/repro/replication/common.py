"""Request/reply plumbing shared by every replication protocol.

Clients are first-class network nodes (:class:`ClientNode`): a client
operation is a :class:`Request` message to some server node, matched
to a :class:`Reply` by id, with an optional timeout.  This keeps
client-observed latency honest — it includes the client↔server hops
through the same latency/partition model the replicas use — and gives
every protocol the same failure surface (a request into a partitioned
server simply times out).

On top of the one-shot :meth:`ClientNode.request` primitive,
:meth:`ClientNode.call` runs a :class:`repro.rpc.RetryPolicy`:
sequential retries with jittered backoff, failover across an
endpoint list, speculative hedged attempts, and an overall deadline.
Protocol clients route their operations through ``call`` so every
store gets the same resilience surface (and the same ``rpc.*``
metrics) instead of re-inventing failure handling.

Servers implement ``serve_<PayloadClassName>(src, payload) -> result``;
returning a :class:`Future` defers the reply until the protocol round
(quorum, acks, consensus) completes.  Raising inside ``serve_*`` or
failing the future sends an error reply that fails the client future.
Requests carrying an idempotency key are deduplicated server-side so
a retried write is applied at most once per server (the replayed reply
carries the original result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from .. import errors
from ..errors import OverloadedError, ReproError, SimulationError
from ..errors import TimeoutError as ReproTimeoutError
from ..rpc import RetryPolicy, RpcCall, rpc_counters
from ..sim import Future, Network, Node, Simulator
from ..sim.trace import MSG_DROP


@dataclass(slots=True)
class Request:
    request_id: int
    payload: Any
    #: When set, the server applies the payload at most once per key:
    #: a retried request replays the cached reply instead of
    #: re-executing the handler (see :class:`ServerNode`).
    idempotency_key: Hashable | None = None


@dataclass(slots=True)
class Reply:
    request_id: int
    payload: Any = None
    error: str | None = None          # exception class name
    error_message: str = ""
    #: Back-pressure hint (ms) carried by an overload rejection: the
    #: server's estimate of when capacity frees up.  Re-attached to
    #: the rebuilt client-side exception so retry policies can honor it.
    retry_after: float | None = None


def _error_reply(request_id: int, exc: BaseException) -> Reply:
    return Reply(
        request_id,
        error=type(exc).__name__,
        error_message=str(exc),
        retry_after=getattr(exc, "retry_after", None),
    )


def _rebuild_error(reply: Reply) -> ReproError:
    exc_type = getattr(errors, reply.error or "", None)
    if isinstance(exc_type, type) and issubclass(exc_type, BaseException):
        rebuilt = exc_type(reply.error_message)
    else:
        rebuilt = ReproError(f"{reply.error}: {reply.error_message}")
    if reply.retry_after is not None:
        rebuilt.retry_after = reply.retry_after
    return rebuilt


class ClientNode(Node):
    """A network-attached client issuing request/reply operations."""

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable):
        super().__init__(sim, network, node_id)
        self._next_request = 0
        self._next_idem = 0
        # request_id -> (future, timeout timer or None)
        self._outstanding: dict[int, tuple[Future, Any]] = {}
        #: Default policy applied by :meth:`call` when none is passed
        #: explicitly (set by the store adapters' ``retry=`` option).
        self.retry: RetryPolicy | None = None
        #: Optional :class:`~repro.placement.LocalityMap` set by
        #: region-aware sessions.  When present, :meth:`call` orders
        #: multi-endpoint destinations nearest-region-first and the RPC
        #: engine publishes ``rpc.attempts_local`` / ``attempts_remote``.
        self.locality = None
        self._rpc_counters = rpc_counters(sim.metrics)

    # ------------------------------------------------------------------
    # One-shot primitive
    # ------------------------------------------------------------------
    def request(
        self,
        dst: Hashable,
        payload: Any,
        timeout: float | None = None,
        idempotency_key: Hashable | None = None,
    ) -> Future:
        """Send ``payload`` to ``dst``; the future resolves with the
        reply payload (or fails with the server's error / a timeout)."""
        _request_id, future = self._issue(
            dst, payload, timeout, idempotency_key
        )
        return future

    def _issue(
        self,
        dst: Hashable,
        payload: Any,
        timeout: float | None = None,
        idempotency_key: Hashable | None = None,
    ) -> tuple[int, Future]:
        self._next_request += 1
        request_id = self._next_request
        future = Future(self.sim, label=f"req#{request_id}->{dst}")
        if self.locality is not None:
            # Locality accounting only exists for region-placed clients;
            # the counters are created lazily, so region-blind scenarios
            # keep their metrics snapshots (and fingerprints) unchanged.
            name = ("attempts_local" if self.locality.is_local(dst)
                    else "attempts_remote")
            self.sim.metrics.counter(f"rpc.{name}").inc()
        self.send(dst, Request(request_id, payload, idempotency_key))
        timer = (
            self.set_timer(timeout, self._timeout, request_id)
            if timeout is not None else None
        )
        self._outstanding[request_id] = (future, timer)
        return request_id, future

    def _timeout(self, request_id: int) -> None:
        entry = self._outstanding.pop(request_id, None)
        if entry is None:
            return
        future, _timer = entry
        if not future.done:
            future.fail(ReproTimeoutError(f"request #{request_id} timed out"))

    def _abandon(
        self, request_id: int, dst: Hashable, reason: str = "cancelled"
    ) -> None:
        """Stop waiting for a request without failing its future (the
        losing attempt of a hedged call).  The eventual reply, if any,
        is ignored on arrival; the trace records the abandonment as a
        drop so hedging shows up in message summaries."""
        entry = self._outstanding.pop(request_id, None)
        if entry is None:
            return
        _future, timer = entry
        if timer is not None:
            timer.cancel()
        if self.sim.trace.enabled:
            self.sim.trace.record(
                self.sim.now, MSG_DROP, reason=reason,
                src=dst, dst=self.node_id, msg_type=Reply.__name__,
            )

    def handle_Reply(self, src: Hashable, msg: Reply) -> None:
        entry = self._outstanding.pop(msg.request_id, None)
        if entry is None:
            return  # late reply after timeout or abandonment
        future, timer = entry
        if timer is not None:
            # The reply settled the request early: retire the timeout
            # timer instead of letting a dead event fire later.
            timer.cancel()
        if future.done:
            return
        if msg.error is not None:
            future.fail(_rebuild_error(msg))
        else:
            future.resolve(msg.payload)

    # ------------------------------------------------------------------
    # Policy-driven calls
    # ------------------------------------------------------------------
    def call(
        self,
        dst: Hashable | list | tuple,
        payload: Any,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
        idempotent: bool = False,
    ) -> Future:
        """Issue ``payload`` under a retry policy.

        ``dst`` is one endpoint or a failover-ordered list (preferred
        endpoint first).  The effective policy is ``policy`` or
        :attr:`retry`; with neither, this is exactly :meth:`request`
        against the preferred endpoint — one attempt, one optional
        timeout.  Under a policy, ``timeout`` acts as the overall
        deadline when the policy does not set its own.

        ``idempotent=True`` attaches a fresh idempotency key so
        server-side dedup makes retried writes apply at most once per
        server.
        """
        endpoints = list(dst) if isinstance(dst, (list, tuple)) else [dst]
        if self.locality is not None and len(endpoints) > 1:
            # Stable sort: among same-region endpoints the caller's
            # preference order (coordinator first, home first) holds.
            endpoints = self.locality.order(endpoints)
        policy = policy if policy is not None else self.retry
        if policy is None:
            return self.request(endpoints[0], payload, timeout)
        key = None
        if idempotent:
            self._next_idem += 1
            key = (self.node_id, self._next_idem)
        return RpcCall(
            self, endpoints, payload, policy,
            timeout=timeout, idempotency_key=key,
        ).future


@dataclass(slots=True)
class _DedupEntry:
    """Server-side record of one idempotent request.

    Pending entries (handler still running) collect the retries'
    reply addresses; completed entries replay the cached result."""

    done: bool = False
    value: Any = None
    waiters: list = field(default_factory=list)   # (src, request_id)


class ServerNode(Node):
    """A node that serves typed request payloads.

    Subclasses define ``serve_<PayloadClassName>`` methods; each may
    return a plain value (replied immediately) or a :class:`Future`
    (replied when it resolves).

    ``service_time`` (ms, default 0 = infinitely fast) models the
    node's request-processing capacity: requests are admitted through
    a FIFO single-server queue, so one node saturates at
    ``1000 / service_time`` client ops per second.  It is what makes
    horizontal scaling (:mod:`repro.sharding`) measurable — without
    it every node has infinite capacity and sharding cannot help
    throughput.

    Requests carrying an idempotency key are deduplicated: the first
    copy runs the handler, concurrent copies attach to its outcome,
    and later copies replay the cached reply — at-most-once
    application per server.  Successful results survive a crash
    (modelling a persisted dedup table); in-flight entries die with
    the node so a post-recovery retry re-executes, and failed
    operations are forgotten so retrying them is meaningful.

    Overload control (both off by default):

    * ``queue_limit`` bounds the service queue: a request arriving
      with ``queue_limit`` requests already admitted is *shed* —
      rejected immediately with an :class:`~repro.errors
      .OverloadedError` carrying a ``retry_after`` hint — instead of
      queueing behind work it would time out waiting for.
    * ``admission_rate`` / ``admission_burst`` is a per-node token
      bucket (tokens = client ops; rate in ops/sec): requests beyond
      the sustained rate + burst are shed the same way.

    Shed requests never consume service time, never create dedup
    entries, and count in the shared ``server.shed`` counter; queue
    occupancy publishes as the ``server.queue_depth`` /
    ``server.queue_depth_peak`` gauges (aggregated across nodes).
    """

    #: Per-request processing time in ms; 0 disables queueing entirely.
    service_time: float = 0.0
    #: Cap on remembered idempotent results (oldest-completed evicted
    #: first; in-flight entries are never evicted).
    dedup_capacity: int = 1024
    #: Bounded service queue: admitted-but-unserved requests beyond
    #: this are shed (None = unbounded; only meaningful with a
    #: positive ``service_time``).
    queue_limit: int | None = None
    #: Token-bucket admission: sustained client ops/sec this node
    #: accepts (None = unthrottled).
    admission_rate: float | None = None
    #: Token-bucket burst capacity (ops admitted above the sustained
    #: rate before throttling kicks in).
    admission_burst: float = 8.0
    #: Membership overlay hook: set by :class:`repro.membership
    #: .MembershipService` when this node is monitored.  Gossip rides
    #: the ordinary message path (so partitions and crashes affect it
    #: exactly like protocol traffic) but bypasses admission control —
    #: a saturated node must still be able to prove it is alive.
    gossip: Any = None

    def __init__(self, sim, network, node_id: Hashable) -> None:
        super().__init__(sim, network, node_id)
        self._busy_until = 0.0
        self._queue_depth = 0
        self._tokens: float | None = None   # lazily filled to burst
        self._tokens_at = 0.0
        self._dedup: dict[Hashable, _DedupEntry] = {}
        #: Completed idempotent keys in completion order — the only
        #: entries :meth:`_trim_dedup` may evict, oldest-completed
        #: first (insertion-ordered dict used as a FIFO set).
        self._dedup_done: dict[Hashable, None] = {}
        self._dedup_hits = sim.metrics.counter("rpc.dedup_hits")
        self._shed = sim.metrics.counter("server.shed")
        self._g_queue_depth = sim.metrics.gauge("server.queue_depth")
        self._g_queue_peak = sim.metrics.gauge("server.queue_depth_peak")
        self._serve_cache: dict[type, Any] = {}

    def handle_GossipMsg(self, src: Hashable, msg: Any) -> None:
        if self.gossip is not None:
            self.gossip.on_gossip(self, src, msg)

    def handle_Request(self, src: Hashable, msg: Request) -> None:
        key = msg.idempotency_key
        if key is not None:
            entry = self._dedup.get(key)
            if entry is not None:
                # Replays and attaches bypass admission control: the
                # original was already admitted, and a replayed reply
                # costs no service time.
                self._dedup_hits.inc()
                if entry.done:
                    self.send(src, Reply(msg.request_id, entry.value))
                else:
                    entry.waiters.append((src, msg.request_id))
                return
        rejection = self._admission_check()
        if rejection is not None:
            self._shed.inc()
            self.send(src, _error_reply(msg.request_id, rejection))
            return
        if key is not None:
            # Record the entry at admission, not at dispatch: a retry
            # arriving while the original sits in the service queue
            # must not be queued (and executed) a second time.
            entry = _DedupEntry(waiters=[(src, msg.request_id)])
            self._dedup[key] = entry
            self._trim_dedup()
        if self.service_time <= 0:
            self._dispatch_request(src, msg)
            return
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.service_time
        self._set_queue_depth(self._queue_depth + 1)
        self.set_timer(self._busy_until - self.sim.now,
                       self._dispatch_queued, src, msg)

    # ------------------------------------------------------------------
    # Overload control
    # ------------------------------------------------------------------
    def _admission_check(self) -> OverloadedError | None:
        """The rejection to send, or None when the request is admitted
        (consuming a token when a bucket is configured)."""
        if (
            self.queue_limit is not None
            and self.service_time > 0
            and self._queue_depth >= self.queue_limit
        ):
            # Time until occupancy drops below the limit again: the
            # backlog drains one slot per service_time.
            drain = (self._busy_until - self.sim.now
                     - (self.queue_limit - 1) * self.service_time)
            return OverloadedError(
                f"{self.node_id} service queue full "
                f"({self._queue_depth}/{self.queue_limit})",
                retry_after=max(self.service_time, drain),
            )
        rate = self.admission_rate
        if rate is not None and rate > 0:
            tokens = self._tokens
            if tokens is None:
                tokens = self.admission_burst
            per_ms = rate / 1000.0
            tokens = min(
                self.admission_burst,
                tokens + (self.sim.now - self._tokens_at) * per_ms,
            )
            self._tokens_at = self.sim.now
            if tokens < 1.0:
                self._tokens = tokens
                return OverloadedError(
                    f"{self.node_id} over admission rate",
                    retry_after=(1.0 - tokens) / per_ms,
                )
            self._tokens = tokens - 1.0
        return None

    def _set_queue_depth(self, depth: int) -> None:
        delta = depth - self._queue_depth
        self._queue_depth = depth
        total = self._g_queue_depth.value + delta
        self._g_queue_depth.set(total)
        if total > self._g_queue_peak.value:
            self._g_queue_peak.set(total)

    def _dispatch_queued(self, src: Hashable, msg: Request) -> None:
        self._set_queue_depth(self._queue_depth - 1)
        self._dispatch_request(src, msg)

    def _dispatch_request(self, src: Hashable, msg: Request) -> None:
        payload_cls = type(msg.payload)
        handler = self._serve_cache.get(payload_cls)
        if handler is None:
            handler = getattr(self, f"serve_{payload_cls.__name__}", None)
            if handler is None:
                raise SimulationError(
                    f"{type(self).__name__} {self.node_id!r} cannot serve "
                    f"{payload_cls.__name__}"
                )
            self._serve_cache[payload_cls] = handler
        key = msg.idempotency_key
        entry = self._dedup.get(key) if key is not None else None
        try:
            result = handler(src, msg.payload)
        except ReproError as exc:
            if entry is not None:
                self._fail_idempotent(key, entry, exc)
            else:
                self.send(src, _error_reply(msg.request_id, exc))
            return
        if isinstance(result, Future):
            if entry is not None:
                result.add_callback(
                    lambda future: self._settle_idempotent(key, entry, future)
                )
            else:
                result.add_callback(
                    lambda future: self._reply_from_future(
                        src, msg.request_id, future
                    )
                )
        elif entry is not None:
            self._complete_idempotent(key, entry, result)
        else:
            self.send(src, Reply(msg.request_id, result))

    def _reply_from_future(
        self, src: Hashable, request_id: int, future: Future
    ) -> None:
        if self.crashed:
            return
        if future.error is not None:
            self.send(src, _error_reply(request_id, future.error))
        else:
            self.send(src, Reply(request_id, future.value))

    # ------------------------------------------------------------------
    # Idempotent-request bookkeeping
    # ------------------------------------------------------------------
    def _complete_idempotent(
        self, key: Hashable, entry: _DedupEntry, value: Any
    ) -> None:
        entry.done = True
        entry.value = value
        self._dedup_done[key] = None
        waiters, entry.waiters = entry.waiters, []
        for src, request_id in waiters:
            self.send(src, Reply(request_id, value))

    def _fail_idempotent(
        self, key: Hashable, entry: _DedupEntry, exc: BaseException
    ) -> None:
        # A failed operation was not applied; forget it so a retry
        # re-executes instead of replaying the failure forever.
        if self._dedup.get(key) is entry:
            del self._dedup[key]
        for src, request_id in entry.waiters:
            self.send(src, _error_reply(request_id, exc))

    def _settle_idempotent(
        self, key: Hashable, entry: _DedupEntry, future: Future
    ) -> None:
        if self.crashed:
            return
        if self._dedup.get(key) is not entry:
            return  # a crash dropped the entry while the op ran
        if future.error is not None:
            self._fail_idempotent(key, entry, future.error)
        else:
            self._complete_idempotent(key, entry, future.value)

    def _trim_dedup(self) -> None:
        # Evict completed entries only, oldest *completion* first: an
        # in-flight entry must never be dropped (its retry, already on
        # the wire, would re-execute and double-apply), and a
        # just-completed entry — whatever its admission time — is
        # exactly the one whose retries are still plausibly in flight.
        while len(self._dedup) > self.dedup_capacity and self._dedup_done:
            key = next(iter(self._dedup_done))
            del self._dedup_done[key]
            del self._dedup[key]

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        if self.crashed:
            return
        super().crash()
        # The service queue died with the node (its dispatch timers
        # were cancelled); the pre-crash backlog must not push
        # _busy_until into the recovered node's future, and its
        # occupancy must leave the shared queue-depth gauge.
        self._busy_until = 0.0
        self._set_queue_depth(0)
        # In-flight idempotent ops died un-applied: drop their entries
        # so a post-recovery retry re-executes.  Completed results are
        # kept (a persisted dedup table).
        for key in [k for k, e in self._dedup.items() if not e.done]:
            del self._dedup[key]

    def recover(self) -> None:
        if not self.crashed:
            return
        self._busy_until = 0.0
        super().recover()
