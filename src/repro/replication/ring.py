"""Consistent hash ring with virtual nodes (Dynamo/Cassandra style).

Keys are placed on a ring of hashed tokens; a key's **preference
list** is the next N *distinct physical nodes* clockwise from the
key's position.  Virtual nodes smooth the load distribution.  The ring
is also what sloppy quorums walk to find fallback replicas.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable


def stable_hash(value: object) -> int:
    """Deterministic 64-bit hash (Python's builtin hash is salted)."""
    digest = hashlib.blake2b(
        repr(value).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing with ``vnodes`` tokens per physical node."""

    def __init__(self, nodes: list[Hashable], vnodes: int = 16) -> None:
        if not nodes:
            raise ValueError("ring needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Bumped on every membership change.  Routers that cache
        #: ring-derived state (per-shard sessions, walk results copied
        #: out of the ring) compare against this to revalidate.
        self.version = 0
        self._tokens: list[tuple[int, Hashable]] = []
        self._nodes: list[Hashable] = []
        # key -> full distinct-node walk order.  The walk is a pure
        # function of (key, membership), and every request hashes its
        # key and walks the ring, so this cache turns the per-request
        # blake2b + token scan into a dict hit.  Invalidated on any
        # membership change.
        self._walk_cache: dict[Hashable, tuple[Hashable, ...]] = {}
        for node in nodes:
            self.add_node(node)

    def add_node(self, node: Hashable) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on ring")
        self._nodes.append(node)
        for i in range(self.vnodes):
            token = stable_hash((node, i))
            bisect.insort(self._tokens, (token, node))
        self._walk_cache.clear()
        self.version += 1

    def remove_node(self, node: Hashable) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on ring")
        if len(self._nodes) == 1:
            # An empty ring would make every later coordinator() call
            # die with an opaque IndexError; fail at the cause instead.
            raise ValueError(
                f"cannot remove {node!r}: it is the last node on the ring"
            )
        self._nodes.remove(node)
        self._tokens = [(t, n) for t, n in self._tokens if n != node]
        self._walk_cache.clear()
        self.version += 1

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._nodes)

    def _walk_from(self, key: Hashable) -> tuple[Hashable, ...]:
        """Physical nodes clockwise from the key's token, distinct,
        cycling over the whole ring once.  Cached per key."""
        cached = self._walk_cache.get(key)
        if cached is not None:
            return cached
        if not self._tokens:
            return ()
        token = stable_hash(key)
        start = bisect.bisect_right(self._tokens, (token, _SENTINEL))
        out: list[Hashable] = []
        seen: set[Hashable] = set()
        count = len(self._tokens)
        for offset in range(count):
            _t, node = self._tokens[(start + offset) % count]
            if node not in seen:
                seen.add(node)
                out.append(node)
        walk = tuple(out)
        self._walk_cache[key] = walk
        return walk

    def preference_list(self, key: Hashable, n: int) -> list[Hashable]:
        """The key's N home replicas (fewer if the ring is smaller)."""
        return list(self._walk_from(key)[:n])

    def fallbacks(self, key: Hashable, exclude: set) -> list[Hashable]:
        """Ring walk in key order skipping ``exclude`` — the
        sloppy-quorum stand-ins for unreachable home replicas."""
        return [node for node in self._walk_from(key) if node not in exclude]

    def coordinator(self, key: Hashable) -> Hashable:
        """The key's first home node — the default coordinator."""
        return self._walk_from(key)[0]


class _Sentinel:
    """Greater than every node id, for bisect on (token, node) pairs."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return True


_SENTINEL = _Sentinel()
