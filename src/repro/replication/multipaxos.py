"""Multi-Paxos replicated state machine over a key-value store.

The Spanner/Megastore stand-in: a stable leader sequences client
commands into a replicated log; an entry commits when a majority of
replicas accept it; every replica applies the log in order to a local
KV state machine.  Client writes and *linearizable* reads go through
the log (one WAN round trip leader↔majority — the cost E10 measures);
*local* reads hit any replica's state machine directly and may be
stale but are timeline-consistent (log-prefix order).

Leader change runs a full phase 1 (ballot prepare over all log slots),
so the protocol stays safe across failovers; the happy path skips
phase 1 exactly as Multi-Paxos prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..errors import NotLeaderError
from ..histories import HistoryRecorder
from ..sim import Future, Network, Simulator
from .common import ClientNode, ServerNode
from .paxos import NO_BALLOT, Ballot


# -- commands -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PutCmd:
    key: Hashable
    value: Any


@dataclass(frozen=True, slots=True)
class GetCmd:
    key: Hashable


@dataclass(frozen=True, slots=True)
class Noop:
    pass


# -- client payloads ------------------------------------------------------------


@dataclass(slots=True)
class SubmitCmd:
    command: Any


@dataclass(slots=True)
class LocalRead:
    key: Hashable


# -- replica-to-replica messages ---------------------------------------------


@dataclass(slots=True)
class MPPrepare:
    ballot: Ballot


@dataclass(slots=True)
class MPPromise:
    ballot: Ballot
    accepted: dict  # slot -> (ballot, command)


@dataclass(slots=True)
class MPAccept:
    ballot: Ballot
    slot: int
    command: Any


@dataclass(slots=True)
class MPAccepted:
    ballot: Ballot
    slot: int


@dataclass(slots=True)
class MPNack:
    ballot: Ballot
    promised: Ballot


@dataclass(slots=True)
class MPCommit:
    slot: int
    command: Any


@dataclass(slots=True)
class CatchupRequest:
    """Learner with a log gap asks a peer for committed slots."""

    from_slot: int


@dataclass(slots=True)
class CatchupReply:
    committed: dict  # slot -> command


class PaxosReplica(ServerNode):
    """Acceptor + learner + (when leading) sequencer, in one node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "MultiPaxosCluster",
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        # Acceptor state (durable across crash).
        self.promised: Ballot = NO_BALLOT
        self.accepted: dict[int, tuple[Ballot, Any]] = {}
        # Learner state.
        self.committed: dict[int, Any] = {}
        self.applied_through = -1
        self.store: dict[Hashable, tuple[Any, int]] = {}  # key -> (value, version)
        self._versions: dict[Hashable, int] = {}
        # Leader state.
        self.is_leader = False
        self.ballot: Ballot = NO_BALLOT
        self.next_slot = 0
        self._accept_votes: dict[int, set] = {}   # slot -> acceptor ids
        self._proposals: dict[int, Any] = {}
        self._slot_futures: dict[int, Future] = {}
        self._promises: list[tuple[Hashable, MPPromise]] = []
        self._preparing = False
        self._catching_up = False

    # ------------------------------------------------------------------
    # Leadership
    # ------------------------------------------------------------------
    def start_leadership(self, round_number: int = 1) -> None:
        """Run phase 1 for all slots with ballot (round, node_id)."""
        self.ballot = (round_number, str(self.node_id))
        self._preparing = True
        self._promises = []
        for peer in self.cluster.node_ids:
            self.send(peer, MPPrepare(self.ballot))

    def handle_MPPrepare(self, src: Hashable, msg: MPPrepare) -> None:
        # Re-promising an equal ballot keeps the handler idempotent
        # under message duplication (a nack here would depose the
        # leader with its own duplicated prepare).
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.send(src, MPPromise(msg.ballot, dict(self.accepted)))
        else:
            self.send(src, MPNack(msg.ballot, self.promised))

    def handle_MPPromise(self, src: Hashable, msg: MPPromise) -> None:
        if not self._preparing or msg.ballot != self.ballot:
            return
        if any(existing_src == src for existing_src, _m in self._promises):
            return  # duplicate delivery
        self._promises.append((src, msg))
        if len(self._promises) < self.cluster.majority:
            return
        self._preparing = False
        self.is_leader = True
        # Adopt the highest-ballot accepted command per slot and
        # re-propose it, so no chosen command is ever lost.
        by_slot: dict[int, tuple[Ballot, Any]] = {}
        for _src, promise in self._promises:
            for slot, (ballot, command) in promise.accepted.items():
                if slot not in by_slot or ballot > by_slot[slot][0]:
                    by_slot[slot] = (ballot, command)
        max_slot = max(by_slot, default=-1)
        for slot in range(max_slot + 1):
            _b, command = by_slot.get(slot, (NO_BALLOT, Noop()))
            self._propose_in_slot(slot, command)
        self.next_slot = max(self.next_slot, max_slot + 1)
        self.cluster._on_leader_elected(self)

    def handle_MPNack(self, src: Hashable, msg: MPNack) -> None:
        if msg.ballot != self.ballot:
            return
        self._preparing = False
        self.is_leader = False

    # ------------------------------------------------------------------
    # Log replication (phase 2)
    # ------------------------------------------------------------------
    def _propose_in_slot(self, slot: int, command: Any) -> None:
        self._accept_votes.setdefault(slot, set())
        self._proposals[slot] = command
        for peer in self.cluster.node_ids:
            self.send(peer, MPAccept(self.ballot, slot, command))

    def handle_MPAccept(self, src: Hashable, msg: MPAccept) -> None:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.accepted[msg.slot] = (msg.ballot, msg.command)
            self.send(src, MPAccepted(msg.ballot, msg.slot))

    def handle_MPAccepted(self, src: Hashable, msg: MPAccepted) -> None:
        if not self.is_leader or msg.ballot != self.ballot:
            return
        if msg.slot in self.committed:
            return
        votes = self._accept_votes.setdefault(msg.slot, set())
        votes.add(src)  # set semantics: duplicates don't double-count
        if len(votes) >= self.cluster.majority:
            command = self._proposals[msg.slot]
            self._commit(msg.slot, command)
            for peer in self.cluster.node_ids:
                if peer != self.node_id:
                    self.send(peer, MPCommit(msg.slot, command))

    def handle_MPCommit(self, src: Hashable, msg: MPCommit) -> None:
        self._commit(msg.slot, msg.command)
        # A gap below this commit means we missed earlier commits
        # (crash, partition): learn them from the sender.
        if self.applied_through < msg.slot and not self._catching_up:
            self._catching_up = True
            self.send(src, CatchupRequest(self.applied_through + 1))

    def handle_CatchupRequest(self, src: Hashable, msg: CatchupRequest) -> None:
        slots = {
            slot: command
            for slot, command in self.committed.items()
            if slot >= msg.from_slot
        }
        self.send(src, CatchupReply(slots))

    def handle_CatchupReply(self, src: Hashable, msg: CatchupReply) -> None:
        self._catching_up = False
        for slot, command in sorted(msg.committed.items()):
            self._commit(slot, command)

    def _commit(self, slot: int, command: Any) -> None:
        if slot not in self.committed:
            self.committed[slot] = command
        self._apply_ready()

    def _apply_ready(self) -> None:
        while self.applied_through + 1 in self.committed:
            slot = self.applied_through + 1
            command = self.committed[slot]
            result = self._apply(command)
            self.applied_through = slot
            future = self._slot_futures.pop(slot, None)
            if future is not None and not future.done:
                future.resolve(result)

    def _apply(self, command: Any) -> Any:
        if isinstance(command, PutCmd):
            version = self._versions.get(command.key, 0) + 1
            self._versions[command.key] = version
            self.store[command.key] = (command.value, version)
            return version
        if isinstance(command, GetCmd):
            return self.store.get(command.key, (None, 0))
        return None  # Noop

    # ------------------------------------------------------------------
    # Client-facing
    # ------------------------------------------------------------------
    def serve_SubmitCmd(self, src: Hashable, payload: SubmitCmd):
        if not self.is_leader:
            raise NotLeaderError(f"{self.node_id!r} is not the leader")
        slot = self.next_slot
        self.next_slot += 1
        future = Future(self.sim, label=f"slot#{slot}")
        self._slot_futures[slot] = future
        self._propose_in_slot(slot, payload.command)
        return future

    def serve_LocalRead(self, src: Hashable, payload: LocalRead):
        return self.store.get(payload.key, (None, 0))

    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        # promised/accepted/committed persist (durable); leadership and
        # in-flight client futures do not.
        self.is_leader = False
        self._preparing = False
        self._catching_up = False
        self._accept_votes.clear()
        self._proposals.clear()
        self._slot_futures.clear()

    def snapshot(self) -> dict:
        return {key: value for key, (value, _version) in self.store.items()}


class PaxosClient(ClientNode):
    """Client handle with history recording."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "MultiPaxosCluster",
        session: Hashable,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.session = session

    def _recorded(
        self, kind: str, key: Hashable, target: Hashable, inner: Future,
        extract,
    ) -> Future:
        recorder = self.cluster.recorder
        handle = recorder.begin(kind, key, self.session, target)
        outer = Future(self.sim)

        def done(future: Future) -> None:
            if future.error is not None:
                recorder.fail(handle)
                outer.fail(future.error)
            else:
                version, value = extract(future.value)
                recorder.complete(handle, version, value)
                outer.resolve(future.value)

        inner.add_callback(done)
        return outer

    def put(
        self, key: Hashable, value: Any, timeout: float | None = None
    ) -> Future:
        """Replicated write; resolves with the new version."""
        # Commands must go through the leader; a retried submit dedups
        # there so a slow commit is not proposed twice.
        leader = self.cluster.leader.node_id
        inner = self.call(leader, SubmitCmd(PutCmd(key, value)), timeout,
                          idempotent=True)
        return self._recorded(
            "write", key, leader, inner, lambda v: (v, value)
        )

    def get(self, key: Hashable, timeout: float | None = None) -> Future:
        """Linearizable read through the log; resolves (value, version)."""
        leader = self.cluster.leader.node_id
        inner = self.call(leader, SubmitCmd(GetCmd(key)), timeout)
        return self._recorded(
            "read", key, leader, inner, lambda v: (v[1], v[0])
        )

    def local_get(
        self,
        key: Hashable,
        replica: "PaxosReplica | None" = None,
        timeout: float | None = None,
    ) -> Future:
        """Possibly stale read from one replica's state machine."""
        target = (replica or self.cluster.leader).node_id
        endpoints = [target] + [
            node for node in self.cluster.node_ids if node != target
        ]
        inner = self.call(endpoints, LocalRead(key), timeout)
        return self._recorded(
            "read", key, target, inner, lambda v: (v[1], v[0])
        )


class MultiPaxosCluster:
    """A Multi-Paxos group replicating a KV state machine."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
    ) -> None:
        if nodes < 1:
            raise ValueError("need at least one replica")
        ids = node_ids or [f"px{i}" for i in range(nodes)]
        self.sim = sim
        self.network = network
        self.node_ids = list(ids)
        self.replicas = [PaxosReplica(sim, network, i, self) for i in ids]
        self.recorder = HistoryRecorder(sim)
        self._clients = 0
        self._leader: PaxosReplica | None = None
        self._round = 0

    @property
    def majority(self) -> int:
        return len(self.replicas) // 2 + 1

    @property
    def leader(self) -> PaxosReplica:
        if self._leader is None or self._leader.crashed or not self._leader.is_leader:
            raise NotLeaderError("no active leader; call elect() first")
        return self._leader

    def elect(self, replica: "PaxosReplica | None" = None) -> None:
        """Start phase 1 at ``replica`` (default: first alive node).
        Run the simulator to let the election finish."""
        candidate = replica or next(r for r in self.replicas if not r.crashed)
        self._round += 1
        candidate.start_leadership(self._round)

    def _on_leader_elected(self, replica: PaxosReplica) -> None:
        for other in self.replicas:
            if other is not replica:
                other.is_leader = False
        self._leader = replica

    def connect(
        self, session: Hashable | None = None, client_id: Hashable | None = None
    ) -> PaxosClient:
        self._clients += 1
        session = session if session is not None else f"session-{self._clients}"
        client_id = client_id if client_id is not None else f"pxclient-{self._clients}"
        return PaxosClient(self.sim, self.network, client_id, self, session)

    def snapshots(self) -> list[dict]:
        return [replica.snapshot() for replica in self.replicas]

    def catch_up(self) -> None:
        """Instantaneous log repair: union every replica's committed
        slots (crashed replicas included — the commit log is durable)
        and feed the union to each live replica via ``_commit``, which
        applies the contiguous prefix.  Slots never committed anywhere
        stay gaps and stall application identically on every replica,
        so replicas still agree after the sweep."""
        union: dict[int, Any] = {}
        for replica in self.replicas:
            union.update(replica.committed)
        for replica in self.replicas:
            if replica.crashed:
                continue
            for slot in sorted(union):
                if slot not in replica.committed:
                    replica._commit(slot, union[slot])
            replica._apply_ready()
