"""Bayou-style tentative/committed replication (Terry et al.).

The system the session-guarantee work came from, and the tutorial's
example of *application-visible* eventual consistency: every replica
accepts writes immediately as **tentative**, orders them by timestamp,
and exposes two views — the stable **committed** prefix (ordered by
the primary's commit sequence numbers) and the full tentative view
(committed prefix + tentative suffix, which may *reorder* as earlier-
timestamped writes arrive).  Anti-entropy floods writes between
replicas; the primary commits writes in the order it learns them;
replicas roll back their tentative suffix and replay on every change.

What the model preserves from the paper:

* immediate local writes, two read views,
* rollback-and-replay (implemented as recompute-from-logs, which is
  semantically identical and fine at simulator scale),
* commit stability: a replica's committed prefix only ever grows,
* convergence of both views once anti-entropy quiesces.

Omitted: Bayou's per-write merge procedures and dependency checks
(application-level conflict handlers); writes here are plain
last-in-order assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..clocks import LamportClock, LamportStamp
from ..sim import Network, Node, Simulator


@dataclass(frozen=True)
class BayouWrite:
    """One write: globally unique by (stamp), totally ordered by it."""

    stamp: LamportStamp          # tentative order
    key: Hashable
    value: Any


@dataclass
class WriteSet:
    """Anti-entropy payload: writes + commit assignments."""

    writes: tuple                 # tuple[BayouWrite]
    commits: tuple                # tuple[(csn, stamp)]
    reply_expected: bool


class BayouReplica(Node):
    """One Bayou server.  ``is_primary`` replicas assign CSNs."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "BayouCluster",
        is_primary: bool = False,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.is_primary = is_primary
        self.clock = LamportClock(node_id)
        self._writes: dict[LamportStamp, BayouWrite] = {}
        self._commits: dict[LamportStamp, int] = {}     # stamp -> CSN
        self._next_csn = 0                              # primary only
        self._c_rollbacks = sim.metrics.counter(f"bayou.{node_id}.rollbacks")
        self._c_commits = sim.metrics.counter("bayou.commits")
        if cluster.interval is not None:
            self.every(cluster.interval, self.anti_entropy_once, jitter=0.5)

    @property
    def rollbacks(self) -> int:
        return self._c_rollbacks.value

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def write(self, key: Hashable, value: Any) -> BayouWrite:
        """Accept a write tentatively, effective locally right now."""
        stamp = self.clock.tick()
        record = BayouWrite(stamp, key, value)
        self._accept(record)
        return record

    def read_tentative(self, key: Hashable) -> Any:
        """Committed prefix + tentative suffix (may still reorder)."""
        return self._replay(self._full_order()).get(key)

    def read_committed(self, key: Hashable) -> Any:
        """Only the stable committed prefix."""
        return self._replay(self._committed_order()).get(key)

    def tentative_count(self) -> int:
        return len(self._writes) - len(self._commits)

    # ------------------------------------------------------------------
    # Ordering and replay
    # ------------------------------------------------------------------
    def _committed_order(self) -> list[BayouWrite]:
        by_csn = sorted(
            (csn, stamp) for stamp, csn in self._commits.items()
        )
        return [self._writes[stamp] for _csn, stamp in by_csn]

    def _full_order(self) -> list[BayouWrite]:
        committed = self._committed_order()
        tentative = sorted(
            (
                record
                for stamp, record in self._writes.items()
                if stamp not in self._commits
            ),
            key=lambda record: record.stamp,
        )
        return committed + tentative

    @staticmethod
    def _replay(order: list[BayouWrite]) -> dict:
        state: dict = {}
        for record in order:
            state[record.key] = record.value
        return state

    # ------------------------------------------------------------------
    # Write propagation
    # ------------------------------------------------------------------
    def _accept(self, record: BayouWrite) -> bool:
        if record.stamp in self._writes:
            return False
        # An insertion that is not at the tail of the tentative order
        # forces a (logical) rollback + replay.
        tentative = [
            s for s in self._writes if s not in self._commits
        ]
        if any(record.stamp < stamp for stamp in tentative):
            self._c_rollbacks.inc()
            self.sim.annotate("bayou_rollback", node=self.node_id,
                              key=record.key)
        self._writes[record.stamp] = record
        self.clock.observe(record.stamp)
        if self.is_primary:
            self._commit_known()
        return True

    def _commit_known(self) -> None:
        """Primary: commit every known write, in tentative order among
        the not-yet-committed (Bayou commits in arrival/stamp order)."""
        uncommitted = sorted(
            stamp for stamp in self._writes if stamp not in self._commits
        )
        for stamp in uncommitted:
            self._commits[stamp] = self._next_csn
            self._next_csn += 1
            self._c_commits.inc()

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def anti_entropy_once(self) -> None:
        peers = [n for n in self.cluster.node_ids if n != self.node_id]
        if not peers:
            return
        peer = peers[self.sim.rng.randrange(len(peers))]
        self.send(peer, self._write_set(reply_expected=True))

    def _write_set(self, reply_expected: bool) -> WriteSet:
        return WriteSet(
            writes=tuple(self._writes.values()),
            commits=tuple(
                (csn, stamp) for stamp, csn in self._commits.items()
            ),
            reply_expected=reply_expected,
        )

    def handle_WriteSet(self, src: Hashable, msg: WriteSet) -> None:
        for record in msg.writes:
            self._accept(record)
        for csn, stamp in msg.commits:
            if stamp not in self._commits and stamp in self._writes:
                self._commits[stamp] = csn
        if msg.reply_expected:
            self.send(src, self._write_set(reply_expected=False))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return self._replay(self._full_order())

    def committed_snapshot(self) -> dict:
        return self._replay(self._committed_order())

    def committed_stamps(self) -> list[LamportStamp]:
        """CSN-ordered stamps — for prefix-stability checks."""
        return [record.stamp for record in self._committed_order()]


class BayouCluster:
    """N Bayou replicas, one of them the commit primary."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 4,
        interval: float | None = 25.0,
        primary_index: int = 0,
        node_ids: list[Hashable] | None = None,
    ) -> None:
        if nodes < 1:
            raise ValueError("need at least one replica")
        ids = node_ids or [f"by{i}" for i in range(nodes)]
        self.sim = sim
        self.network = network
        self.interval = interval
        self.node_ids = list(ids)
        self.replicas = [
            BayouReplica(sim, network, node_id, self,
                         is_primary=(index == primary_index))
            for index, node_id in enumerate(ids)
        ]

    @property
    def primary(self) -> BayouReplica:
        return next(r for r in self.replicas if r.is_primary)

    def replica(self, index: int) -> BayouReplica:
        return self.replicas[index]

    def converged(self) -> bool:
        snapshots = [r.snapshot() for r in self.replicas]
        committed = [r.committed_snapshot() for r in self.replicas]
        return all(s == snapshots[0] for s in snapshots) and all(
            c == committed[0] for c in committed
        )

    def run_until_converged(
        self, poll: float = 10.0, deadline: float = 120_000.0
    ) -> float:
        from ..errors import TimeoutError as ReproTimeoutError

        limit = self.sim.now + deadline
        while self.sim.now < limit:
            if self.converged():
                return self.sim.now
            self.sim.run(until=self.sim.now + poll)
        raise ReproTimeoutError(f"not converged within {deadline}ms")
