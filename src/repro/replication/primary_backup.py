"""Primary–backup (master–slave) replication.

The oldest point in the tutorial's design space: one primary orders
all writes and ships them to backups.  The knobs:

* ``mode`` — when the primary acknowledges a write:
  - ``"async"``  : after applying locally (backups catch up later;
    backup reads can be stale, failover can lose acked writes),
  - ``"sync"``   : after *every* backup acked (strong, slow, fragile
    under partition),
  - ``"quorum"`` : after a majority acked (strong-ish, partition
    tolerant — the Cloud SQL Server configuration).
* where clients read — the primary (linearizable while a single
  primary exists) or any backup (fast, possibly stale).

Versions are dense per-key integers assigned by the primary — exactly
what the history checkers consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..errors import NotLeaderError, UnavailableError
from ..histories import HistoryRecorder
from ..sim import Future, Network, Simulator
from .common import ClientNode, ServerNode

VALID_MODES = ("async", "sync", "quorum")


@dataclass
class PutPayload:
    key: Hashable
    value: Any


@dataclass
class GetPayload:
    key: Hashable


@dataclass
class ReplicateMsg:
    key: Hashable
    value: Any
    version: int
    write_id: int


@dataclass
class ReplicateAck:
    write_id: int


class PBReplica(ServerNode):
    """One primary/backup storage node."""

    def __init__(
        self, sim: Simulator, network: Network, node_id: Hashable, cluster:
        "PrimaryBackupCluster"
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.is_primary = False
        self.data: dict[Hashable, tuple[Any, int]] = {}
        self._versions: dict[Hashable, int] = {}
        self._write_ids = 0
        self._pending: dict[int, tuple[Future, int, int]] = {}  # id -> (future, version, acks_left)

    # -- storage ---------------------------------------------------------
    def apply(self, key: Hashable, value: Any, version: int) -> None:
        current = self.data.get(key)
        if current is None or version > current[1]:
            self.data[key] = (value, version)

    def read(self, key: Hashable) -> tuple[Any, int]:
        return self.data.get(key, (None, 0))

    def snapshot(self) -> dict:
        return {key: value for key, (value, _version) in self.data.items()}

    # -- client-facing ------------------------------------------------------
    def serve_GetPayload(self, src: Hashable, payload: GetPayload):
        return self.read(payload.key)

    def serve_PutPayload(self, src: Hashable, payload: PutPayload):
        if not self.is_primary:
            raise NotLeaderError(
                f"{self.node_id!r} is a backup; writes go to the primary"
            )
        version = self._versions.get(payload.key, 0) + 1
        self._versions[payload.key] = version
        self.apply(payload.key, payload.value, version)
        backups = [r for r in self.cluster.replicas if r is not self]
        acks_needed = self.cluster.acks_needed(len(backups))
        self._write_ids += 1
        write_id = self._write_ids
        msg = ReplicateMsg(payload.key, payload.value, version, write_id)
        for backup in backups:
            self.send(backup.node_id, msg)
        if acks_needed == 0:
            return version
        future = Future(self.sim, label=f"pb-write#{write_id}")
        self._pending[write_id] = (future, version, acks_needed)
        return future

    # -- replication ----------------------------------------------------
    def handle_ReplicateMsg(self, src: Hashable, msg: ReplicateMsg) -> None:
        self.apply(msg.key, msg.value, msg.version)
        self._versions[msg.key] = max(
            self._versions.get(msg.key, 0), msg.version
        )
        self.send(src, ReplicateAck(msg.write_id))

    def handle_ReplicateAck(self, src: Hashable, msg: ReplicateAck) -> None:
        entry = self._pending.get(msg.write_id)
        if entry is None:
            return
        future, version, acks_left = entry
        acks_left -= 1
        if acks_left <= 0:
            del self._pending[msg.write_id]
            future.resolve(version)
        else:
            self._pending[msg.write_id] = (future, version, acks_left)

    def on_crash(self) -> None:
        # In-flight writes never ack; clients time out.
        self._pending.clear()


class PBClient(ClientNode):
    """Client handle bound to one session, recording history."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "PrimaryBackupCluster",
        session: Hashable,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.session = session

    def put(
        self, key: Hashable, value: Any, timeout: float | None = None
    ) -> Future:
        """Write through the primary; resolves with the new version."""
        recorder = self.cluster.recorder
        primary = self.cluster.primary
        handle = recorder.begin("write", key, self.session, primary.node_id)
        # Writes only the primary can accept: no failover endpoints,
        # but retried writes dedup at the primary.
        inner = self.call(primary.node_id, PutPayload(key, value), timeout,
                          idempotent=True)
        outer = Future(self.sim, label=f"put({key!r})")

        def done(future: Future) -> None:
            if future.error is not None:
                recorder.fail(handle)
                outer.fail(future.error)
            else:
                recorder.complete(handle, future.value)
                outer.resolve(future.value)

        inner.add_callback(done)
        return outer

    def get(
        self,
        key: Hashable,
        replica: "PBReplica | None" = None,
        timeout: float | None = None,
    ) -> Future:
        """Read from ``replica`` (default primary); resolves with
        ``(value, version)``."""
        target = replica or self.cluster.primary
        recorder = self.cluster.recorder
        handle = recorder.begin("read", key, self.session, target.node_id)
        # Reads fail over across the replica set (trading freshness
        # for availability, the EC bargain); writes do not.
        endpoints = [target.node_id] + [
            r.node_id for r in self.cluster.replicas if r is not target
        ]
        inner = self.call(endpoints, GetPayload(key), timeout)
        outer = Future(self.sim, label=f"get({key!r})")

        def done(future: Future) -> None:
            if future.error is not None:
                recorder.fail(handle)
                outer.fail(future.error)
            else:
                value, version = future.value
                recorder.complete(handle, version, value)
                outer.resolve((value, version))

        inner.add_callback(done)
        return outer


class PrimaryBackupCluster:
    """A primary plus ``n - 1`` backups over a shared network."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        n: int = 3,
        mode: str = "async",
        node_ids: list[Hashable] | None = None,
    ) -> None:
        if mode not in VALID_MODES:
            raise ValueError(f"mode must be one of {VALID_MODES}")
        if n < 1:
            raise ValueError("need at least one replica")
        ids = node_ids or [f"pb{i}" for i in range(n)]
        if len(ids) != n:
            raise ValueError("node_ids length must equal n")
        self.sim = sim
        self.network = network
        self.mode = mode
        self.replicas = [PBReplica(sim, network, node_id, self) for node_id in ids]
        self.replicas[0].is_primary = True
        self.recorder = HistoryRecorder(sim)
        self._clients = 0

    @property
    def primary(self) -> PBReplica:
        for replica in self.replicas:
            if replica.is_primary:
                return replica
        raise UnavailableError("no primary")

    @property
    def backups(self) -> list[PBReplica]:
        return [r for r in self.replicas if not r.is_primary]

    def acks_needed(self, backup_count: int) -> int:
        if self.mode == "async" or backup_count == 0:
            return 0
        if self.mode == "sync":
            return backup_count
        return (backup_count + 1) // 2  # majority of all replicas incl. self

    def connect(
        self, session: Hashable | None = None, client_id: Hashable | None = None
    ) -> PBClient:
        """Attach a new client node (one session) to the network."""
        self._clients += 1
        session = session if session is not None else f"session-{self._clients}"
        client_id = client_id if client_id is not None else f"client-{self._clients}"
        return PBClient(self.sim, self.network, client_id, self, session)

    def promote(self, replica: PBReplica) -> None:
        """Manual failover.  With ``async`` mode this can lose acked
        writes — deliberately reproducible (discussed in E1/E12)."""
        if replica not in self.replicas:
            raise ValueError("unknown replica")
        for r in self.replicas:
            r.is_primary = False
        replica.is_primary = True

    def snapshots(self) -> list[dict]:
        return [replica.snapshot() for replica in self.replicas]

    def anti_entropy_sweep(self) -> None:
        """Instantaneous catch-up between live replicas: flood every
        record through the version-guarded ``apply`` path so the
        per-key max version wins everywhere.  Replication ships each
        write once — a ``ReplicateMsg`` dropped by a partition is
        never re-sent, so the chaos runner calls this after healing."""
        for source in self.replicas:
            if source.crashed:
                continue
            for key, (value, version) in list(source.data.items()):
                for target in self.replicas:
                    if target is not source and not target.crashed:
                        target.apply(key, value, version)
                        target._versions[key] = max(
                            target._versions.get(key, 0), version
                        )
