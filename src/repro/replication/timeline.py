"""PNUTS-style per-record timeline consistency.

Yahoo!'s PNUTS point in the design space: every *record* has a master
replica; all writes to the record funnel through its master, which
assigns a per-record sequence number and propagates asynchronously.
Replicas may lag, but every replica moves along the *same* version
timeline — no forks, no siblings.  Clients choose per read:

* ``read_any``      — any replica, possibly stale, never off-timeline,
* ``read_critical`` — any replica that has reached a required version
  (waits for propagation; serves session guarantees),
* ``read_latest``   — the record's master (up-to-date),

plus ``write`` (forwarded to the record's master).  E12 measures the
stale-read fraction vs. propagation lag, and that timeline order makes
monotonic-reads violations impossible once ``read_critical`` carries
the session's floor version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..errors import UnavailableError
from ..histories import HistoryRecorder
from ..sim import Future, Network, Simulator
from .common import ClientNode, ServerNode
from .ring import HashRing


@dataclass
class TWrite:
    key: Hashable
    value: Any


@dataclass
class TReadAny:
    key: Hashable


@dataclass
class TReadCritical:
    key: Hashable
    min_version: int


@dataclass
class PropagateMsg:
    key: Hashable
    value: Any
    version: int


class TimelineReplica(ServerNode):
    """Holds every record; masters the records the ring assigns it."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "TimelineCluster",
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.data: dict[Hashable, tuple[Any, int]] = {}
        self._waiters: dict[Hashable, list[tuple[int, Future]]] = {}

    # -- mastering ---------------------------------------------------------
    def is_master_of(self, key: Hashable) -> bool:
        return self.cluster.master_of(key) == self.node_id

    def serve_TWrite(self, src: Hashable, payload: TWrite):
        if not self.is_master_of(payload.key):
            # Forward to the record master and relay its answer.
            return self._forwarded_write(payload)
        value, version = self.data.get(payload.key, (None, 0))
        version += 1
        self._install(payload.key, payload.value, version)
        delay = self.cluster.propagation_delay
        message = PropagateMsg(payload.key, payload.value, version)
        for peer in self.cluster.node_ids:
            if peer != self.node_id:
                if delay > 0:
                    self.set_timer(
                        delay * self.sim.rng.uniform(0.5, 1.5),
                        self.send,
                        peer,
                        message,
                    )
                else:
                    self.send(peer, message)
        return version

    def _forwarded_write(self, payload: TWrite) -> Future:
        master = self.cluster.master_of(payload.key)
        future = Future(self.sim, label=f"fwd-write({payload.key!r})")
        proxy = self.cluster._forwarder
        proxy.request(master, payload).add_callback(
            lambda inner: (
                future.fail(inner.error)
                if inner.error is not None
                else future.resolve(inner.value)
            )
        )
        return future

    # -- reads ------------------------------------------------------------
    def serve_TReadAny(self, src: Hashable, payload: TReadAny):
        return self.data.get(payload.key, (None, 0))

    def serve_TReadCritical(self, src: Hashable, payload: TReadCritical):
        value, version = self.data.get(payload.key, (None, 0))
        if version >= payload.min_version:
            return (value, version)
        future = Future(self.sim, label=f"critical({payload.key!r})")
        self._waiters.setdefault(payload.key, []).append(
            (payload.min_version, future)
        )
        return future

    # -- propagation ---------------------------------------------------------
    def handle_PropagateMsg(self, src: Hashable, msg: PropagateMsg) -> None:
        self._install(msg.key, msg.value, msg.version)

    def _install(self, key: Hashable, value: Any, version: int) -> None:
        current = self.data.get(key)
        if current is None or version > current[1]:
            self.data[key] = (value, version)
        stored_value, stored_version = self.data[key]
        waiters = self._waiters.get(key)
        if not waiters:
            return
        still_waiting = []
        for min_version, future in waiters:
            if stored_version >= min_version:
                future.try_resolve((stored_value, stored_version))
            else:
                still_waiting.append((min_version, future))
        if still_waiting:
            self._waiters[key] = still_waiting
        else:
            del self._waiters[key]

    def snapshot(self) -> dict:
        return {key: value for key, (value, _version) in self.data.items()}


class TimelineClient(ClientNode):
    """Client with per-session read floors (for critical reads)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "TimelineCluster",
        session: Hashable,
        home: Hashable | None = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.session = session
        self.home = home  # preferred replica for reads (nearest site)
        self.floors: dict[Hashable, int] = {}  # key -> min acceptable version

    def _reader(self, key: Hashable) -> Hashable:
        if self.home is not None:
            return self.home
        nodes = self.cluster.node_ids
        return nodes[self.sim.rng.randrange(len(nodes))]

    def _read_endpoints(self, target: Hashable) -> list:
        """Failover order for any/critical reads: the preferred replica,
        then the rest — every replica serves timeline reads (critical
        reads block at the floor wherever they land).  ``read_latest``
        is pinned to the master and does not fail over."""
        return [target] + [
            node for node in self.cluster.node_ids if node != target
        ]

    def _recorded(self, kind, key, target, inner, extract):
        recorder = self.cluster.recorder
        handle = recorder.begin(kind, key, self.session, target)
        outer = Future(self.sim)

        def done(future: Future) -> None:
            if future.error is not None:
                recorder.fail(handle)
                outer.fail(future.error)
            else:
                version, value = extract(future.value)
                recorder.complete(handle, version, value)
                outer.resolve(future.value)

        inner.add_callback(done)
        return outer

    def write(self, key: Hashable, value: Any, timeout: float | None = None) -> Future:
        """Resolves with the new version (master-assigned seqno)."""
        master = self.cluster.master_of(key)
        # Writes are mastered: there is no useful failover target (a
        # non-master would only forward back to the same master), but
        # retries still dedup server-side via the idempotency key.
        inner = self.call(master, TWrite(key, value), timeout,
                          idempotent=True)
        outer = self._recorded("write", key, master, inner, lambda v: (v, value))

        def bump_floor(future: Future) -> None:
            if future.error is None:
                self.floors[key] = max(self.floors.get(key, 0), future.value)

        outer.add_callback(bump_floor)
        return outer

    def read_any(self, key: Hashable, timeout: float | None = None) -> Future:
        """Fast read from the home replica; may be stale."""
        target = self._reader(key)
        inner = self.call(self._read_endpoints(target), TReadAny(key), timeout)
        return self._recorded("read", key, target, inner, lambda v: (v[1], v[0]))

    def read_critical(
        self, key: Hashable, min_version: int | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Read at least the session's floor version (or an explicit
        one); blocks until propagation catches up."""
        floor = (
            min_version
            if min_version is not None
            else self.floors.get(key, 0)
        )
        target = self._reader(key)
        inner = self.call(self._read_endpoints(target),
                          TReadCritical(key, floor), timeout)
        outer = self._recorded("read", key, target, inner, lambda v: (v[1], v[0]))

        def bump_floor(future: Future) -> None:
            if future.error is None:
                self.floors[key] = max(self.floors.get(key, 0), future.value[1])

        outer.add_callback(bump_floor)
        return outer

    def read_latest(self, key: Hashable, timeout: float | None = None) -> Future:
        """Read from the record master (up-to-date)."""
        master = self.cluster.master_of(key)
        inner = self.call(master, TReadAny(key), timeout)
        return self._recorded("read", key, master, inner, lambda v: (v[1], v[0]))


class TimelineCluster:
    """Replicas with ring-assigned per-record mastership."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        propagation_delay: float = 0.0,
        node_ids: list[Hashable] | None = None,
    ) -> None:
        ids = node_ids or [f"tl{i}" for i in range(nodes)]
        self.sim = sim
        self.network = network
        self.node_ids = list(ids)
        self.propagation_delay = propagation_delay
        self.ring = HashRing(ids, vnodes=16)
        self.replicas = [TimelineReplica(sim, network, i, self) for i in ids]
        self.recorder = HistoryRecorder(sim)
        self._clients = 0
        self._masters: dict[Hashable, Hashable] = {}
        # Internal client node used for write forwarding between replicas.
        self._forwarder = ClientNode(sim, network, f"{ids[0]}-fwd")

    def master_of(self, key: Hashable) -> Hashable:
        master = self._masters.get(key)
        if master is None:
            master = self.ring.coordinator(key)
            self._masters[key] = master
        return master

    def set_master(self, key: Hashable, node_id: Hashable) -> None:
        """Mastership migration (PNUTS moves masters to write locality)."""
        if node_id not in self.node_ids:
            raise UnavailableError(f"unknown node {node_id!r}")
        self._masters[key] = node_id

    def replica(self, node_id: Hashable) -> TimelineReplica:
        for replica in self.replicas:
            if replica.node_id == node_id:
                return replica
        raise KeyError(node_id)

    def connect(
        self,
        session: Hashable | None = None,
        client_id: Hashable | None = None,
        home: Hashable | None = None,
    ) -> TimelineClient:
        self._clients += 1
        session = session if session is not None else f"session-{self._clients}"
        client_id = client_id if client_id is not None else f"tlclient-{self._clients}"
        return TimelineClient(self.sim, self.network, client_id, self, session, home)

    def snapshots(self) -> list[dict]:
        return [replica.snapshot() for replica in self.replicas]

    def anti_entropy_sweep(self) -> None:
        """Instantaneous state exchange between live replicas: every
        record flows to every replica through the version-guarded
        install path, so the per-key max version wins everywhere.
        Timeline propagation sends each write once — a propagation
        dropped by a partition never re-sends, so the chaos runner
        calls this after healing to quiesce."""
        for source in self.replicas:
            if source.crashed:
                continue
            for key, (value, version) in list(source.data.items()):
                for target in self.replicas:
                    if target is not source and not target.crashed:
                        target._install(key, value, version)
