"""Chain replication (van Renesse & Schneider).

The strong-consistency alternative to primary–backup the tutorial's
mechanism survey includes: replicas form a chain; writes enter at the
**head**, flow down, and are acknowledged by the **tail**; reads are
served by the tail alone.  Because the tail only exposes writes that
reached *every* replica, reads are linearizable without any quorum —
at the price of write latency proportional to chain length (measured
in the E1 spectrum as the strong-and-cheap-reads point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..errors import NotLeaderError
from ..histories import HistoryRecorder
from ..sim import Future, Network, Simulator
from .common import ClientNode, ServerNode


@dataclass
class CPut:
    key: Hashable
    value: Any


@dataclass
class CGet:
    key: Hashable


@dataclass
class ChainForward:
    write_id: int
    key: Hashable
    value: Any
    version: int


@dataclass
class ChainAck:
    write_id: int


class ChainReplica(ServerNode):
    """One link: knows its successor/predecessor by cluster position."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "ChainCluster",
        index: int,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.index = index
        self.data: dict[Hashable, tuple[Any, int]] = {}
        self._versions: dict[Hashable, int] = {}
        self._pending: dict[int, tuple[Future, int]] = {}
        self._write_ids = 0

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == len(self.cluster.replicas) - 1

    @property
    def successor(self) -> "ChainReplica | None":
        if self.is_tail:
            return None
        return self.cluster.replicas[self.index + 1]

    def _install(self, key: Hashable, value: Any, version: int) -> None:
        current = self.data.get(key)
        if current is None or version > current[1]:
            self.data[key] = (value, version)
        self._versions[key] = max(self._versions.get(key, 0), version)

    # -- client-facing -----------------------------------------------------
    def serve_CPut(self, src: Hashable, payload: CPut):
        if not self.is_head:
            raise NotLeaderError("writes must enter at the head")
        version = self._versions.get(payload.key, 0) + 1
        self._install(payload.key, payload.value, version)
        if self.is_tail:  # single-node chain
            return version
        self._write_ids += 1
        write_id = self._write_ids
        future = Future(self.sim, label=f"chain-write#{write_id}")
        self._pending[write_id] = (future, version)
        self.send(
            self.successor.node_id,
            ChainForward(write_id, payload.key, payload.value, version),
        )
        return future

    def serve_CGet(self, src: Hashable, payload: CGet):
        if not self.is_tail:
            raise NotLeaderError("reads are served by the tail")
        return self.data.get(payload.key, (None, 0))

    # -- chain propagation -------------------------------------------------
    def handle_ChainForward(self, src: Hashable, msg: ChainForward) -> None:
        self._install(msg.key, msg.value, msg.version)
        if self.is_tail:
            # Ack flows straight back to the head.
            self.send(self.cluster.replicas[0].node_id, ChainAck(msg.write_id))
        else:
            self.send(self.successor.node_id, msg)

    def handle_ChainAck(self, src: Hashable, msg: ChainAck) -> None:
        entry = self._pending.pop(msg.write_id, None)
        if entry is None:
            return
        future, version = entry
        if not future.done:
            future.resolve(version)

    def snapshot(self) -> dict:
        return {key: value for key, (value, _version) in self.data.items()}


class ChainClient(ClientNode):
    def __init__(self, sim, network, node_id, cluster, session):
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.session = session

    def _recorded(self, kind, key, target, inner, extract):
        recorder = self.cluster.recorder
        handle = recorder.begin(kind, key, self.session, target)
        outer = Future(self.sim)

        def done(future: Future) -> None:
            if future.error is not None:
                recorder.fail(handle)
                outer.fail(future.error)
            else:
                version, value = extract(future.value)
                recorder.complete(handle, version, value)
                outer.resolve(future.value)

        inner.add_callback(done)
        return outer

    def put(self, key: Hashable, value: Any, timeout: float | None = None) -> Future:
        # Chain roles are fixed (writes at head, reads at tail), so
        # there are no failover endpoints — retries re-ask the same
        # node, deduped by the idempotency key.
        head = self.cluster.head.node_id
        inner = self.call(head, CPut(key, value), timeout, idempotent=True)
        return self._recorded("write", key, head, inner, lambda v: (v, value))

    def get(self, key: Hashable, timeout: float | None = None) -> Future:
        tail = self.cluster.tail.node_id
        inner = self.call(tail, CGet(key), timeout)
        return self._recorded("read", key, tail, inner, lambda v: (v[1], v[0]))


class ChainCluster:
    """A static chain of replicas: head = replicas[0], tail = last."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
    ) -> None:
        if nodes < 1:
            raise ValueError("need at least one replica")
        ids = node_ids or [f"ch{i}" for i in range(nodes)]
        self.sim = sim
        self.network = network
        self.replicas = [
            ChainReplica(sim, network, node_id, self, index)
            for index, node_id in enumerate(ids)
        ]
        self.recorder = HistoryRecorder(sim)
        self._clients = 0

    @property
    def head(self) -> ChainReplica:
        return self.replicas[0]

    @property
    def tail(self) -> ChainReplica:
        return self.replicas[-1]

    def connect(self, session=None, client_id=None) -> ChainClient:
        self._clients += 1
        session = session if session is not None else f"session-{self._clients}"
        client_id = client_id if client_id is not None else f"chclient-{self._clients}"
        return ChainClient(self.sim, self.network, client_id, self, session)

    def snapshots(self) -> list[dict]:
        return [replica.snapshot() for replica in self.replicas]

    def anti_entropy_sweep(self) -> None:
        """Instantaneous chain repair between live replicas: flood
        every record through the version-guarded ``_install`` path so
        the per-key max version wins everywhere.  A ``ChainForward``
        dropped by a partition is never re-sent, so the chaos runner
        calls this after healing to restore the chain invariant."""
        for source in self.replicas:
            if source.crashed:
                continue
            for key, (value, version) in list(source.data.items()):
                for target in self.replicas:
                    if target is not source and not target.crashed:
                        target._install(key, value, version)
