"""Dynamo partial quorums in **multi-value (sibling) mode**.

Where :mod:`repro.replication.quorum` arbitrates conflicts with
last-writer-wins, this variant is the design the Dynamo paper actually
shipped for carts: concurrent writes are *kept* as siblings, tracked by
dotted version vectors, and returned together with a causal **context**
the client echoes on its next write — which is how read-modify-write
collapses siblings.

The read path syncs the R replies' sibling sets (a commutative join),
optionally read-repairing stale replicas with the merged set; the
write path mints a new dotted version at the coordinator that
supersedes exactly what the client's context covers.

Use :class:`SiblingDynamoCluster` when the application can merge
(carts, sets); use the LWW cluster when it can't.  The "LWW loses
writes / siblings keep them" ablation is measured in
``benchmarks/test_ablations.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from ..clocks import DottedValueSet, DottedVersion, Dot, VectorClock
from ..errors import QuorumError
from ..sim import Future, Network, Simulator
from .common import ClientNode, ServerNode
from .ring import HashRing


@dataclass
class SibPut:
    """Client → coordinator: write with the client's read context."""

    key: Hashable
    value: Any
    context: dict      # VectorClock entries (plain dict on the wire)


@dataclass
class SibGet:
    key: Hashable


@dataclass
class SibStoreMsg:
    op_id: int
    key: Hashable
    versions: tuple    # tuple[(dot, context-entries, value)]
    clock: dict
    hint_for: Hashable | None = None


@dataclass
class SibStoreAck:
    op_id: int


@dataclass
class SibFetchMsg:
    op_id: int
    key: Hashable


@dataclass
class SibFetchReply:
    op_id: int
    key: Hashable
    versions: tuple
    clock: dict


def _encode(entry: DottedValueSet) -> tuple[tuple, dict]:
    versions = tuple(
        ((v.dot.replica, v.dot.counter), v.context.entries(), v.value)
        for v in entry.versions
    )
    return versions, entry.clock.entries()


def _decode(versions: tuple, clock: dict) -> DottedValueSet:
    decoded = tuple(
        DottedVersion(
            dot=Dot(replica, counter),
            context=VectorClock(context),
            value=value,
        )
        for (replica, counter), context, value in versions
    )
    return DottedValueSet(decoded, VectorClock(clock))


@dataclass
class _Op:
    kind: str
    key: Hashable
    future: Future
    needed: int
    targets: set
    payload_versions: tuple = ()
    payload_clock: dict = field(default_factory=dict)
    acks: int = 0
    replies: list = field(default_factory=list)
    responded: set = field(default_factory=set)


class SiblingDynamoNode(ServerNode):
    """Storage node holding dotted sibling sets per key."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "SiblingDynamoCluster",
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.data: dict[Hashable, DottedValueSet] = {}
        self.hints: dict[Hashable, dict[Hashable, DottedValueSet]] = {}
        self._ops: dict[int, _Op] = {}
        self._op_ids = 0
        if cluster.hint_interval is not None:
            self.every(cluster.hint_interval, self._push_hints, jitter=0.3)

    # -- local storage ----------------------------------------------------
    def entry(self, key: Hashable) -> DottedValueSet:
        return self.data.get(key, DottedValueSet())

    def merge_entry(self, key: Hashable, remote: DottedValueSet) -> None:
        self.data[key] = self.entry(key).sync(remote)

    def snapshot(self) -> dict:
        return {
            key: tuple(sorted(entry.values(), key=repr))
            for key, entry in self.data.items()
            if not entry.is_empty()
        }

    # -- coordination -----------------------------------------------------
    def _next_op(self) -> int:
        self._op_ids += 1
        return self._op_ids

    def serve_SibPut(self, src: Hashable, payload: SibPut) -> Future:
        # The coordinator applies the write against its FULL local
        # sibling set — not a detached delta — so the new dot is
        # contiguous with this node's causal history.  (Minting dots
        # from a bare counter would produce a clock that falsely
        # "covers" this node's earlier dots and silently drop
        # never-seen siblings.)  The resulting whole set is what
        # replicates; sync makes that safe and idempotent.
        context = VectorClock(payload.context)
        updated = self.entry(payload.key).put(
            self.node_id, payload.value, context
        )
        self.data[payload.key] = updated
        versions, clock = _encode(updated)

        cluster = self.cluster
        targets = cluster.ring.preference_list(payload.key, cluster.n)
        op_id = self._next_op()
        future = Future(self.sim, label=f"sput#{op_id}")
        op = _Op(
            kind="write", key=payload.key, future=future, needed=cluster.w,
            targets=set(targets), payload_versions=versions,
            payload_clock=dict(updated.context().entries()),
        )
        self._ops[op_id] = op
        if self.node_id in op.targets:
            # The coordinator is a home replica and already stored.
            op.responded.add(self.node_id)
            op.acks += 1
        message = SibStoreMsg(op_id, payload.key, versions, clock)
        for target in targets:
            if target != self.node_id:
                self.send(target, message)
        if op.acks >= op.needed:
            future.resolve(dict(op.payload_clock))
            cluster._c_writes_succeeded.inc()
            return future
        self.set_timer(cluster.replica_timeout, self._write_fallback, op_id)
        self.set_timer(cluster.op_deadline, self._expire, op_id)
        return future

    def serve_SibGet(self, src: Hashable, payload: SibGet) -> Future:
        cluster = self.cluster
        targets = cluster.ring.preference_list(payload.key, cluster.n)
        op_id = self._next_op()
        future = Future(self.sim, label=f"sget#{op_id}")
        op = _Op(
            kind="read", key=payload.key, future=future, needed=cluster.r,
            targets=set(targets),
        )
        self._ops[op_id] = op
        for target in targets:
            self.send(target, SibFetchMsg(op_id, payload.key))
        self.set_timer(cluster.op_deadline, self._expire, op_id)
        return future

    # -- replica side -----------------------------------------------------
    def handle_SibStoreMsg(self, src: Hashable, msg: SibStoreMsg) -> None:
        remote = _decode(msg.versions, msg.clock)
        if msg.hint_for is not None and msg.hint_for != self.node_id:
            slot = self.hints.setdefault(msg.hint_for, {})
            slot[msg.key] = slot.get(msg.key, DottedValueSet()).sync(remote)
        else:
            self.merge_entry(msg.key, remote)
        self.send(src, SibStoreAck(msg.op_id))

    def handle_SibFetchMsg(self, src: Hashable, msg: SibFetchMsg) -> None:
        versions, clock = _encode(self.entry(msg.key))
        self.send(src, SibFetchReply(msg.op_id, msg.key, versions, clock))

    # -- ack collection ------------------------------------------------------
    def handle_SibStoreAck(self, src: Hashable, msg: SibStoreAck) -> None:
        op = self._ops.get(msg.op_id)
        if op is None or op.kind != "write" or src in op.responded:
            return
        op.responded.add(src)
        op.acks += 1
        if op.acks >= op.needed and not op.future.done:
            # Reply with the new causal context for chaining writes.
            op.future.resolve(dict(op.payload_clock))
            self.cluster._c_writes_succeeded.inc()

    def handle_SibFetchReply(self, src: Hashable, msg: SibFetchReply) -> None:
        op = self._ops.get(msg.op_id)
        if op is None or op.kind != "read" or src in op.responded:
            return
        op.responded.add(src)
        op.replies.append((src, _decode(msg.versions, msg.clock)))
        if len(op.replies) >= op.needed and not op.future.done:
            merged = DottedValueSet()
            for _src, entry in op.replies:
                merged = merged.sync(entry)
            op.future.resolve(
                (list(merged.values()), merged.context().entries())
            )
            if self.cluster.read_repair:
                self._read_repair(op, merged)

    def _read_repair(self, op: _Op, merged: DottedValueSet) -> None:
        versions, clock = _encode(merged)
        repair_id = self._next_op()
        for src, entry in op.replies:
            if entry.clock != merged.clock or len(entry.versions) != len(
                merged.versions
            ):
                self.send(src, SibStoreMsg(repair_id, op.key, versions, clock))
                self.cluster._c_read_repairs.inc()

    # -- sloppy quorum ------------------------------------------------------
    def _write_fallback(self, op_id: int) -> None:
        op = self._ops.get(op_id)
        if op is None or op.future.done or op.kind != "write":
            return
        if not self.cluster.sloppy:
            return
        missing = op.targets - op.responded
        if not missing:
            return
        stand_ins = self.cluster.ring.fallbacks(op.key, exclude=op.targets)
        for home, stand_in in zip(sorted(missing, key=str), stand_ins):
            self.send(
                stand_in,
                SibStoreMsg(op_id, op.key, op.payload_versions,
                            op.payload_clock, hint_for=home),
            )
            self.cluster._c_hinted_writes.inc()

    def _push_hints(self) -> None:
        for home, entries in list(self.hints.items()):
            if not entries:
                del self.hints[home]
                continue
            for key, entry in list(entries.items()):
                if self.network.reachable(self.node_id, home):
                    versions, clock = _encode(entry)
                    self.send(
                        home, SibStoreMsg(self._next_op(), key, versions, clock)
                    )
                    del entries[key]
                    self.cluster._c_hints_delivered.inc()

    def _expire(self, op_id: int) -> None:
        op = self._ops.pop(op_id, None)
        if op is None or op.future.done:
            return
        got = op.acks if op.kind == "write" else len(op.replies)
        op.future.fail(
            QuorumError(
                f"{op.kind} quorum not met for {op.key!r} ({got}/{op.needed})"
            )
        )


class SiblingDynamoClient(ClientNode):
    """Client tracking per-key causal contexts automatically."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "SiblingDynamoCluster",
        session: Hashable,
        coordinator: Hashable | None = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.session = session
        self.coordinator = coordinator
        self.contexts: dict[Hashable, dict] = {}  # key -> clock entries

    def _coordinator_for(self, key: Hashable) -> Hashable:
        if self.coordinator is not None:
            return self.coordinator
        return self.cluster.ring.coordinator(key)

    def _endpoints(self, coordinator: Hashable) -> list:
        return [coordinator] + [
            node for node in self.cluster.ring.nodes if node != coordinator
        ]

    def put(
        self,
        key: Hashable,
        value: Any,
        context: dict | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Write; supersedes exactly the siblings covered by the
        context (defaults to what this client last read/wrote)."""
        effective = context if context is not None else self.contexts.get(key, {})
        inner = self.call(
            self._endpoints(self._coordinator_for(key)),
            SibPut(key, value, dict(effective)),
            timeout or self.cluster.client_timeout,
            idempotent=True,
        )
        outer = Future(self.sim, label=f"sibput({key!r})")

        def done(future: Future) -> None:
            if future.error is not None:
                outer.fail(future.error)
            else:
                self.contexts[key] = dict(future.value)
                outer.resolve(future.value)

        inner.add_callback(done)
        return outer

    def get(self, key: Hashable, timeout: float | None = None) -> Future:
        """Read; resolves ``(sibling_values, context)``."""
        inner = self.call(
            self._endpoints(self._coordinator_for(key)), SibGet(key),
            timeout or self.cluster.client_timeout,
        )
        outer = Future(self.sim, label=f"sibget({key!r})")

        def done(future: Future) -> None:
            if future.error is not None:
                outer.fail(future.error)
            else:
                values, context = future.value
                self.contexts[key] = dict(context)
                outer.resolve((values, context))

        inner.add_callback(done)
        return outer


class SiblingDynamoCluster:
    """Partial-quorum store with sibling (multi-value) conflicts."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 5,
        n: int = 3,
        r: int = 2,
        w: int = 2,
        sloppy: bool = False,
        read_repair: bool = True,
        vnodes: int = 16,
        replica_timeout: float = 25.0,
        op_deadline: float = 200.0,
        client_timeout: float = 400.0,
        hint_interval: float | None = 50.0,
        node_ids: list[Hashable] | None = None,
    ) -> None:
        if not 1 <= r <= n or not 1 <= w <= n:
            raise ValueError("need 1 <= r,w <= n")
        ids = node_ids or [f"sib{i}" for i in range(nodes)]
        if n > len(ids):
            raise ValueError("replication factor exceeds node count")
        self.sim = sim
        self.network = network
        self.n, self.r, self.w = n, r, w
        self.sloppy = sloppy
        self.read_repair = read_repair
        self.replica_timeout = replica_timeout
        self.op_deadline = op_deadline
        self.client_timeout = client_timeout
        self.hint_interval = hint_interval
        self.ring = HashRing(ids, vnodes=vnodes)
        metrics = sim.metrics
        self._c_read_repairs = metrics.counter("sibling_quorum.read_repairs")
        self._c_hinted_writes = metrics.counter("sibling_quorum.hinted_writes")
        self._c_hints_delivered = metrics.counter(
            "sibling_quorum.hints_delivered")
        self._c_writes_succeeded = metrics.counter(
            "sibling_quorum.writes_succeeded")
        self.nodes = [
            SiblingDynamoNode(sim, network, node_id, self) for node_id in ids
        ]
        self._clients = 0

    @property
    def read_repairs(self) -> int:
        return self._c_read_repairs.value

    @property
    def hinted_writes(self) -> int:
        return self._c_hinted_writes.value

    @property
    def hints_delivered(self) -> int:
        return self._c_hints_delivered.value

    @property
    def writes_succeeded(self) -> int:
        return self._c_writes_succeeded.value

    def node(self, node_id: Hashable) -> SiblingDynamoNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def connect(
        self,
        session: Hashable | None = None,
        client_id: Hashable | None = None,
        coordinator: Hashable | None = None,
    ) -> SiblingDynamoClient:
        self._clients += 1
        session = session if session is not None else f"session-{self._clients}"
        client_id = (
            client_id if client_id is not None else f"sclient-{self._clients}"
        )
        return SiblingDynamoClient(
            self.sim, self.network, client_id, self, session, coordinator,
        )

    def snapshots(self) -> list[dict]:
        return [node.snapshot() for node in self.nodes]

    def anti_entropy_sweep(self) -> None:
        """Instantaneous full pairwise sibling sync (test convenience)."""
        for a in self.nodes:
            for b in self.nodes:
                if a is b:
                    continue
                for key, entry in b.data.items():
                    a.merge_entry(key, entry)
