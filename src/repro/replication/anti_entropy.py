"""Anti-entropy gossip replication.

The mechanism that puts the *eventual* in eventual consistency: every
replica accepts writes locally (always available), and a background
process periodically reconciles random pairs of replicas until all
copies agree.  Two reconciliation strategies:

* ``"full"``   — ship the whole key→(value, stamp) state; simple,
  bandwidth ∝ database size.
* ``"merkle"`` — exchange Merkle summaries first and ship only the
  keys in differing leaf buckets; bandwidth ∝ divergence.

Gossip is push–pull: the initiator sends its summary/state, the peer
merges and responds with what the initiator is missing.  E4 measures
convergence time vs. replica count, fan-out, and sync interval, and
the Merkle-vs-full bandwidth ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..clocks import LamportClock, LamportStamp
from ..errors import TimeoutError as ReproTimeoutError
from ..sim import Network, Node, Simulator
from .merkle import MerkleTree, build_tree, keys_in_buckets

Entry = tuple[Hashable, Any, LamportStamp]


@dataclass
class FullState:
    entries: list  # list[Entry]
    reply_expected: bool


@dataclass
class MerkleSummary:
    leaf_hashes: tuple
    depth: int
    reply_expected: bool


@dataclass
class BucketRequest:
    buckets: list
    summary: "MerkleSummary"


@dataclass
class BucketEntries:
    entries: list  # list[Entry]
    buckets_wanted: list  # buckets the sender wants back (pull half)


class GossipReplica(Node):
    """A replica that accepts local writes and gossips state."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "GossipCluster",
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.clock = LamportClock(node_id)
        self.data: dict[Hashable, tuple[Any, LamportStamp]] = {}
        if cluster.interval is not None:
            self.every(cluster.interval, self.gossip_once, jitter=0.5)

    # -- local API -----------------------------------------------------
    def write(self, key: Hashable, value: Any) -> LamportStamp:
        """Local write; visible here now, elsewhere eventually."""
        stamp = self.clock.tick()
        self._apply(key, value, stamp)
        return stamp

    def read(self, key: Hashable) -> Any:
        value, _stamp = self.data.get(key, (None, None))
        return value

    def _apply(self, key: Hashable, value: Any, stamp: LamportStamp) -> bool:
        self.clock.observe(stamp)
        current = self.data.get(key)
        if current is None or stamp > current[1]:
            self.data[key] = (value, stamp)
            return True
        return False

    def _merge_entries(self, entries: list) -> int:
        changed = 0
        for key, value, stamp in entries:
            if self._apply(key, value, stamp):
                changed += 1
        if changed:
            self.cluster._c_entries_merged.inc(changed)
        return changed

    def snapshot(self) -> dict:
        return {key: value for key, (value, _stamp) in self.data.items()}

    # -- gossip ----------------------------------------------------------
    def gossip_once(self) -> None:
        """Start one push–pull round with ``fanout`` random peers."""
        peers = [
            node_id for node_id in self.cluster.node_ids
            if node_id != self.node_id
        ]
        if not peers:
            return
        fanout = min(self.cluster.fanout, len(peers))
        chosen = self.sim.rng.sample(peers, fanout)
        for peer in chosen:
            self.cluster._c_rounds_started.inc()
            self.sim.annotate("gossip_round", initiator=self.node_id,
                              peer=peer, strategy=self.cluster.strategy)
            if self.cluster.strategy == "full":
                self.send(peer, FullState(self._all_entries(), reply_expected=True))
            else:
                tree = self._tree()
                self.send(
                    peer,
                    MerkleSummary(tree.leaf_hashes, tree.depth, reply_expected=True),
                )

    def _all_entries(self) -> list:
        return [
            (key, value, stamp) for key, (value, stamp) in self.data.items()
        ]

    def _tree(self) -> MerkleTree:
        versions = {key: stamp for key, (_value, stamp) in self.data.items()}
        return build_tree(versions, depth=self.cluster.merkle_depth)

    # -- handlers: full-state strategy -------------------------------------
    def handle_FullState(self, src: Hashable, msg: FullState) -> None:
        self._merge_entries(msg.entries)
        if msg.reply_expected:
            self.send(src, FullState(self._all_entries(), reply_expected=False))

    # -- handlers: merkle strategy -----------------------------------------
    def handle_MerkleSummary(self, src: Hashable, msg: MerkleSummary) -> None:
        mine = self._tree()
        theirs = MerkleTree(msg.depth, tuple(msg.leaf_hashes), 0)
        buckets = [
            index
            for index, (a, b) in enumerate(
                zip(mine.leaf_hashes, theirs.leaf_hashes)
            )
            if a != b
        ]
        if not buckets:
            return
        # Ask for the differing buckets, carrying our summary so the
        # peer can send exactly what we lack (pull), and we follow up
        # with what they lack (push).
        self.send(
            src,
            BucketRequest(
                buckets,
                MerkleSummary(mine.leaf_hashes, mine.depth, reply_expected=False),
            ),
        )

    def handle_BucketRequest(self, src: Hashable, msg: BucketRequest) -> None:
        wanted = set(msg.buckets)
        entries = self._entries_in_buckets(wanted)
        self.send(src, BucketEntries(entries, buckets_wanted=sorted(wanted)))

    def handle_BucketEntries(self, src: Hashable, msg: BucketEntries) -> None:
        self._merge_entries(msg.entries)
        if msg.buckets_wanted:
            entries = self._entries_in_buckets(set(msg.buckets_wanted))
            self.send(src, BucketEntries(entries, buckets_wanted=[]))

    def _entries_in_buckets(self, buckets: set) -> list:
        versions = {key: stamp for key, (_value, stamp) in self.data.items()}
        keys = keys_in_buckets(versions, buckets, self.cluster.merkle_depth)
        return [(key, self.data[key][0], self.data[key][1]) for key in keys]


class GossipCluster:
    """N gossiping replicas with a pluggable reconciliation strategy."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 8,
        interval: float | None = 20.0,
        fanout: int = 1,
        strategy: str = "full",
        merkle_depth: int = 6,
        node_ids: list[Hashable] | None = None,
    ) -> None:
        if strategy not in ("full", "merkle"):
            raise ValueError("strategy must be 'full' or 'merkle'")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.sim = sim
        self.network = network
        self.interval = interval
        self.fanout = fanout
        self.strategy = strategy
        self.merkle_depth = merkle_depth
        ids = node_ids or [f"g{i}" for i in range(nodes)]
        self.node_ids = list(ids)
        self._c_rounds_started = sim.metrics.counter("gossip.rounds_started")
        self._c_entries_merged = sim.metrics.counter("gossip.entries_merged")
        self.replicas = [
            GossipReplica(sim, network, node_id, self) for node_id in ids
        ]

    @property
    def rounds_started(self) -> int:
        return self._c_rounds_started.value

    @property
    def entries_merged(self) -> int:
        return self._c_entries_merged.value

    def replica(self, index: int) -> GossipReplica:
        return self.replicas[index]

    def snapshots(self) -> list[dict]:
        return [replica.snapshot() for replica in self.replicas]

    def converged(self) -> bool:
        snapshots = self.snapshots()
        return all(snapshot == snapshots[0] for snapshot in snapshots[1:])

    def run_until_converged(
        self, poll: float = 5.0, deadline: float = 120_000.0
    ) -> float:
        """Drive the simulator until all replicas agree; returns the
        convergence time (sim.now).  Raises on deadline."""
        start_deadline = self.sim.now + deadline
        while self.sim.now < start_deadline:
            if self.converged():
                return self.sim.now
            self.sim.run(until=self.sim.now + poll)
        raise ReproTimeoutError(f"not converged within {deadline}ms")
