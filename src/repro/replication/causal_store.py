"""A causally consistent replicated KV store (COPS-style).

The tutorial's "causal consistency" rung as a *server-side* mechanism
(complementing the client-side session layer): every replica accepts
writes locally (always available, like EC) but replicates them through
a reliable **causal broadcast** — a write becomes visible at a remote
replica only after every write it causally depends on.  Dependencies
are the writer's context: its own previous writes plus the writes its
replica had applied (COPS's dependency tracking collapsed into a
vector clock, which over-approximates the dependency set but never
under-delivers).

Guarantees (and their checkers):

* causal consistency across replicas — :func:`repro.checkers.check_causal`
  passes on any recorded history;
* all four session guarantees for a client pinned to one replica;
* convergence: concurrent writes to a key are arbitrated by a
  causality-compatible total rank, so replicas agree.

Not guaranteed: linearizability — remote reads can be stale, which is
the point: causal is the strongest model compatible with
always-available local operation (Mahajan et al.), sitting between the
session rungs and the quorum rungs of E1's spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..crdt.opbased import CausalBuffer, OpEnvelope
from ..histories import History, Operation
from ..sim import Future, Network, Simulator
from .common import ClientNode, ServerNode

#: Arbitration rank of a write: grows along causality (vector-clock
#: sum strictly increases on causal successors) and breaks concurrent
#: ties by origin — a Lamport-style total order compatible with the
#: causal partial order.
Rank = tuple[int, str]


@dataclass
class CPutLocal:
    """Client → replica: write at this replica."""

    key: Hashable
    value: Any


@dataclass
class CGetLocal:
    """Client → replica: read this replica's view."""

    key: Hashable


@dataclass(frozen=True)
class _WritePayload:
    key: Hashable
    value: Any


def _rank_of(envelope: OpEnvelope) -> Rank:
    return (sum(envelope.clock.entries().values()), str(envelope.origin))


class CausalReplica(ServerNode):
    """One replica: local reads/writes + causal broadcast of writes."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "CausalCluster",
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.buffer = CausalBuffer(node_id, self._apply)
        self.data: dict[Hashable, tuple[Any, Rank]] = {}
        #: Every envelope this replica has applied, in application
        #: order — the anti-entropy exchange set.  Replays are cheap:
        #: :class:`CausalBuffer` drops duplicates by vector clock.
        self.applied_log: list[OpEnvelope] = []

    # -- client-facing -----------------------------------------------------
    def serve_CPutLocal(self, src: Hashable, payload: CPutLocal):
        envelope = self.buffer.stamp_local(
            _WritePayload(payload.key, payload.value)
        )
        self.cluster._c_writes_local.inc()
        for peer in self.cluster.node_ids:
            if peer != self.node_id:
                self.send(peer, envelope)
        return _rank_of(envelope)

    def serve_CGetLocal(self, src: Hashable, payload: CGetLocal):
        self.cluster._c_reads_local.inc()
        value, rank = self.data.get(payload.key, (None, None))
        return value, rank

    # -- replication --------------------------------------------------------
    def handle_OpEnvelope(self, src: Hashable, envelope: OpEnvelope) -> None:
        self.buffer.receive(envelope)

    def _apply(self, envelope: OpEnvelope) -> None:
        payload: _WritePayload = envelope.payload
        rank = _rank_of(envelope)
        self.applied_log.append(envelope)
        self.cluster._c_ops_applied.inc()
        current = self.data.get(payload.key)
        if current is None or rank > current[1]:
            self.data[payload.key] = (payload.value, rank)

    def snapshot(self) -> dict:
        return {key: value for key, (value, _rank) in self.data.items()}


@dataclass
class _RawOp:
    kind: str
    key: Hashable
    session: Hashable
    start: float
    end: float | None
    rank: Rank | None
    value: Any
    replica: Hashable


class CausalClient(ClientNode):
    """A client pinned to one replica (its 'local datacenter')."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        cluster: "CausalCluster",
        session: Hashable,
        home: Hashable,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.cluster = cluster
        self.session = session
        self.home = home

    def _recorded(self, kind, key, inner, extract):
        outer = Future(self.sim)
        start = self.sim.now

        def done(future: Future) -> None:
            if future.error is not None:
                self.cluster._raw_ops.append(
                    _RawOp(kind, key, self.session, start, None, None,
                           None, self.home)
                )
                outer.fail(future.error)
            else:
                rank, value = extract(future.value)
                self.cluster._raw_ops.append(
                    _RawOp(kind, key, self.session, start, self.sim.now,
                           rank, value, self.home)
                )
                outer.resolve(future.value)

        inner.add_callback(done)
        return outer

    def _endpoints(self) -> list:
        """Failover order: the home replica, then every other replica —
        any COPS replica accepts local reads and writes."""
        return [self.home] + [
            node for node in self.cluster.node_ids if node != self.home
        ]

    def put(self, key: Hashable, value: Any, timeout: float | None = None) -> Future:
        """Local write; resolves with the write's arbitration rank."""
        inner = self.call(self._endpoints(), CPutLocal(key, value), timeout,
                          idempotent=True)
        return self._recorded(
            "write", key, inner, lambda rank: (tuple(rank), value)
        )

    def get(self, key: Hashable, timeout: float | None = None) -> Future:
        """Local read; resolves with ``(value, rank-or-None)``."""
        inner = self.call(self._endpoints(), CGetLocal(key), timeout)
        return self._recorded(
            "read", key, inner,
            lambda reply: (
                tuple(reply[1]) if reply[1] is not None else None,
                reply[0],
            ),
        )


class CausalCluster:
    """COPS-style causal KV: local ops + causal broadcast."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        nodes: int = 3,
        node_ids: list[Hashable] | None = None,
    ) -> None:
        ids = node_ids or [f"cc{i}" for i in range(nodes)]
        self.sim = sim
        self.network = network
        self.node_ids = list(ids)
        metrics = sim.metrics
        self._c_writes_local = metrics.counter("causal.writes_local")
        self._c_reads_local = metrics.counter("causal.reads_local")
        self._c_ops_applied = metrics.counter("causal.ops_applied")
        self._g_pending = metrics.gauge("causal.pending")
        self.replicas = [CausalReplica(sim, network, i, self) for i in ids]
        self._clients = 0
        self._raw_ops: list[_RawOp] = []

    def replica(self, node_id: Hashable) -> CausalReplica:
        for replica in self.replicas:
            if replica.node_id == node_id:
                return replica
        raise KeyError(node_id)

    def connect(
        self,
        home: Hashable,
        session: Hashable | None = None,
        client_id: Hashable | None = None,
    ) -> CausalClient:
        self._clients += 1
        session = session if session is not None else f"session-{self._clients}"
        client_id = client_id if client_id is not None else f"ccclient-{self._clients}"
        return CausalClient(self.sim, self.network, client_id, self,
                            session, home)

    def history(self) -> History:
        """Densify arbitration ranks into per-key integer versions
        (the same post-hoc scheme as :meth:`DynamoCluster.history`)."""
        ranks_by_key: dict[Hashable, set[Rank]] = {}
        for raw in self._raw_ops:
            if raw.rank is not None:
                ranks_by_key.setdefault(raw.key, set()).add(raw.rank)
        dense: dict[tuple[Hashable, Rank], int] = {}
        for key, ranks in ranks_by_key.items():
            for index, rank in enumerate(sorted(ranks), start=1):
                dense[(key, rank)] = index
        ops = []
        for raw in self._raw_ops:
            version = 0
            if raw.rank is not None:
                version = dense.get((raw.key, raw.rank), 0)
            ops.append(
                Operation(
                    kind=raw.kind,
                    key=raw.key,
                    version=version,
                    session=raw.session,
                    start=raw.start,
                    end=raw.end,
                    value=raw.value,
                    replica=raw.replica,
                )
            )
        return History(ops)

    def snapshots(self) -> list[dict]:
        return [replica.snapshot() for replica in self.replicas]

    def anti_entropy_sweep(self) -> None:
        """Instantaneous pairwise exchange of applied logs until a
        fixpoint: each live replica replays everything it has applied
        into every other live replica's causal buffer (duplicates are
        dropped by vector clock; hold-back delivers in causal order).
        Used by the chaos runner to quiesce after healing — the causal
        broadcast sends each write exactly once, so writes broadcast
        into a partition are otherwise lost forever."""
        while True:
            before = sum(len(r.applied_log) for r in self.replicas
                         if not r.crashed)
            for source in self.replicas:
                if source.crashed:
                    continue
                for envelope in list(source.applied_log):
                    for target in self.replicas:
                        if target is not source and not target.crashed:
                            target.buffer.receive(envelope)
            after = sum(len(r.applied_log) for r in self.replicas
                        if not r.crashed)
            if after == before:
                return

    def pending_total(self) -> int:
        """Writes still held back waiting for causal dependencies."""
        total = sum(r.buffer.pending_count for r in self.replicas)
        self._g_pending.set(total)
        return total
