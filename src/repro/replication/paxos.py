"""Single-decree Paxos (Lamport's Synod protocol).

The strong end of the tutorial's spectrum needs consensus; this module
is the textbook single-value protocol — proposers, acceptors with
durable promises, majority quorums — used directly by tests (safety
under dueling proposers, acceptor crashes) and as the foundation for
the Multi-Paxos replicated log in :mod:`repro.replication.multipaxos`.

Ballots are ``(round, proposer_id)`` tuples, totally ordered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..sim import Network, Node, Simulator

Ballot = tuple[int, str]

NO_BALLOT: Ballot = (0, "")


@dataclass
class Prepare:
    ballot: Ballot


@dataclass
class Promise:
    ballot: Ballot
    accepted_ballot: Ballot
    accepted_value: Any


@dataclass
class PrepareNack:
    ballot: Ballot
    promised: Ballot


@dataclass
class AcceptRequest:
    ballot: Ballot
    value: Any


@dataclass
class AcceptedMsg:
    ballot: Ballot


@dataclass
class AcceptNack:
    ballot: Ballot
    promised: Ballot


class Acceptor(Node):
    """Paxos acceptor.  Promises and accepted values survive crashes
    (they model durable storage), which is what makes recovery safe."""

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable):
        super().__init__(sim, network, node_id)
        self.promised: Ballot = NO_BALLOT
        self.accepted_ballot: Ballot = NO_BALLOT
        self.accepted_value: Any = None

    def handle_Prepare(self, src: Hashable, msg: Prepare) -> None:
        # '>=': re-promising an equal ballot keeps this idempotent
        # under network-level message duplication.
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.send(
                src,
                Promise(msg.ballot, self.accepted_ballot, self.accepted_value),
            )
        else:
            self.send(src, PrepareNack(msg.ballot, self.promised))

    def handle_AcceptRequest(self, src: Hashable, msg: AcceptRequest) -> None:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            self.accepted_ballot = msg.ballot
            self.accepted_value = msg.value
            self.send(src, AcceptedMsg(msg.ballot))
        else:
            self.send(src, AcceptNack(msg.ballot, self.promised))


class Proposer(Node):
    """Paxos proposer driving one value to consensus.

    ``propose(value)`` starts phase 1; on majority promises the
    proposer adopts the highest-ballot already-accepted value (or its
    own), runs phase 2, and calls ``on_decided`` on majority accepts.
    Nacks trigger a retry with a higher round after a randomized
    backoff — the standard liveness workaround for dueling proposers.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        acceptor_ids: list[Hashable],
        on_decided: Callable[[Any], None] | None = None,
        max_retries: int = 32,
        backoff: float = 10.0,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.acceptor_ids = list(acceptor_ids)
        self.on_decided = on_decided or (lambda value: None)
        self.max_retries = max_retries
        self.backoff = backoff
        metrics = sim.metrics
        self._c_rounds = metrics.counter("paxos.rounds_started")
        self._c_nacks = metrics.counter("paxos.nacks")
        self._c_decided = metrics.counter("paxos.decided")
        self.round = 0
        self.ballot: Ballot = NO_BALLOT
        self.my_value: Any = None
        self.phase = "idle"           # idle | prepare | accept | done
        self.decided_value: Any = None
        self._promises: dict[Hashable, Promise] = {}
        self._accepts: set[Hashable] = set()
        self._retries = 0

    @property
    def majority(self) -> int:
        return len(self.acceptor_ids) // 2 + 1

    # ------------------------------------------------------------------
    def propose(self, value: Any) -> None:
        if self.phase == "done":
            return
        self.my_value = value
        self._start_round()

    def _start_round(self) -> None:
        self.round += 1
        self._c_rounds.inc()
        self.ballot = (self.round, str(self.node_id))
        self.phase = "prepare"
        self._promises = {}
        self._accepts = set()
        for acceptor in self.acceptor_ids:
            self.send(acceptor, Prepare(self.ballot))

    def _retry(self, observed: Ballot) -> None:
        if self.phase == "done":
            return
        self._c_nacks.inc()
        self._retries += 1
        if self._retries > self.max_retries:
            self.phase = "idle"
            return
        # Jump past the competing round, then back off randomly.
        self.round = max(self.round, observed[0])
        delay = self.sim.rng.uniform(0.5, 1.0) * self.backoff * self._retries
        self.set_timer(delay, self._start_round)
        self.phase = "backoff"

    # ------------------------------------------------------------------
    def handle_Promise(self, src: Hashable, msg: Promise) -> None:
        if self.phase != "prepare" or msg.ballot != self.ballot:
            return
        self._promises[src] = msg  # dict: duplicates don't double-count
        if len(self._promises) < self.majority:
            return
        # Adopt the highest-ballot accepted value among promises.
        best = max(self._promises.values(), key=lambda p: p.accepted_ballot)
        value = (
            best.accepted_value
            if best.accepted_ballot != NO_BALLOT
            else self.my_value
        )
        self.phase = "accept"
        self._chosen_for_round = value
        for acceptor in self.acceptor_ids:
            self.send(acceptor, AcceptRequest(self.ballot, value))

    def handle_PrepareNack(self, src: Hashable, msg: PrepareNack) -> None:
        if self.phase == "prepare" and msg.ballot == self.ballot:
            self._retry(msg.promised)

    def handle_AcceptedMsg(self, src: Hashable, msg: AcceptedMsg) -> None:
        if self.phase != "accept" or msg.ballot != self.ballot:
            return
        self._accepts.add(src)
        if len(self._accepts) >= self.majority:
            self.phase = "done"
            self.decided_value = self._chosen_for_round
            self._c_decided.inc()
            self.sim.annotate("paxos_decided", proposer=self.node_id,
                              ballot=self.ballot)
            self.on_decided(self.decided_value)

    def handle_AcceptNack(self, src: Hashable, msg: AcceptNack) -> None:
        if self.phase == "accept" and msg.ballot == self.ballot:
            self._retry(msg.promised)
