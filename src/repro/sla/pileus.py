"""Consistency-based SLAs (Pileus, Terry et al. SOSP'13).

The tutorial's end point: instead of one consistency level baked into
the application, each *read* carries an SLA — an ordered list of
``(consistency, latency bound, utility)`` sub-SLAs — and the client
library picks, per read, the replica expected to deliver the highest
utility.  A nearby lagging replica wins when the SLA tolerates
staleness; the far master wins when it doesn't; the ranking shifts as
client→replica latencies change.

This implementation targets the :class:`~repro.replication.TimelineCluster`
(single master per record, async propagation — the same regime Pileus
assumes), with:

* :class:`ReplicaMonitor` — EWMA latency estimates per replica plus a
  propagation-lag estimate, learned from observed replies,
* condition evaluation per consistency level (strong / read-my-writes
  / monotonic / bounded(t) / eventual),
* post-hoc utility scoring of each reply against the SLA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..errors import ReproError
from ..sim import Future, Simulator, spawn


class Consistency(enum.Enum):
    """Read-consistency levels a sub-SLA can demand (Pileus's menu)."""

    STRONG = "strong"
    READ_MY_WRITES = "read-my-writes"
    MONOTONIC = "monotonic"
    BOUNDED = "bounded"          # parameterized by staleness_bound ms
    CAUSAL = "causal"
    EVENTUAL = "eventual"


@dataclass(frozen=True)
class SubSLA:
    """One acceptable (consistency, latency, utility) point."""

    consistency: Consistency
    latency_bound: float            # ms, client-observed
    utility: float
    staleness_bound: float = 0.0    # ms; only for Consistency.BOUNDED

    def __post_init__(self) -> None:
        if self.latency_bound <= 0:
            raise ValueError("latency bound must be positive")
        if self.utility < 0:
            raise ValueError("utility must be non-negative")
        if self.consistency is Consistency.BOUNDED and self.staleness_bound <= 0:
            raise ValueError("bounded consistency needs a staleness bound")


@dataclass(frozen=True)
class SLA:
    """An ordered preference list; earlier sub-SLAs are preferred."""

    name: str
    subslas: tuple[SubSLA, ...]

    def __post_init__(self) -> None:
        if not self.subslas:
            raise ValueError("SLA needs at least one sub-SLA")

    def __iter__(self):
        return iter(self.subslas)


# The three worked examples from the Pileus paper.
PASSWORD_CHECKING = SLA(
    "password-checking",
    (
        SubSLA(Consistency.STRONG, 100.0, 1.0),
        SubSLA(Consistency.STRONG, 500.0, 0.001),
    ),
)

SHOPPING_CART = SLA(
    "shopping-cart",
    (
        SubSLA(Consistency.READ_MY_WRITES, 50.0, 1.0),
        SubSLA(Consistency.READ_MY_WRITES, 200.0, 0.75),
        SubSLA(Consistency.EVENTUAL, 200.0, 0.4),
    ),
)

WEB_CONTENT = SLA(
    "web-content",
    (
        SubSLA(Consistency.BOUNDED, 60.0, 1.0, staleness_bound=300.0),
        SubSLA(Consistency.EVENTUAL, 60.0, 0.6),
        SubSLA(Consistency.EVENTUAL, 400.0, 0.3),
    ),
)


@dataclass
class ReplicaMonitor:
    """Latency and lag estimates the selector plans with."""

    alpha: float = 0.3                       # EWMA weight for new samples
    default_latency: float = 50.0
    default_lag: float = 200.0
    latency: dict = field(default_factory=dict)   # replica -> ms (RTT)
    lag: dict = field(default_factory=dict)       # replica -> ms behind master

    def observe_latency(self, replica: Hashable, rtt: float) -> None:
        old = self.latency.get(replica)
        self.latency[replica] = (
            rtt if old is None else (1 - self.alpha) * old + self.alpha * rtt
        )

    def observe_lag(self, replica: Hashable, lag_ms: float) -> None:
        old = self.lag.get(replica)
        self.lag[replica] = (
            lag_ms if old is None else (1 - self.alpha) * old + self.alpha * lag_ms
        )

    def predicted_latency(self, replica: Hashable) -> float:
        return self.latency.get(replica, self.default_latency)

    def predicted_lag(self, replica: Hashable) -> float:
        return self.lag.get(replica, self.default_lag)


@dataclass
class ReadOutcome:
    """What one SLA-driven read actually delivered."""

    value: Any
    version: int
    latency: float
    utility: float
    replica: Hashable
    subsla_rank: int        # 0-based index of the sub-SLA credited
    target_rank: int        # which sub-SLA the selector aimed for


class SLAClient:
    """Pileus-style client over a timeline cluster.

    Wraps a :class:`~repro.replication.TimelineClient`; keeps its own
    session floors (for read-my-writes / monotonic), a
    :class:`ReplicaMonitor`, and per-SLA utility accounting.
    """

    def __init__(self, client, monitor: ReplicaMonitor | None = None) -> None:
        self.client = client
        self.cluster = client.cluster
        self.sim: Simulator = client.sim
        self.monitor = monitor or ReplicaMonitor()
        self.write_floor: dict[Hashable, int] = {}
        self.read_floor: dict[Hashable, int] = {}
        self.outcomes: list[ReadOutcome] = []
        self._last_write_time: dict[Hashable, float] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write(
        self, key: Hashable, value: Any, timeout: float | None = None
    ) -> Future:
        self._last_write_time[key] = self.sim.now
        inner = self.client.write(key, value, timeout)
        outer = Future(self.sim, label=f"sla-write({key!r})")
        started = self.sim.now

        def done(future: Future) -> None:
            if future.error is not None:
                outer.fail(future.error)
                return
            version = future.value
            self.write_floor[key] = max(self.write_floor.get(key, 0), version)
            master = self.cluster.master_of(key)
            self.monitor.observe_latency(master, self.sim.now - started)
            outer.resolve(version)

        inner.add_callback(done)
        return outer

    # ------------------------------------------------------------------
    # Replica selection
    # ------------------------------------------------------------------
    def _floor_for(self, key: Hashable, consistency: Consistency) -> int:
        if consistency is Consistency.STRONG:
            return -1  # sentinel: must go to master
        if consistency in (Consistency.READ_MY_WRITES, Consistency.CAUSAL):
            return self.write_floor.get(key, 0)
        if consistency is Consistency.MONOTONIC:
            return self.read_floor.get(key, 0)
        return 0

    def _replica_can_serve(
        self, replica: Hashable, key: Hashable, subsla: SubSLA
    ) -> bool:
        master = self.cluster.master_of(key)
        if subsla.consistency is Consistency.STRONG:
            return replica == master
        if replica == master:
            return True  # the master satisfies every weaker level
        lag = self.monitor.predicted_lag(replica)
        if subsla.consistency is Consistency.BOUNDED:
            return lag <= subsla.staleness_bound
        if subsla.consistency in (
            Consistency.READ_MY_WRITES,
            Consistency.CAUSAL,
            Consistency.MONOTONIC,
        ):
            floor = self._floor_for(key, subsla.consistency)
            if floor == 0:
                return True
            # Heuristic: the replica has our writes if they are older
            # than its typical propagation lag.
            last_write_age = self.sim.now - self._last_write_time.get(key, -1e9)
            return last_write_age >= lag
        return True  # EVENTUAL

    def select_target(
        self, key: Hashable, sla: SLA
    ) -> tuple[Hashable, int]:
        """Pick (replica, subsla_rank) maximizing expected utility:
        scan sub-SLAs in preference order; the first with a replica
        predicted to meet both conditions wins (Pileus §4.3)."""
        for rank, subsla in enumerate(sla):
            candidates = [
                replica
                for replica in self.cluster.node_ids
                if self._replica_can_serve(replica, key, subsla)
                and self.monitor.predicted_latency(replica)
                <= subsla.latency_bound
            ]
            if candidates:
                best = min(
                    candidates, key=lambda r: self.monitor.predicted_latency(r)
                )
                return best, rank
        # Nothing predicted to qualify: fall back to the master.
        return self.cluster.master_of(key), len(sla.subslas) - 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(
        self, key: Hashable, sla: SLA, timeout: float | None = None
    ) -> Future:
        """SLA-driven read; resolves with a :class:`ReadOutcome`."""
        outer = Future(self.sim, label=f"sla-read({key!r})")
        target, target_rank = self.select_target(key, sla)
        started = self.sim.now

        def script():
            from ..replication.timeline import TReadAny

            try:
                value, version = yield self.client.call(
                    target, TReadAny(key), timeout
                )
            except ReproError as exc:
                outer.fail(exc)
                return
            latency = self.sim.now - started
            self.monitor.observe_latency(target, latency)
            self._observe_freshness(target, key, version)
            self.read_floor[key] = max(self.read_floor.get(key, 0), version)
            outcome = self._score(
                key, sla, target, target_rank, value, version, latency
            )
            self.outcomes.append(outcome)
            outer.resolve(outcome)

        spawn(self.sim, script(), name="sla-read")
        return outer

    def _observe_freshness(
        self, replica: Hashable, key: Hashable, version: int
    ) -> None:
        master = self.cluster.master_of(key)
        if replica == master:
            self.monitor.observe_lag(replica, 0.0)
            return
        predicted = self.monitor.predicted_lag(replica)
        floor = self.write_floor.get(key, 0)
        age = self.sim.now - self._last_write_time.get(key, -1e9)
        if floor > 0 and version < floor:
            # The replica missed a write we made ``age`` ms ago, so its
            # true lag exceeds ``age``: multiplicative increase keeps
            # the estimator honest when the scale guess is off.
            self.monitor.observe_lag(
                replica, max(2.0 * predicted, 1.5 * age, 1.0)
            )
            return
        master_version = self.cluster.replica(master).data.get(key, (None, 0))[1]
        behind = max(0, master_version - version)
        scale = max(self.cluster.propagation_delay, 1.0)
        if behind == 0:
            # Fresh reply: decay gently toward the good news.
            self.monitor.observe_lag(replica, 0.8 * predicted)
        else:
            self.monitor.observe_lag(replica, behind * scale)

    def _score(
        self,
        key: Hashable,
        sla: SLA,
        replica: Hashable,
        target_rank: int,
        value: Any,
        version: int,
        latency: float,
    ) -> ReadOutcome:
        """Utility of the first sub-SLA the reply actually satisfies."""
        master = self.cluster.master_of(key)
        master_version = self.cluster.replica(master).data.get(key, (None, 0))[1]
        for rank, subsla in enumerate(sla):
            if latency > subsla.latency_bound:
                continue
            if not self._reply_meets(
                subsla, key, replica, version, master_version
            ):
                continue
            return ReadOutcome(
                value, version, latency, subsla.utility, replica, rank,
                target_rank,
            )
        return ReadOutcome(value, version, latency, 0.0, replica,
                           len(sla.subslas), target_rank)

    def _reply_meets(
        self,
        subsla: SubSLA,
        key: Hashable,
        replica: Hashable,
        version: int,
        master_version: int,
    ) -> bool:
        if subsla.consistency is Consistency.STRONG:
            return version >= master_version
        if subsla.consistency in (
            Consistency.READ_MY_WRITES,
            Consistency.CAUSAL,
        ):
            return version >= self.write_floor.get(key, 0)
        if subsla.consistency is Consistency.MONOTONIC:
            # read_floor was updated after this read; monotonicity held
            # if we returned at least the previous floor — which the
            # update rule guarantees can only have grown.
            return True
        if subsla.consistency is Consistency.BOUNDED:
            behind = max(0, master_version - version)
            scale = max(self.cluster.propagation_delay, 1.0)
            return behind * scale <= subsla.staleness_bound
        return True  # EVENTUAL

    # ------------------------------------------------------------------
    def average_utility(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.utility for o in self.outcomes) / len(self.outcomes)
