"""Consistency SLAs — declarative per-read consistency (Pileus-style)."""

from .pileus import (
    PASSWORD_CHECKING,
    SHOPPING_CART,
    SLA,
    WEB_CONTENT,
    Consistency,
    ReadOutcome,
    ReplicaMonitor,
    SLAClient,
    SubSLA,
)

__all__ = [
    "Consistency",
    "SubSLA",
    "SLA",
    "SLAClient",
    "ReplicaMonitor",
    "ReadOutcome",
    "PASSWORD_CHECKING",
    "SHOPPING_CART",
    "WEB_CONTENT",
]
