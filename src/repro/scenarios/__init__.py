"""Flagship end-to-end scenarios combining several subsystems.

Unlike the benchmarks (one experiment per file) and the conformance
suites (one property per store), a scenario is a *story*: a seeded,
fingerprinted deployment exercised through a full operational arc —
traffic, fault, failover, recovery — with the checkers delivering the
verdicts.  ``repro.sharding.demo`` (elastic scaling) was the first;
:mod:`repro.scenarios.multiregion` (geo-replication with a region
loss) is the second.
"""

from .multiregion import (
    MultiRegionReport,
    ProtocolOutcome,
    format_multiregion,
    run_multiregion,
)

__all__ = [
    "MultiRegionReport",
    "ProtocolOutcome",
    "run_multiregion",
    "format_multiregion",
]
