"""The multi-region flagship scenario behind ``repro multiregion``.

Three regions (``us-east``, ``eu``, ``asia`` — the
:data:`~repro.sim.topology.THREE_CONTINENTS` WAN), one sharded cluster
per protocol with every shard's replica set spread across all three
regions, and clients in every region reading through both a
``local_follower`` and a ``primary`` read-preference session while
regional writers keep acked writes flowing.

At ``T_PART`` the nemesis cuts the ``us-east`` region off the WAN
(:class:`~repro.chaos.Nemesis` ``region_partition`` fault).  A scripted
operator then fails over — primary–backup shards promote their ``eu``
replica, timeline records mastered in the lost region are re-mastered
to ``eu``, quorum needs nothing (leaderless) — while probe writers in
the surviving ``eu`` region measure **RTO** (time until every shard
accepts writes again) and an authoritative read-back during the outage
measures **RPO** (acked-pre-partition writes no longer readable).

The expected shape of the table is the paper's trade-off made
executable:

* ``quorum`` (w=2 of 3, one replica per region) recovers without any
  operator action and loses nothing — every write quorum intersects
  the two surviving regions;
* ``primary_backup`` in ``async`` mode recovers only after promotion
  and *loses* the writes the lost primary acked but had not replicated;
* ``timeline`` recovers after re-mastering and loses the tail of each
  lost master's timeline that had not propagated.

Meanwhile the latency side of the bargain: follower reads served in
region are 1–2 ms while authoritative reads pay one to two WAN round
trips — the local p99 must stay strictly below the remote p99 for
every protocol (asserted by E18 and ``MultiRegionReport.ok``).

Every leg runs under its own :class:`~repro.perf.HashingTracer`, so the
scenario has a per-seed fingerprint; the CI ``multiregion-smoke`` job
runs it twice (``--check-determinism``) and fails on drift.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..analysis import LatencyStats
from ..chaos import FaultPlan, Nemesis, step
from ..checkers import check_convergence
from ..errors import ReproError
from ..perf.harness import HashingTracer
from ..placement import Placement
from ..sim import Network, Simulator, spawn
from ..sim.topology import THREE_CONTINENTS
from ..sharding import ShardedStore

__all__ = ["ProtocolOutcome", "MultiRegionReport",
           "run_multiregion", "format_multiregion"]

#: Scenario clock (simulated ms).  The region falls at ``T_PART``; the
#: operator reacts at ``T_FAILOVER``; the outage read-back starts at
#: ``T_RPO`` and must complete before the WAN heals at ``T_HEAL``.
T_PART = 400.0
T_FAILOVER = 460.0
T_RPO = 600.0
T_HEAL = 1400.0

READ_PERIOD = 10.0
WRITE_PERIOD = 12.0
OP_TIMEOUT = 2000.0
PROBE_TIMEOUT = 300.0
PROBE_INTERVAL = 40.0
RPO_TIMEOUT = 600.0

LOST_REGION = "us-east"
HOME_REGION = "eu"          # the surviving region the operator works from

#: The protocols the flagship compares, with the per-shard cluster
#: kwargs that make them honest on a WAN (the quorum defaults assume a
#: LAN; 25 ms replica timeouts would declare every remote replica dead).
PROTOCOL_KWARGS = {
    "timeline": {"propagation_delay": 25.0},
    "primary_backup": {"mode": "async"},
    "quorum": {"n": 3, "r": 2, "w": 2, "replica_timeout": 500.0,
               "op_deadline": 2000.0, "client_timeout": 4000.0},
}

#: The read mode that answers "what does the system *authoritatively*
#: believe survives?" during the outage (the RPO probe).
AUTH_MODE = {
    "timeline": "latest",
    "primary_backup": "primary",
    "quorum": "quorum",
}


@dataclass
class ProtocolOutcome:
    """One protocol's row in the region-loss table."""

    protocol: str
    shards: int = 0
    writes_acked: int = 0
    keys_checked: int = 0
    #: ms from region loss until every shard accepted a write again;
    #: ``None`` when some shard never recovered inside the window.
    rto_ms: float | None = None
    #: keys whose last acked pre-partition write was unreadable during
    #: the outage under the protocol's authoritative read mode.
    rpo_lost_keys: int = 0
    local_reads: int = 0
    remote_reads: int = 0
    local_p99: float = 0.0
    remote_p99: float = 0.0
    rpc_local: int = 0
    rpc_remote: int = 0
    converged: bool = False
    fingerprint: str = ""

    @property
    def recovered(self) -> bool:
        return self.rto_ms is not None


@dataclass
class MultiRegionReport:
    """Everything ``repro multiregion`` prints, plus pass/fail inputs."""

    seed: int
    topology: str = THREE_CONTINENTS.name
    regions: tuple = ()
    lost_region: str = LOST_REGION
    shards: int = 0
    quick: bool = False
    outcomes: list = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        """Every protocol recovered, follower reads beat authoritative
        reads everywhere, and the quorum leg lost nothing."""
        if not self.outcomes:
            return False
        for outcome in self.outcomes:
            if not outcome.recovered:
                return False
            if not outcome.local_p99 < outcome.remote_p99:
                return False
            if outcome.protocol == "quorum" and outcome.rpo_lost_keys != 0:
                return False
        return True


def run_multiregion(
    seed: int = 42,
    protocols: tuple = ("timeline", "primary_backup", "quorum"),
    quick: bool = False,
) -> MultiRegionReport:
    """Run the region-loss arc once per protocol; deterministic per seed."""
    unknown = [p for p in protocols if p not in PROTOCOL_KWARGS]
    if unknown:
        raise ValueError(
            f"unknown protocol(s) {', '.join(unknown)}; supported: "
            f"{', '.join(sorted(PROTOCOL_KWARGS))}"
        )
    report = MultiRegionReport(seed=seed, quick=quick,
                               shards=2 if quick else 3)
    report.regions = tuple(THREE_CONTINENTS.sites)
    digests = []
    for protocol in protocols:
        outcome = _run_leg(protocol, seed=seed, shards=report.shards,
                           quick=quick)
        report.outcomes.append(outcome)
        digests.append(outcome.fingerprint)
    report.fingerprint = hashlib.sha256(
        "".join(digests).encode()
    ).hexdigest()
    return report


def _run_leg(
    protocol: str, seed: int, shards: int, quick: bool
) -> ProtocolOutcome:
    outcome = ProtocolOutcome(protocol=protocol, shards=shards)
    tracer = HashingTracer()
    sim = Simulator(seed, tracer=tracer)
    placement = Placement(THREE_CONTINENTS, default_region=HOME_REGION)
    network = Network(sim, latency=placement.latency_model(jitter=0.05))
    store = ShardedStore(
        sim, network, protocol=protocol, shards=shards, nodes_per_shard=3,
        placement=placement, **PROTOCOL_KWARGS[protocol],
    )
    regions = placement.region_names

    keys = [f"k{i}" for i in range(12 if quick else 24)]
    probe_keys = _probe_keys(store)

    local_stats, remote_stats = LatencyStats(), LatencyStats()
    last_acked: dict = {}
    acked = [0]
    rto_ms: dict = {}
    rpo_read: dict = {}

    # One follower-read, one authoritative-read, and one writer session
    # per region; plus the operator's probe/read-back sessions in the
    # surviving region.  All opened before the clock starts.
    local_sessions = {
        r: store.session(f"local-{r}", read_preference="local_follower",
                         region=r)
        for r in regions
    }
    primary_sessions = {
        r: store.session(f"primary-{r}", read_preference="primary", region=r)
        for r in regions
    }
    writer_sessions = {
        r: store.session(f"writer-{r}", region=r) for r in regions
    }
    probe_session = store.session(
        "probe", read_preference="local_follower", region=HOME_REGION
    )
    # Authoritative reads ride the probe session for timeline (``latest``
    # is pinned to the record master) and quorum (the only mode), but
    # primary-backup needs a locality-free session: follower sessions
    # order endpoints nearest-first, which would send a "primary" read
    # to the local backup.
    if protocol == "primary_backup":
        rpo_session = store.session(
            "rpo", read_preference="primary", region=HOME_REGION
        )
    else:
        rpo_session = probe_session

    def record_read(stats, t0):
        def callback(future):
            if future.error is None and sim.now <= T_PART:
                stats.record(sim.now - t0)
        return callback

    def reader(session, stats, offset):
        issued = 0
        yield offset
        while sim.now < T_PART:
            key = keys[issued % len(keys)]
            issued += 1
            fut = session.get(key, timeout=OP_TIMEOUT)
            fut.add_callback(record_read(stats, sim.now))
            yield READ_PERIOD

    def record_ack(key, seq):
        def callback(future):
            if future.error is None and sim.now <= T_PART:
                if seq > last_acked.get(key, 0):
                    last_acked[key] = seq
                acked[0] += 1
        return callback

    def writer(session, owned, offset):
        seqs: dict = {}
        n = 0
        yield offset
        while sim.now < T_PART:
            key = owned[n % len(owned)]
            n += 1
            seqs[key] = seqs.get(key, 0) + 1
            fut = session.put(key, f"v{seqs[key]}", timeout=OP_TIMEOUT)
            fut.add_callback(record_ack(key, seqs[key]))
            yield WRITE_PERIOD

    def probe(key):
        yield T_PART + 10.0
        attempt = 0
        while sim.now < T_HEAL:
            attempt += 1
            try:
                yield probe_session.put(
                    key, f"p{attempt}", timeout=PROBE_TIMEOUT
                )
            except ReproError:
                yield PROBE_INTERVAL
                continue
            rto_ms[key] = sim.now - T_PART
            return

    def record_rpo(key):
        def callback(future):
            if future.error is None:
                rpo_read[key] = future.value[0]
            else:
                rpo_read[key] = None
        return callback

    def control():
        yield T_FAILOVER
        _fail_over(store, placement, protocol, keys + probe_keys)
        yield T_RPO - T_FAILOVER
        for key in sorted(last_acked):
            fut = rpo_session.get(
                key, mode=AUTH_MODE[protocol], timeout=RPO_TIMEOUT
            )
            fut.add_callback(record_rpo(key))
        yield RPO_TIMEOUT + 50.0   # all read-backs resolved, pre-heal

    for i, r in enumerate(regions):
        spawn(sim, reader(local_sessions[r], local_stats, 1.0 + 0.7 * i),
              name=f"reader-local-{r}")
        spawn(sim, reader(primary_sessions[r], remote_stats, 2.0 + 0.7 * i),
              name=f"reader-primary-{r}")
        spawn(sim, writer(writer_sessions[r], keys[i::len(regions)], 0.5 * i),
              name=f"writer-{r}")
    for key in probe_keys:
        spawn(sim, probe(key), name=f"probe-{key}")
    spawn(sim, control(), name="operator")

    plan = FaultPlan("multiregion-region-loss", (
        step("region_partition", at=T_PART, region=LOST_REGION),
        step("heal", at=T_HEAL),
    ))
    nemesis = Nemesis(plan, seed=seed)
    nemesis.install(store)

    sim.run()
    nemesis.heal_all()
    store.settle()
    sim.run()

    outcome.writes_acked = acked[0]
    outcome.keys_checked = len(last_acked)
    outcome.rto_ms = (max(rto_ms.values())
                      if len(rto_ms) == len(probe_keys) else None)
    outcome.rpo_lost_keys = sum(
        1 for key, seq in last_acked.items()
        if _version_of(rpo_read.get(key)) < seq
    )
    outcome.local_reads = len(local_stats.samples)
    outcome.remote_reads = len(remote_stats.samples)
    outcome.local_p99 = local_stats.percentile(99)
    outcome.remote_p99 = remote_stats.percentile(99)
    outcome.rpc_local = sim.metrics.counter("rpc.attempts_local").value
    outcome.rpc_remote = sim.metrics.counter("rpc.attempts_remote").value
    outcome.converged = check_convergence(store.snapshots()).ok
    outcome.fingerprint = tracer.hexdigest()
    return outcome


def _probe_keys(store: ShardedStore) -> list:
    """Deterministic fresh keys covering every shard — the RTO probes
    must prove *each* shard accepts writes again, not just one."""
    covered: set = set()
    chosen: list = []
    i = 0
    while len(covered) < len(store.shard_ids):
        key = f"probe{i}"
        i += 1
        shard = store.shard_of(key)
        if shard not in covered:
            covered.add(shard)
            chosen.append(key)
    return chosen


def _version_of(value) -> int:
    """Writer values are ``v<seq>``; anything else reads as version 0."""
    if isinstance(value, str) and value.startswith("v"):
        try:
            return int(value[1:])
        except ValueError:
            return 0
    return 0


def _fail_over(store, placement, protocol, keys) -> None:
    """The operator's runbook for losing :data:`LOST_REGION`.

    Quorum needs nothing — any two surviving replicas are a write
    quorum.  Primary–backup promotes each affected shard's replica in
    the operator's region.  Timeline re-masters every record whose
    master was in the lost region to the same survivor.
    """
    if protocol == "quorum":
        return
    for shard_id in store.shard_ids:
        cluster = store.shards[shard_id].cluster
        if protocol == "primary_backup":
            primary = cluster.primary
            if placement.region_of(primary.node_id) != LOST_REGION:
                continue
            survivor = next(
                r for r in cluster.replicas
                if placement.region_of(r.node_id) == HOME_REGION
            )
            cluster.promote(survivor)
        elif protocol == "timeline":
            survivor = placement.nodes_in(
                HOME_REGION, within=cluster.node_ids
            )[0]
            for key in keys:
                if store.shard_of(key) != shard_id:
                    continue
                master = cluster.master_of(key)
                if placement.region_of(master) == LOST_REGION:
                    cluster.set_master(key, survivor)


def format_multiregion(report: MultiRegionReport) -> str:
    """The verdict block ``repro multiregion`` prints."""
    lines = [
        f"multi-region demo: topology={report.topology} seed={report.seed} "
        f"({report.shards} shards x 3 replicas spread over "
        f"{', '.join(report.regions)}; region {report.lost_region!r} lost "
        f"at {T_PART:.0f}ms, healed at {T_HEAL:.0f}ms)",
    ]
    for o in report.outcomes:
        rto = f"{o.rto_ms:.0f}ms" if o.rto_ms is not None else "NEVER"
        lines.append(
            f"  {o.protocol}: rto={rto} "
            f"rpo={o.rpo_lost_keys}/{o.keys_checked} keys lost "
            f"({o.writes_acked} writes acked pre-partition)"
        )
        lines.append(
            f"    reads: local p99 {o.local_p99:.1f}ms "
            f"({o.local_reads} samples) vs primary p99 "
            f"{o.remote_p99:.1f}ms ({o.remote_reads} samples); "
            f"rpc attempts {o.rpc_local} local / {o.rpc_remote} remote"
        )
        lines.append(
            f"    converged after heal: {o.converged}  "
            f"fingerprint: {o.fingerprint[:16]}"
        )
    lines.append(f"fingerprint: {report.fingerprint[:32]}")
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)
