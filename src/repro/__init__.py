"""repro — an executable companion to *Rethinking Eventual Consistency*
(Bernstein & Das, SIGMOD 2013).

The package turns the tutorial's taxonomy of consistency guarantees
and replication mechanisms into running code:

* :mod:`repro.sim` — deterministic discrete-event simulator, lossy
  partitionable network, WAN topologies, generator-based clients.
* :mod:`repro.clocks` — Lamport / vector / version-vector / dotted /
  hybrid logical clocks.
* :mod:`repro.storage` — per-replica stores (LWW, siblings, sequenced,
  multi-version).
* :mod:`repro.crdt` — state-, op- and delta-based CRDTs.
* :mod:`repro.replication` — primary–backup, Dynamo quorums, gossip
  anti-entropy with Merkle trees, Paxos/Multi-Paxos, PNUTS timelines,
  chain replication.
* :mod:`repro.client` — session guarantees as a client library.
* :mod:`repro.checkers` — linearizability / sequential / causal /
  session / staleness / convergence checkers over recorded histories.
* :mod:`repro.sla` — Pileus-style consistency SLAs.
* :mod:`repro.txn` — 2PL+2PC, snapshot isolation, RedBlue, escrow.
* :mod:`repro.workload`, :mod:`repro.analysis` — generators, metrics,
  and the PBS staleness model.

Quickstart::

    from repro import Simulator, Network, spawn
    from repro.replication import DynamoCluster

    sim = Simulator(seed=7)
    net = Network(sim)
    cluster = DynamoCluster(sim, net, nodes=5, n=3, r=2, w=2)
    client = cluster.connect()

    def script():
        yield client.put("cart", ["milk"])
        value, _ = yield client.get("cart")
        print(value)

    spawn(sim, script())
    sim.run()
"""

from . import (
    analysis,
    api,
    checkers,
    clocks,
    client,
    crdt,
    errors,
    histories,
    placement,
    replication,
    rpc,
    scenarios,
    sharding,
    sim,
    sla,
    storage,
    txn,
    workload,
)
from .rpc import RetryPolicy
from .sim import Future, Network, Simulator, spawn

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Network",
    "Future",
    "RetryPolicy",
    "spawn",
    "rpc",
    "sim",
    "clocks",
    "storage",
    "crdt",
    "histories",
    "checkers",
    "replication",
    "client",
    "sla",
    "txn",
    "workload",
    "analysis",
    "api",
    "placement",
    "scenarios",
    "sharding",
    "errors",
    "__version__",
]
