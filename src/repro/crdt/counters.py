"""Counter CRDTs: G-Counter and PN-Counter.

The counter is the tutorial's canonical "commutative update" example:
increments from different replicas commute, so no coordination is
needed — the CRDT just has to avoid double-counting when states meet
repeatedly, which per-replica entries + pointwise max achieve.
"""

from __future__ import annotations

from typing import Hashable

from .base import StateCRDT


class GCounter(StateCRDT):
    """Grow-only counter.

    >>> a, b = GCounter("a"), GCounter("b")
    >>> a.increment(3); b.increment(2)
    >>> _ = a.merge(b)
    >>> a.value
    5
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._counts: dict[Hashable, int] = {}

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be positive) to this replica's entry."""
        if amount <= 0:
            raise ValueError("GCounter can only grow; use PNCounter to decrement")
        self._counts[self.replica_id] = self._counts.get(self.replica_id, 0) + amount

    @property
    def value(self) -> int:
        return sum(self._counts.values())

    def merge(self, other: "GCounter") -> "GCounter":
        self._require_same_type(other)
        for replica, count in other._counts.items():
            if count > self._counts.get(replica, 0):
                self._counts[replica] = count
        return self

    def copy(self) -> "GCounter":
        clone = self._blank_copy()
        clone._counts = dict(self._counts)
        return clone

    def state(self) -> dict:
        return dict(self._counts)

    @classmethod
    def from_state(cls, replica_id: Hashable, state: dict) -> "GCounter":
        counter = cls(replica_id)
        counter._counts = dict(state)
        return counter


class PNCounter(StateCRDT):
    """Increment/decrement counter: two G-Counters (P and N).

    >>> a = PNCounter("a")
    >>> a.increment(10); a.decrement(4)
    >>> a.value
    6
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._p = GCounter(replica_id)
        self._n = GCounter(replica_id)

    def increment(self, amount: int = 1) -> None:
        self._p.increment(amount)

    def decrement(self, amount: int = 1) -> None:
        self._n.increment(amount)

    @property
    def value(self) -> int:
        return self._p.value - self._n.value

    def merge(self, other: "PNCounter") -> "PNCounter":
        self._require_same_type(other)
        self._p.merge(other._p)
        self._n.merge(other._n)
        return self

    def copy(self) -> "PNCounter":
        clone = self._blank_copy()
        clone._p = self._p.copy()
        clone._n = self._n.copy()
        return clone

    def state(self) -> dict:
        return {"p": self._p.state(), "n": self._n.state()}

    @classmethod
    def from_state(cls, replica_id: Hashable, state: dict) -> "PNCounter":
        counter = cls(replica_id)
        counter._p = GCounter.from_state(replica_id, state["p"])
        counter._n = GCounter.from_state(replica_id, state["n"])
        return counter
