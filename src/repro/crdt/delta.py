"""Delta-state CRDTs: ship small deltas, join like full states.

Full-state shipping costs O(state) bandwidth per sync; op-based
shipping needs causal broadcast.  Delta CRDTs are the middle point the
tutorial's mechanism axis ends on: every mutation also produces a
**delta** — a small state fragment in the same lattice — and the
receiver joins it with its ordinary merge.  Deltas are idempotent and
re-orderable (unlike ops), so they tolerate the same sloppy delivery
as full states at a fraction of the bytes; E6's bandwidth ablation
measures exactly that gap.

Both types here expose the classic interface: mutators return the
delta, ``merge`` accepts either a full peer or a delta (they are the
same kind of object), and ``split()`` drains the accumulated delta
group for batched gossip.

Note that :class:`DeltaORSet` is *not* a subclass of the tombstone-free
:class:`~repro.crdt.sets.ORSet` (ORSWOT): the ORSWOT trick encodes
removals as "dot covered by the causal context but absent from the
store", and a context expressed as a per-replica max would make a
small delta claim knowledge of every earlier dot from its replica —
merging it would wrongly delete unrelated live elements.  Deltas need
**explicit per-dot tombstones**, so this class keeps the classic
tags+tombstones representation (with immutable ``frozenset`` tag sets
shared on copy).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from .base import StateCRDT
from .counters import GCounter

_NO_TAGS: frozenset = frozenset()


class DeltaGCounter(GCounter):
    """G-Counter whose increments also yield mergeable deltas.

    >>> a, b = DeltaGCounter("a"), DeltaGCounter("b")
    >>> delta = a.increment(5)
    >>> _ = b.merge(delta)           # ship just the delta
    >>> b.value
    5
    """

    def __init__(self, replica_id: Hashable) -> None:
        super().__init__(replica_id)
        self._delta_group: dict[Hashable, int] = {}

    def increment(self, amount: int = 1) -> "DeltaGCounter":  # type: ignore[override]
        super().increment(amount)
        mine = self._counts[self.replica_id]
        self._delta_group[self.replica_id] = mine
        delta = DeltaGCounter(self.replica_id)
        delta._counts = {self.replica_id: mine}
        return delta

    def split(self) -> "DeltaGCounter | None":
        """Drain the accumulated delta group (None when empty)."""
        if not self._delta_group:
            return None
        delta = DeltaGCounter(self.replica_id)
        delta._counts = dict(self._delta_group)
        self._delta_group = {}
        return delta

    def merge(self, other: GCounter) -> "DeltaGCounter":  # type: ignore[override]
        # Accept any GCounter-shaped state (full or delta).
        if not isinstance(other, GCounter):
            raise TypeError(f"cannot merge {type(other).__name__}")
        for replica, count in other._counts.items():
            if count > self._counts.get(replica, 0):
                self._counts[replica] = count
                # Anything that changed us is worth forwarding.
                if count > self._delta_group.get(replica, 0):
                    self._delta_group[replica] = count
        return self

    def copy(self) -> "DeltaGCounter":  # type: ignore[override]
        clone = super().copy()
        clone._delta_group = dict(self._delta_group)
        return clone


class DeltaORSet(StateCRDT):
    """OR-Set with delta mutators (explicit tombstones — see module
    docstring for why this cannot ride on the ORSWOT base class).

    Deltas carry only the touched element's tags/tombstones; merging a
    delta is the normal OR-Set join.  Tag sets are immutable
    (``frozenset``), so copies share them and merge skips an element
    when the incoming set is a subset of ours.

    >>> a, b = DeltaORSet("a"), DeltaORSet("b")
    >>> d1 = a.add("x")
    >>> _ = b.merge(d1)
    >>> "x" in b
    True
    >>> d2 = b.remove("x")
    >>> _ = a.merge(d2)
    >>> "x" in a
    False
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._counter = 0
        self._tags: dict[Any, frozenset] = {}        # element -> live+dead tags
        self._tombstones: dict[Any, frozenset] = {}  # element -> dead tags
        self._maxc: dict[Hashable, int] = {}         # replica -> max counter seen
        self._delta: DeltaORSet | None = None

    # -- queries ----------------------------------------------------------
    def live_tags(self, item: Any) -> frozenset:
        tags = self._tags.get(item)
        if tags is None:
            return _NO_TAGS
        dead = self._tombstones.get(item)
        return tags if dead is None else tags - dead

    def __contains__(self, item: Any) -> bool:
        return bool(self.live_tags(item))

    def __iter__(self) -> Iterator:
        return iter(self.value)

    def __len__(self) -> int:
        return sum(1 for item in self._tags if self.live_tags(item))

    @property
    def value(self) -> frozenset:
        return frozenset(item for item in self._tags if self.live_tags(item))

    # -- delta plumbing ---------------------------------------------------
    def _delta_sink(self) -> "DeltaORSet":
        if self._delta is None:
            self._delta = DeltaORSet(self.replica_id)
        return self._delta

    @staticmethod
    def _accumulate(into: dict, item: Any, tags: frozenset) -> None:
        """Union ``tags`` into ``into[item]`` (immutable-set discipline:
        replace, never mutate)."""
        cur = into.get(item)
        into[item] = tags if cur is None else cur | tags

    def _cover(self, tags: frozenset) -> None:
        """Extend ``_maxc`` over ``tags`` so a receiver merging this
        delta advances its counter exactly as a full-state merge would."""
        maxc = self._maxc
        for replica, count in tags:
            if count > maxc.get(replica, 0):
                maxc[replica] = count

    def _cover_from(self, other_maxc: dict) -> None:
        maxc = self._maxc
        for replica, count in other_maxc.items():
            if count > maxc.get(replica, 0):
                maxc[replica] = count

    # -- mutators ---------------------------------------------------------
    def add(self, item: Any) -> "DeltaORSet":
        self._counter += 1
        self._maxc[self.replica_id] = self._counter
        tag = (self.replica_id, self._counter)
        single = frozenset((tag,))
        cur = self._tags.get(item)
        self._tags[item] = single if cur is None else cur | single
        delta = DeltaORSet(self.replica_id)
        delta._tags = {item: single}
        delta._maxc = {self.replica_id: self._counter}
        sink = self._delta_sink()
        self._accumulate(sink._tags, item, single)
        sink._cover(single)
        return delta

    def remove(self, item: Any) -> "DeltaORSet":
        """Tombstone every tag of ``item`` observed at this replica."""
        observed = self.live_tags(item)
        delta = DeltaORSet(self.replica_id)
        if observed:
            dead = self._tombstones.get(item)
            self._tombstones[item] = (
                observed if dead is None else dead | observed
            )
            delta._tags = {item: observed}
            delta._tombstones = {item: observed}
            delta._cover(observed)
            sink = self._delta_sink()
            self._accumulate(sink._tags, item, observed)
            self._accumulate(sink._tombstones, item, observed)
            sink._cover(observed)
        return delta

    def split(self) -> "DeltaORSet | None":
        """Drain the accumulated delta group (None when empty)."""
        delta, self._delta = self._delta, None
        return delta

    # -- join -------------------------------------------------------------
    def merge(self, other: "DeltaORSet") -> "DeltaORSet":
        if not isinstance(other, DeltaORSet):
            raise TypeError(f"cannot merge {type(other).__name__}")
        sink = self._delta_sink()
        mine = self._tags
        for item, tags in other._tags.items():
            cur = mine.get(item)
            if cur is None:
                mine[item] = tags
                self._accumulate(sink._tags, item, tags)
            elif cur is not tags and not tags <= cur:
                mine[item] = cur | tags
                self._accumulate(sink._tags, item, tags - cur)
        dead_mine = self._tombstones
        for item, dead in other._tombstones.items():
            cur = dead_mine.get(item)
            if cur is None:
                new = dead
            elif cur is not dead and not dead <= cur:
                new = dead - cur
            else:
                new = None
            if new:
                dead_mine[item] = dead if cur is None else cur | dead
                self._accumulate(sink._tombstones, item, new)
                self._accumulate(sink._tags, item, new)
        maxc = self._maxc
        for replica, count in other._maxc.items():
            if count > maxc.get(replica, 0):
                maxc[replica] = count
        sink._cover_from(other._maxc)
        # Keep our tag counter ahead of every tag we have seen from
        # ourselves, so tags stay unique even after state restore.
        seen = maxc.get(self.replica_id, 0)
        if seen > self._counter:
            self._counter = seen
        if not sink._tags and not sink._tombstones:
            self._delta = None
        return self

    def copy(self) -> "DeltaORSet":
        clone = self._blank_copy()
        clone._counter = self._counter
        clone._tags = dict(self._tags)
        clone._tombstones = dict(self._tombstones)
        clone._maxc = dict(self._maxc)
        clone._delta = self._delta.copy() if self._delta is not None else None
        return clone

    def state(self) -> dict:
        return {
            "tags": {repr(k): sorted(v) for k, v in self._tags.items()},
            "tombstones": {
                repr(k): sorted(v) for k, v in self._tombstones.items()
            },
        }
