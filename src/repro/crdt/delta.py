"""Delta-state CRDTs: ship small deltas, join like full states.

Full-state shipping costs O(state) bandwidth per sync; op-based
shipping needs causal broadcast.  Delta CRDTs are the middle point the
tutorial's mechanism axis ends on: every mutation also produces a
**delta** — a small state fragment in the same lattice — and the
receiver joins it with its ordinary merge.  Deltas are idempotent and
re-orderable (unlike ops), so they tolerate the same sloppy delivery
as full states at a fraction of the bytes; E6's bandwidth ablation
measures exactly that gap.

Both types here expose the classic interface: mutators return the
delta, ``merge`` accepts either a full peer or a delta (they are the
same kind of object), and ``split()`` drains the accumulated delta
group for batched gossip.
"""

from __future__ import annotations

from typing import Any, Hashable

from .counters import GCounter
from .sets import ORSet


class DeltaGCounter(GCounter):
    """G-Counter whose increments also yield mergeable deltas.

    >>> a, b = DeltaGCounter("a"), DeltaGCounter("b")
    >>> delta = a.increment(5)
    >>> _ = b.merge(delta)           # ship just the delta
    >>> b.value
    5
    """

    def __init__(self, replica_id: Hashable) -> None:
        super().__init__(replica_id)
        self._delta_group: dict[Hashable, int] = {}

    def increment(self, amount: int = 1) -> "DeltaGCounter":  # type: ignore[override]
        super().increment(amount)
        mine = self._counts[self.replica_id]
        self._delta_group[self.replica_id] = mine
        delta = DeltaGCounter(self.replica_id)
        delta._counts = {self.replica_id: mine}
        return delta

    def split(self) -> "DeltaGCounter | None":
        """Drain the accumulated delta group (None when empty)."""
        if not self._delta_group:
            return None
        delta = DeltaGCounter(self.replica_id)
        delta._counts = dict(self._delta_group)
        self._delta_group = {}
        return delta

    def merge(self, other: GCounter) -> "DeltaGCounter":  # type: ignore[override]
        # Accept any GCounter-shaped state (full or delta).
        if not isinstance(other, GCounter):
            raise TypeError(f"cannot merge {type(other).__name__}")
        for replica, count in other._counts.items():
            if count > self._counts.get(replica, 0):
                self._counts[replica] = count
                # Anything that changed us is worth forwarding.
                if count > self._delta_group.get(replica, 0):
                    self._delta_group[replica] = count
        return self

    def copy(self) -> "DeltaGCounter":  # type: ignore[override]
        clone = super().copy()
        clone._delta_group = dict(self._delta_group)
        return clone


class DeltaORSet(ORSet):
    """OR-Set with delta mutators.

    Deltas carry only the touched element's tags/tombstones; merging a
    delta is the normal OR-Set join.

    >>> a, b = DeltaORSet("a"), DeltaORSet("b")
    >>> d1 = a.add("x")
    >>> _ = b.merge(d1)
    >>> "x" in b
    True
    >>> d2 = b.remove("x")
    >>> _ = a.merge(d2)
    >>> "x" in a
    False
    """

    def __init__(self, replica_id: Hashable) -> None:
        super().__init__(replica_id)
        self._delta: DeltaORSet | None = None

    def _delta_sink(self) -> "DeltaORSet":
        if self._delta is None:
            self._delta = DeltaORSet(self.replica_id)
        return self._delta

    def add(self, item: Any) -> "DeltaORSet":  # type: ignore[override]
        super().add(item)
        tag = (self.replica_id, self._counter)
        delta = DeltaORSet(self.replica_id)
        delta._tags = {item: {tag}}
        sink = self._delta_sink()
        sink._tags.setdefault(item, set()).add(tag)
        return delta

    def remove(self, item: Any) -> "DeltaORSet":  # type: ignore[override]
        observed = set(self.live_tags(item))
        super().remove(item)
        delta = DeltaORSet(self.replica_id)
        if observed:
            delta._tags = {item: set(observed)}
            delta._tombstones = {item: set(observed)}
            sink = self._delta_sink()
            sink._tags.setdefault(item, set()).update(observed)
            sink._tombstones.setdefault(item, set()).update(observed)
        return delta

    def split(self) -> "DeltaORSet | None":
        """Drain the accumulated delta group (None when empty)."""
        delta, self._delta = self._delta, None
        return delta

    def merge(self, other: ORSet) -> "DeltaORSet":  # type: ignore[override]
        if not isinstance(other, ORSet):
            raise TypeError(f"cannot merge {type(other).__name__}")
        sink = self._delta_sink()
        for item, tags in other._tags.items():
            new = tags - self._tags.get(item, set())
            if new:
                sink._tags.setdefault(item, set()).update(new)
            self._tags.setdefault(item, set()).update(tags)
            for replica, count in tags:
                if replica == self.replica_id and count > self._counter:
                    self._counter = count
        for item, dead in other._tombstones.items():
            new = dead - self._tombstones.get(item, set())
            if new:
                sink._tombstones.setdefault(item, set()).update(new)
                sink._tags.setdefault(item, set()).update(new)
            self._tombstones.setdefault(item, set()).update(dead)
        if not sink._tags and not sink._tombstones:
            self._delta = None
        return self

    def copy(self) -> "DeltaORSet":  # type: ignore[override]
        clone = super().copy()
        clone._delta = self._delta.copy() if self._delta is not None else None
        return clone
