"""Op-based (commutative) CRDTs and the causal delivery they require.

Where state-based CRDTs ship whole states and need only eventual
pairwise contact, op-based CRDTs ship small operations but demand a
**reliable causal broadcast**: every op delivered exactly once, after
the ops that causally precede it.  :class:`CausalBuffer` implements
that delivery discipline with vector clocks (dedup + causal hold-back
queue), and the two op-based types here — counter and OR-Set — show
the two levels of ordering need:

* counter ops commute unconditionally (causal order unnecessary),
* OR-Set ``remove`` must not arrive before the ``add`` it observed —
  the canonical example of why op-based CRDTs need causal delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..clocks import VectorClock


@dataclass(frozen=True)
class OpEnvelope:
    """A broadcast operation, stamped for causal delivery.

    ``clock`` is the sender's vector clock *after* ticking for this op,
    so the op's own slot is ``clock[origin]``.
    """

    origin: Hashable
    clock: VectorClock
    payload: Any


class CausalBuffer:
    """Per-replica causal delivery: dedup, order, hold back early ops.

    ``deliver`` is called with every received envelope (duplicates and
    reordering allowed); ``apply`` fires exactly once per op, in causal
    order.
    """

    def __init__(self, replica_id: Hashable, apply: Callable[[OpEnvelope], None]):
        self.replica_id = replica_id
        self.apply = apply
        self.clock = VectorClock()
        self._pending: list[OpEnvelope] = []
        self.delivered = 0
        self.duplicates = 0
        self.held_back = 0

    def stamp_local(self, payload: Any) -> OpEnvelope:
        """Stamp (and locally apply) an op originated at this replica."""
        self.clock = self.clock.tick(self.replica_id)
        envelope = OpEnvelope(self.replica_id, self.clock, payload)
        self.apply(envelope)
        self.delivered += 1
        return envelope

    def receive(self, envelope: OpEnvelope) -> None:
        """Accept a (possibly duplicate / early) envelope from the network."""
        if self._already_seen(envelope):
            self.duplicates += 1
            return
        if self._deliverable(envelope):
            self._deliver(envelope)
            self._drain()
        else:
            self.held_back += 1
            self._pending.append(envelope)

    def _already_seen(self, envelope: OpEnvelope) -> bool:
        return self.clock[envelope.origin] >= envelope.clock[envelope.origin]

    def _deliverable(self, envelope: OpEnvelope) -> bool:
        """Next-in-sequence from its origin, and all its causal
        dependencies already delivered."""
        if envelope.clock[envelope.origin] != self.clock[envelope.origin] + 1:
            return False
        return all(
            envelope.clock[node] <= self.clock[node]
            for node in envelope.clock
            if node != envelope.origin
        )

    def _deliver(self, envelope: OpEnvelope) -> None:
        self.clock = self.clock.merge(envelope.clock)
        self.apply(envelope)
        self.delivered += 1

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for envelope in list(self._pending):
                if self._already_seen(envelope):
                    self._pending.remove(envelope)
                    self.duplicates += 1
                    progressed = True
                elif self._deliverable(envelope):
                    self._pending.remove(envelope)
                    self._deliver(envelope)
                    progressed = True

    @property
    def pending_count(self) -> int:
        return len(self._pending)


class OpCounter:
    """Op-based PN-counter.  Ops: ``("add", amount)``.

    Increments and decrements commute, so this type is correct even
    under plain reliable delivery; we still run it through
    :class:`CausalBuffer` for exactly-once.
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self.buffer = CausalBuffer(replica_id, self._apply)
        self.value = 0

    def increment(self, amount: int = 1) -> OpEnvelope:
        return self.buffer.stamp_local(("add", amount))

    def decrement(self, amount: int = 1) -> OpEnvelope:
        return self.buffer.stamp_local(("add", -amount))

    def receive(self, envelope: OpEnvelope) -> None:
        self.buffer.receive(envelope)

    def _apply(self, envelope: OpEnvelope) -> None:
        _op, amount = envelope.payload
        self.value += amount


class OpORSet:
    """Op-based observed-remove set.

    Ops carry unique tags: ``("add", element, tag)`` and
    ``("remove", element, frozenset_of_tags)``.  With causal delivery a
    remove always follows the adds it observed, so applying ops in
    delivery order is enough; concurrent adds survive (add-wins).
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self.buffer = CausalBuffer(replica_id, self._apply)
        self._tags: dict[Any, set] = {}
        self._op_counter = 0

    # -- local operations ------------------------------------------------
    def add(self, element: Any) -> OpEnvelope:
        self._op_counter += 1
        tag = (self.replica_id, self._op_counter)
        return self.buffer.stamp_local(("add", element, tag))

    def remove(self, element: Any) -> OpEnvelope:
        observed = frozenset(self._tags.get(element, ()))
        return self.buffer.stamp_local(("remove", element, observed))

    def receive(self, envelope: OpEnvelope) -> None:
        self.buffer.receive(envelope)

    # -- op application ---------------------------------------------------
    def _apply(self, envelope: OpEnvelope) -> None:
        kind, element, detail = envelope.payload
        if kind == "add":
            self._tags.setdefault(element, set()).add(detail)
        else:
            live = self._tags.get(element)
            if live is not None:
                live -= detail
                if not live:
                    del self._tags[element]

    # -- queries -----------------------------------------------------------
    def __contains__(self, element: Any) -> bool:
        return element in self._tags

    @property
    def value(self) -> frozenset:
        return frozenset(self._tags)

    def __len__(self) -> int:
        return len(self._tags)
