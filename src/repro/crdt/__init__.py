"""Conflict-free replicated data types.

State-based: :class:`GCounter`, :class:`PNCounter`,
:class:`LWWRegister`, :class:`MVRegister`, :class:`GSet`,
:class:`TwoPSet`, :class:`ORSet`, :class:`LWWElementSet`,
:class:`LWWMap`, :class:`ORMap`, :class:`RGA`.

Op-based (with causal delivery): :class:`OpCounter`, :class:`OpORSet`,
:class:`CausalBuffer`.

Delta-state: :class:`DeltaGCounter`, :class:`DeltaORSet`.
"""

from .base import StateCRDT
from .counters import GCounter, PNCounter
from .delta import DeltaGCounter, DeltaORSet
from .maps import LWWMap, ORMap
from .opbased import CausalBuffer, OpCounter, OpEnvelope, OpORSet
from .registers import LWWRegister, MVRegister
from .rga import RGA, RGANode
from .sets import GSet, LWWElementSet, ORSet, TwoPSet

__all__ = [
    "StateCRDT",
    "GCounter",
    "PNCounter",
    "LWWRegister",
    "MVRegister",
    "GSet",
    "TwoPSet",
    "ORSet",
    "LWWElementSet",
    "LWWMap",
    "ORMap",
    "RGA",
    "RGANode",
    "OpCounter",
    "OpORSet",
    "OpEnvelope",
    "CausalBuffer",
    "DeltaGCounter",
    "DeltaORSet",
]
