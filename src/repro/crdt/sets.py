"""Set CRDTs: G-Set, 2P-Set, OR-Set, LWW-Element-Set.

Sets expose the add/remove conflict the tutorial uses to show why
"merge" needs application semantics: what should ``{add(x) ∥
remove(x)}`` converge to?  Each type here answers differently —
G-Set forbids removal, 2P-Set makes removal permanent, OR-Set is
add-wins (an add not yet seen by the remove survives), and the
LWW-Element-Set arbitrates by timestamp with a configurable bias.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from .base import StateCRDT


class GSet(StateCRDT):
    """Grow-only set: merge is union; removal is impossible."""

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._items: set = set()

    def add(self, item: Any) -> None:
        self._items.add(item)

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def value(self) -> frozenset:
        return frozenset(self._items)

    def merge(self, other: "GSet") -> "GSet":
        self._require_same_type(other)
        self._items |= other._items
        return self

    def copy(self) -> "GSet":
        clone = self._blank_copy()
        clone._items = set(self._items)
        return clone

    def state(self) -> list:
        return sorted(self._items, key=repr)


class TwoPSet(StateCRDT):
    """Two-phase set: removal is a permanent tombstone.

    An element can be added and removed once; re-adding a removed
    element has no effect (the tombstone wins forever).  Cheap, but the
    wrong tool when elements recur — that's what OR-Set fixes.
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._added: set = set()
        self._removed: set = set()

    def add(self, item: Any) -> None:
        self._added.add(item)

    def remove(self, item: Any) -> None:
        """Tombstone ``item``.  Removing a never-added element is legal
        (it just pre-blocks any future add)."""
        self._removed.add(item)

    def __contains__(self, item: Any) -> bool:
        return item in self._added and item not in self._removed

    def __iter__(self) -> Iterator:
        return iter(self.value)

    def __len__(self) -> int:
        return len(self._added - self._removed)

    @property
    def value(self) -> frozenset:
        return frozenset(self._added - self._removed)

    def merge(self, other: "TwoPSet") -> "TwoPSet":
        self._require_same_type(other)
        self._added |= other._added
        self._removed |= other._removed
        return self

    def copy(self) -> "TwoPSet":
        clone = self._blank_copy()
        clone._added = set(self._added)
        clone._removed = set(self._removed)
        return clone

    def state(self) -> dict:
        return {
            "added": sorted(self._added, key=repr),
            "removed": sorted(self._removed, key=repr),
        }


class ORSet(StateCRDT):
    """Observed-remove set (add-wins).

    Every add creates a unique tag; remove tombstones exactly the tags
    it has *observed*.  A concurrent add's tag is not observed by the
    remove, so the element survives — "add wins".

    >>> a, b = ORSet("a"), ORSet("b")
    >>> a.add("x")
    >>> _ = b.merge(a.copy())
    >>> b.remove("x")      # b removes the add it saw
    >>> a.add("x")         # concurrent re-add at a
    >>> _ = a.merge(b); _ = b.merge(a.copy())
    >>> ("x" in a, "x" in b)
    (True, True)
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._counter = 0
        self._tags: dict[Any, set[tuple]] = {}      # element -> live+dead tags
        self._tombstones: dict[Any, set[tuple]] = {}  # element -> dead tags

    def _fresh_tag(self) -> tuple:
        self._counter += 1
        return (self.replica_id, self._counter)

    def add(self, item: Any) -> None:
        self._tags.setdefault(item, set()).add(self._fresh_tag())

    def remove(self, item: Any) -> None:
        """Tombstone every tag of ``item`` observed at this replica."""
        live = self.live_tags(item)
        if live:
            self._tombstones.setdefault(item, set()).update(live)

    def live_tags(self, item: Any) -> set[tuple]:
        return self._tags.get(item, set()) - self._tombstones.get(item, set())

    def __contains__(self, item: Any) -> bool:
        return bool(self.live_tags(item))

    def __iter__(self) -> Iterator:
        return iter(self.value)

    def __len__(self) -> int:
        return sum(1 for item in self._tags if self.live_tags(item))

    @property
    def value(self) -> frozenset:
        return frozenset(item for item in self._tags if self.live_tags(item))

    def merge(self, other: "ORSet") -> "ORSet":
        self._require_same_type(other)
        for item, tags in other._tags.items():
            self._tags.setdefault(item, set()).update(tags)
        for item, dead in other._tombstones.items():
            self._tombstones.setdefault(item, set()).update(dead)
        # Keep our tag counter ahead of every tag we have seen from
        # ourselves, so tags stay unique even after state restore.
        for tags in other._tags.values():
            for replica, count in tags:
                if replica == self.replica_id and count > self._counter:
                    self._counter = count
        return self

    def copy(self) -> "ORSet":
        clone = self._blank_copy()
        clone._counter = self._counter
        clone._tags = {item: set(tags) for item, tags in self._tags.items()}
        clone._tombstones = {
            item: set(dead) for item, dead in self._tombstones.items()
        }
        return clone

    def state(self) -> dict:
        return {
            "tags": {repr(k): sorted(v) for k, v in self._tags.items()},
            "tombstones": {
                repr(k): sorted(v) for k, v in self._tombstones.items()
            },
        }


class LWWElementSet(StateCRDT):
    """Set arbitrated per element by (timestamp, replica) pairs.

    ``bias`` chooses the winner when add and remove carry the same
    stamp: ``"add"`` (default) or ``"remove"``.  Timestamps come from an
    internal per-instance Lamport counter advanced on merge, so a
    replica that saw a remove and then re-adds always wins locally.
    """

    def __init__(self, replica_id: Hashable, bias: str = "add") -> None:
        if bias not in ("add", "remove"):
            raise ValueError("bias must be 'add' or 'remove'")
        self.replica_id = replica_id
        self.bias = bias
        self._seen = 0
        self._adds: dict[Any, tuple[int, str]] = {}
        self._removes: dict[Any, tuple[int, str]] = {}

    def _next_stamp(self) -> tuple[int, str]:
        self._seen += 1
        return (self._seen, str(self.replica_id))

    def add(self, item: Any) -> None:
        self._adds[item] = max(
            self._adds.get(item, (0, "")), self._next_stamp()
        )

    def remove(self, item: Any) -> None:
        self._removes[item] = max(
            self._removes.get(item, (0, "")), self._next_stamp()
        )

    def __contains__(self, item: Any) -> bool:
        add = self._adds.get(item)
        if add is None:
            return False
        remove = self._removes.get(item)
        if remove is None:
            return True
        if add == remove:  # pragma: no cover - distinct replicas differ
            return self.bias == "add"
        if add[0] == remove[0]:
            # Same logical instant at different replicas: bias decides.
            return self.bias == "add"
        return add > remove

    @property
    def value(self) -> frozenset:
        return frozenset(item for item in self._adds if item in self)

    def __iter__(self) -> Iterator:
        return iter(self.value)

    def __len__(self) -> int:
        return len(self.value)

    def merge(self, other: "LWWElementSet") -> "LWWElementSet":
        self._require_same_type(other)
        for item, stamp in other._adds.items():
            self._seen = max(self._seen, stamp[0])
            if stamp > self._adds.get(item, (0, "")):
                self._adds[item] = stamp
        for item, stamp in other._removes.items():
            self._seen = max(self._seen, stamp[0])
            if stamp > self._removes.get(item, (0, "")):
                self._removes[item] = stamp
        return self

    def copy(self) -> "LWWElementSet":
        clone = self._blank_copy()
        clone.bias = self.bias
        clone._seen = self._seen
        clone._adds = dict(self._adds)
        clone._removes = dict(self._removes)
        return clone

    def state(self) -> dict:
        return {
            "adds": {repr(k): v for k, v in self._adds.items()},
            "removes": {repr(k): v for k, v in self._removes.items()},
        }
