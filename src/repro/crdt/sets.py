"""Set CRDTs: G-Set, 2P-Set, OR-Set, LWW-Element-Set.

Sets expose the add/remove conflict the tutorial uses to show why
"merge" needs application semantics: what should ``{add(x) ∥
remove(x)}`` converge to?  Each type here answers differently —
G-Set forbids removal, 2P-Set makes removal permanent, OR-Set is
add-wins (an add not yet seen by the remove survives), and the
LWW-Element-Set arbitrates by timestamp with a configurable bias.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from .base import StateCRDT


class GSet(StateCRDT):
    """Grow-only set: merge is union; removal is impossible."""

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._items: set = set()

    def add(self, item: Any) -> None:
        self._items.add(item)

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def value(self) -> frozenset:
        return frozenset(self._items)

    def merge(self, other: "GSet") -> "GSet":
        self._require_same_type(other)
        self._items |= other._items
        return self

    def copy(self) -> "GSet":
        clone = self._blank_copy()
        clone._items = set(self._items)
        return clone

    def state(self) -> list:
        return sorted(self._items, key=repr)


class TwoPSet(StateCRDT):
    """Two-phase set: removal is a permanent tombstone.

    An element can be added and removed once; re-adding a removed
    element has no effect (the tombstone wins forever).  Cheap, but the
    wrong tool when elements recur — that's what OR-Set fixes.
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._added: set = set()
        self._removed: set = set()

    def add(self, item: Any) -> None:
        self._added.add(item)

    def remove(self, item: Any) -> None:
        """Tombstone ``item``.  Removing a never-added element is legal
        (it just pre-blocks any future add)."""
        self._removed.add(item)

    def __contains__(self, item: Any) -> bool:
        return item in self._added and item not in self._removed

    def __iter__(self) -> Iterator:
        return iter(self.value)

    def __len__(self) -> int:
        return len(self._added - self._removed)

    @property
    def value(self) -> frozenset:
        return frozenset(self._added - self._removed)

    def merge(self, other: "TwoPSet") -> "TwoPSet":
        self._require_same_type(other)
        self._added |= other._added
        self._removed |= other._removed
        return self

    def copy(self) -> "TwoPSet":
        clone = self._blank_copy()
        clone._added = set(self._added)
        clone._removed = set(self._removed)
        return clone

    def state(self) -> dict:
        return {
            "added": sorted(self._added, key=repr),
            "removed": sorted(self._removed, key=repr),
        }


#: Shared empty tag set — ``live_tags`` on an absent element allocates
#: nothing.
_NO_TAGS: frozenset = frozenset()


class ORSet(StateCRDT):
    """Observed-remove set (add-wins), tombstone-free — an ORSWOT
    ("observed-remove set without tombstones", the Riak design).

    Every add mints a unique **dot** ``(replica, counter)``; the state
    keeps only the *live* dots per element plus a **causal context**
    (``_maxc``): the highest counter seen from each replica.  Because a
    replica mints its dots sequentially and states travel whole, any
    state's knowledge of replica *r* is always the prefix ``1..maxc[r]``
    — so "dot covered by the context but absent from the live store"
    *is* the tombstone, and removed elements cost nothing forever after.
    Merge keeps a dot iff both sides hold it live, or one side holds it
    and the other has never seen it (add-wins for concurrent adds).

    Dot sets are immutable (``frozenset``): :meth:`copy` — the gossip
    wire snapshot — is a shallow dict copy sharing them, and merge
    skips an element in O(1) when both sides hold the same object.

    >>> a, b = ORSet("a"), ORSet("b")
    >>> a.add("x")
    >>> _ = b.merge(a.copy())
    >>> b.remove("x")      # b removes the add it saw
    >>> a.add("x")         # concurrent re-add at a
    >>> _ = a.merge(b); _ = b.merge(a.copy())
    >>> ("x" in a, "x" in b)
    (True, True)
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._counter = 0
        self._dots: dict[Any, frozenset] = {}   # element -> live dots only
        self._maxc: dict[Hashable, int] = {}    # causal context: replica -> max counter

    def _fresh_tag(self) -> tuple:
        self._counter += 1
        self._maxc[self.replica_id] = self._counter
        return (self.replica_id, self._counter)

    def add(self, item: Any) -> None:
        dots = self._dots.get(item)
        dot = self._fresh_tag()
        self._dots[item] = frozenset((dot,)) if dots is None else dots | {dot}

    def remove(self, item: Any) -> None:
        """Drop every dot of ``item`` observed at this replica.  The
        causal context still covers them, which is what tells peers the
        removal happened."""
        self._dots.pop(item, None)

    def live_tags(self, item: Any) -> frozenset:
        return self._dots.get(item, _NO_TAGS)

    def __contains__(self, item: Any) -> bool:
        return item in self._dots

    def __iter__(self) -> Iterator:
        return iter(self._dots)

    def __len__(self) -> int:
        return len(self._dots)

    @property
    def value(self) -> frozenset:
        return frozenset(self._dots)

    def merge(self, other: "ORSet") -> "ORSet":
        self._require_same_type(other)
        mine, theirs = self._dots, other._dots
        ctx, octx = self._maxc, other._maxc
        for item, odots in theirs.items():
            cur = mine.get(item)
            if cur is None:
                # New element: adopt the dots the other side holds live,
                # minus any we have already seen (and thus removed).
                keep = [d for d in odots if d[1] > ctx.get(d[0], 0)]
                if len(keep) == len(odots):
                    mine[item] = odots
                elif keep:
                    mine[item] = frozenset(keep)
            elif cur is not odots and cur != odots:
                # One pass per side, no intermediate differences: keep a
                # dot iff both hold it live, or its only holder is the
                # side the other has not caught up with yet.
                merged = {
                    d for d in cur
                    if d in odots or d[1] > octx.get(d[0], 0)
                }
                merged.update(
                    d for d in odots
                    if d not in cur and d[1] > ctx.get(d[0], 0)
                )
                if merged == cur:
                    pass
                elif merged == odots:
                    # Adopt their object so the next exchange between
                    # these replicas short-circuits on identity.
                    mine[item] = odots
                elif merged:
                    mine[item] = frozenset(merged)
                else:
                    del mine[item]
        # Elements only we hold: drop dots the other side has seen and
        # removed (covered by their context, absent from their store).
        for item in [i for i in mine if i not in theirs]:
            cur = mine[item]
            keep = [d for d in cur if d[1] > octx.get(d[0], 0)]
            if len(keep) != len(cur):
                if keep:
                    mine[item] = frozenset(keep)
                else:
                    del mine[item]
        for replica, count in octx.items():
            if count > ctx.get(replica, 0):
                ctx[replica] = count
        # Keep our dot counter ahead of every dot seen from ourselves,
        # so dots stay unique even after state restore.
        seen = ctx.get(self.replica_id, 0)
        if seen > self._counter:
            self._counter = seen
        return self

    def copy(self) -> "ORSet":
        clone = self._blank_copy()
        clone._counter = self._counter
        # Immutable dot sets: sharing them is safe, so the snapshot a
        # gossip round ships is O(live elements), not O(history).
        clone._dots = dict(self._dots)
        clone._maxc = dict(self._maxc)
        return clone

    def state(self) -> dict:
        return {
            "dots": {repr(k): sorted(v) for k, v in self._dots.items()},
            "context": {
                repr(r): c
                for r, c in sorted(self._maxc.items(), key=lambda kv: repr(kv[0]))
            },
        }


class LWWElementSet(StateCRDT):
    """Set arbitrated per element by (timestamp, replica) pairs.

    ``bias`` chooses the winner when add and remove carry the same
    stamp: ``"add"`` (default) or ``"remove"``.  Timestamps come from an
    internal per-instance Lamport counter advanced on merge, so a
    replica that saw a remove and then re-adds always wins locally.
    """

    def __init__(self, replica_id: Hashable, bias: str = "add") -> None:
        if bias not in ("add", "remove"):
            raise ValueError("bias must be 'add' or 'remove'")
        self.replica_id = replica_id
        self.bias = bias
        self._seen = 0
        self._adds: dict[Any, tuple[int, str]] = {}
        self._removes: dict[Any, tuple[int, str]] = {}

    def _next_stamp(self) -> tuple[int, str]:
        self._seen += 1
        return (self._seen, str(self.replica_id))

    def add(self, item: Any) -> None:
        self._adds[item] = max(
            self._adds.get(item, (0, "")), self._next_stamp()
        )

    def remove(self, item: Any) -> None:
        self._removes[item] = max(
            self._removes.get(item, (0, "")), self._next_stamp()
        )

    def __contains__(self, item: Any) -> bool:
        add = self._adds.get(item)
        if add is None:
            return False
        remove = self._removes.get(item)
        if remove is None:
            return True
        if add == remove:  # pragma: no cover - distinct replicas differ
            return self.bias == "add"
        if add[0] == remove[0]:
            # Same logical instant at different replicas: bias decides.
            return self.bias == "add"
        return add > remove

    @property
    def value(self) -> frozenset:
        return frozenset(item for item in self._adds if item in self)

    def __iter__(self) -> Iterator:
        return iter(self.value)

    def __len__(self) -> int:
        return len(self.value)

    def merge(self, other: "LWWElementSet") -> "LWWElementSet":
        self._require_same_type(other)
        for item, stamp in other._adds.items():
            self._seen = max(self._seen, stamp[0])
            if stamp > self._adds.get(item, (0, "")):
                self._adds[item] = stamp
        for item, stamp in other._removes.items():
            self._seen = max(self._seen, stamp[0])
            if stamp > self._removes.get(item, (0, "")):
                self._removes[item] = stamp
        return self

    def copy(self) -> "LWWElementSet":
        clone = self._blank_copy()
        clone.bias = self.bias
        clone._seen = self._seen
        clone._adds = dict(self._adds)
        clone._removes = dict(self._removes)
        return clone

    def state(self) -> dict:
        return {
            "adds": {repr(k): v for k, v in self._adds.items()},
            "removes": {repr(k): v for k, v in self._removes.items()},
        }
