"""RGA — Replicated Growable Array (sequence CRDT).

The sequence CRDT behind collaborative text/list editing.  Every
insert creates an immutable node with a globally unique, totally
ordered id; a node is inserted *after* a parent node (or the virtual
head).  Concurrent inserts after the same parent are ordered
newest-id-first, which keeps runs of characters typed by one replica
contiguous.  Deletes tombstone nodes; merge is a union of nodes and
tombstones — trivially a semilattice because nodes are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from .base import StateCRDT

#: Node ids are ``(counter, replica)`` so they order counter-major,
#: with the replica name breaking ties deterministically.
NodeId = tuple[int, str]

HEAD: NodeId = (0, "")


@dataclass(frozen=True)
class RGANode:
    """One immutable element of the sequence."""

    node_id: NodeId
    parent: NodeId
    value: Any


class RGA(StateCRDT):
    """Replicated growable array.

    >>> a, b = RGA("a"), RGA("b")
    >>> _ = a.append("h"); _ = a.append("i")
    >>> _ = b.merge(a.copy())
    >>> _ = b.insert(1, "!")      # b edits the middle
    >>> _ = a.append("?")         # a concurrently appends
    >>> _ = a.merge(b); _ = b.merge(a.copy())
    >>> "".join(a.to_list()) == "".join(b.to_list())
    True
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._counter = 0
        self._nodes: dict[NodeId, RGANode] = {}
        self._children: dict[NodeId, list[NodeId]] = {}
        self._tombstones: set[NodeId] = set()
        self._order_cache: list[NodeId] | None = None

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def _ordered_ids(self) -> list[NodeId]:
        """Depth-first walk: children of each parent newest-first."""
        if self._order_cache is not None:
            return self._order_cache
        out: list[NodeId] = []
        # Children must be visited newest-id-first; pushing them onto a
        # stack in ascending order makes pop() yield the newest.
        stack = sorted(self._children.get(HEAD, ()))
        while stack:
            node_id = stack.pop()  # pops the newest among remaining
            out.append(node_id)
            for child in sorted(self._children.get(node_id, ())):
                stack.append(child)
        self._order_cache = out
        return out

    def _visible_ids(self) -> list[NodeId]:
        return [nid for nid in self._ordered_ids() if nid not in self._tombstones]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _fresh_id(self) -> NodeId:
        self._counter += 1
        return (self._counter, str(self.replica_id))

    def insert(self, index: int, value: Any) -> NodeId:
        """Insert ``value`` at visible position ``index``."""
        visible = self._visible_ids()
        if not 0 <= index <= len(visible):
            raise IndexError(f"insert index {index} out of range")
        parent = HEAD if index == 0 else visible[index - 1]
        node_id = self._fresh_id()
        self._install(RGANode(node_id, parent, value))
        return node_id

    def append(self, value: Any) -> NodeId:
        return self.insert(len(self), value)

    def insert_after(self, parent: "NodeId | None", value: Any) -> NodeId:
        """Insert after a specific node id (``None`` = document head).

        This is cursor semantics: an editor typing a run of characters
        parents each one on its predecessor, which is what keeps the
        run contiguous across merges (index-based ``insert`` would
        re-resolve the position against concurrently merged content).
        """
        parent = HEAD if parent is None else parent
        if parent != HEAD and parent not in self._nodes:
            raise KeyError(f"unknown parent node {parent!r}")
        node_id = self._fresh_id()
        self._install(RGANode(node_id, parent, value))
        return node_id

    def delete(self, index: int) -> NodeId:
        """Tombstone the element at visible position ``index``."""
        visible = self._visible_ids()
        if not 0 <= index < len(visible):
            raise IndexError(f"delete index {index} out of range")
        node_id = visible[index]
        self._tombstones.add(node_id)
        return node_id

    def _install(self, node: RGANode) -> None:
        if node.node_id in self._nodes:
            return
        self._nodes[node.node_id] = node
        self._children.setdefault(node.parent, []).append(node.node_id)
        counter, _replica = node.node_id
        # Lamport rule: new local ids must exceed every id seen, so an
        # insert made after observing a node sorts in front of it among
        # siblings (RGA's "newer edits first" invariant).
        if counter > self._counter:
            self._counter = counter
        self._order_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def to_list(self) -> list:
        return [self._nodes[nid].value for nid in self._visible_ids()]

    @property
    def value(self) -> list:
        return self.to_list()

    def __len__(self) -> int:
        return len(self._visible_ids())

    def __getitem__(self, index: int) -> Any:
        return self._nodes[self._visible_ids()[index]].value

    def __iter__(self) -> Iterator:
        return iter(self.to_list())

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def merge(self, other: "RGA") -> "RGA":
        self._require_same_type(other)
        for node in other._nodes.values():
            self._install(node)
        if other._tombstones - self._tombstones:
            self._tombstones |= other._tombstones
        self._order_cache = None
        return self

    def copy(self) -> "RGA":
        clone = self._blank_copy()
        clone._counter = self._counter
        clone._nodes = dict(self._nodes)  # RGANode is frozen — shareable
        clone._children = {k: list(v) for k, v in self._children.items()}
        clone._tombstones = set(self._tombstones)
        # The order cache is only ever replaced wholesale (never mutated
        # in place), so sharing the current list is safe.
        clone._order_cache = self._order_cache
        return clone

    def state(self) -> dict:
        return {
            "nodes": [
                (n.node_id, n.parent, n.value) for n in self._nodes.values()
            ],
            "tombstones": sorted(self._tombstones),
        }

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)
