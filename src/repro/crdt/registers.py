"""Register CRDTs: last-writer-wins and multi-value.

Registers are where the taxonomy's conflict-handling choices are most
visible: LWW silently *loses* one of two concurrent writes (cheap,
lossy); the MV-register keeps both as siblings (lossless, pushes
resolution to the reader) — the same design fork as
:class:`repro.storage.LWWStore` vs :class:`repro.storage.SiblingStore`,
but packaged as mergeable values.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..clocks import Ordering, VectorClock
from ..clocks.lamport import LamportStamp
from .base import StateCRDT


class LWWRegister(StateCRDT):
    """Last-writer-wins register with an internal Lamport stamp.

    ``assign`` stamps the write one past the largest stamp this replica
    has *seen* (locally or via merge), so a replica that merges remote
    state and then writes always wins over what it saw.

    >>> a, b = LWWRegister("a"), LWWRegister("b")
    >>> a.assign("x"); b.assign("y")
    >>> _ = a.merge(b); _ = b.merge(a.copy())
    >>> a.value == b.value  # converged; one write lost by arbitration
    True
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._stamp: LamportStamp | None = None
        self._value: Any = None
        self._seen = 0  # highest counter observed anywhere

    def assign(self, value: Any) -> None:
        self._seen += 1
        self._stamp = LamportStamp(self._seen, self.replica_id)
        self._value = value

    @property
    def value(self) -> Any:
        return self._value

    @property
    def stamp(self) -> LamportStamp | None:
        return self._stamp

    def merge(self, other: "LWWRegister") -> "LWWRegister":
        self._require_same_type(other)
        if other._stamp is not None:
            self._seen = max(self._seen, other._stamp.counter)
            if self._stamp is None or other._stamp > self._stamp:
                self._stamp = other._stamp
                self._value = other._value
        return self

    def copy(self) -> "LWWRegister":
        clone = self._blank_copy()
        # LamportStamp is immutable, so the stamp itself is shared.
        clone._stamp = self._stamp
        clone._value = self._value
        clone._seen = self._seen
        return clone

    def state(self) -> dict:
        stamp = None
        if self._stamp is not None:
            stamp = (self._stamp.counter, self._stamp.node)
        return {"stamp": stamp, "value": self._value}


class MVRegister(StateCRDT):
    """Multi-value register: concurrent assigns become siblings.

    ``values`` returns all current siblings; ``assign`` supersedes every
    sibling this replica has seen (its clock dominates their join).

    >>> a, b = MVRegister("a"), MVRegister("b")
    >>> a.assign("x"); b.assign("y")
    >>> _ = a.merge(b)
    >>> sorted(a.values)
    ['x', 'y']
    >>> a.assign("z")   # read-repair: saw both, supersedes both
    >>> a.values
    ['z']
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._siblings: list[tuple[VectorClock, Any]] = []

    def assign(self, value: Any) -> None:
        ceiling = VectorClock()
        for clock, _ in self._siblings:
            ceiling = ceiling.merge(clock)
        self._siblings = [(ceiling.tick(self.replica_id), value)]

    @staticmethod
    def _canonical_key(entry: tuple[VectorClock, Any]) -> str:
        clock, _value = entry
        return repr(sorted(clock.entries().items(), key=lambda kv: str(kv[0])))

    @property
    def values(self) -> list[Any]:
        """Sibling values in a canonical (clock-derived) order, so two
        converged replicas report identical lists."""
        return [
            value
            for _, value in sorted(self._siblings, key=self._canonical_key)
        ]

    @property
    def value(self) -> Any:
        """Single value if unambiguous, else the sibling list."""
        if not self._siblings:
            return None
        if len(self._siblings) == 1:
            return self._siblings[0][1]
        return self.values

    def merge(self, other: "MVRegister") -> "MVRegister":
        self._require_same_type(other)
        combined = list(self._siblings)
        for clock, value in other._siblings:
            dominated = False
            survivors: list[tuple[VectorClock, Any]] = []
            duplicate = False
            for kept_clock, kept_value in combined:
                cmp = clock.compare(kept_clock)
                if cmp is Ordering.BEFORE:
                    dominated = True
                    survivors.append((kept_clock, kept_value))
                elif cmp is Ordering.EQUAL:
                    duplicate = True
                    survivors.append((kept_clock, kept_value))
                elif cmp is Ordering.AFTER:
                    continue  # incoming supersedes this sibling
                else:
                    survivors.append((kept_clock, kept_value))
            combined = survivors
            if not dominated and not duplicate:
                combined.append((clock, value))
        self._siblings = combined
        return self

    def copy(self) -> "MVRegister":
        clone = self._blank_copy()
        # VectorClock is immutable (tick/merge return new instances),
        # so sharing the (clock, value) tuples is safe.
        clone._siblings = list(self._siblings)
        return clone

    def state(self) -> list:
        return [(clock.entries(), value) for clock, value in self._siblings]
