"""CRDT base machinery.

The tutorial's answer to "how do replicas converge without
coordination?" is convergent/commutative replicated data types.  This
package implements both flavors:

* **State-based (CvRDT)** — replicas ship their whole state (or deltas)
  and :meth:`StateCRDT.merge` joins them.  Correctness requires merge
  to be a join-semilattice: commutative, associative, idempotent, and
  every mutation must be an inflation (move up the lattice).  The
  property tests in ``tests/test_crdt_laws.py`` check exactly these
  laws on every type here.

* **Op-based (CmRDT)** — replicas ship operations; concurrent
  operations must commute, and delivery must respect causality (see
  :mod:`repro.crdt.opbased` for the causal-broadcast buffer).

State CRDTs here are mutable objects bound to a ``replica_id``;
``merge`` folds another replica's state in place (and returns ``self``
for chaining).  ``state()``/``from_state()`` give a plain-data wire
form used for size accounting in the bandwidth experiments.
"""

from __future__ import annotations

import abc
import copy as _copy
from typing import Any, Hashable


class StateCRDT(abc.ABC):
    """Abstract state-based CRDT."""

    replica_id: Hashable

    @property
    @abc.abstractmethod
    def value(self) -> Any:
        """The query result an application sees."""

    @abc.abstractmethod
    def merge(self, other: "StateCRDT") -> "StateCRDT":
        """Join ``other``'s state into ours.  Must be a semilattice join."""

    @abc.abstractmethod
    def state(self) -> Any:
        """Plain-data (dict/list/tuple) wire representation."""

    def copy(self) -> "StateCRDT":
        """An independent copy (same replica id) — what a state-based
        gossip round puts on the wire.

        Concrete types override this with a hand-rolled structural copy
        of their own containers (``copy.deepcopy`` is an order of
        magnitude slower and dominated CRDT merge benchmarks).
        Element/payload *values* are shared, not deep-copied: CRDT
        contents are treated as immutable, as the wire form
        (``state()``) already assumes.  Overrides use
        :meth:`_blank_copy` + field copies and call up through
        ``super().copy()`` so subclasses compose.
        """
        return _copy.deepcopy(self)

    def _blank_copy(self) -> "StateCRDT":
        """An uninitialized instance of our exact class, replica id set.

        Per-type ``copy`` implementations fill in their own fields;
        ``__init__`` is deliberately skipped so factory-style
        constructors (e.g. :class:`~repro.crdt.maps.ORMap`) don't need
        their build arguments replayed.
        """
        clone = object.__new__(type(self))
        clone.replica_id = self.replica_id
        return clone

    def _require_same_type(self, other: "StateCRDT") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} @{self.replica_id} value={self.value!r}>"


class Tag:
    """Unique operation tags ``(replica, counter)`` for OR-Sets.

    Tags must be globally unique; per-replica counters guarantee this
    without coordination.
    """

    __slots__ = ()

    @staticmethod
    def fresh(replica: Hashable, counter: int) -> tuple[Hashable, int]:
        return (replica, counter)
