"""Map CRDTs: LWW-Map and OR-Map (CRDT-valued, add-wins keys).

Maps are where CRDT *composition* shows up: the OR-Map nests any
state CRDT as its values, merging them pointwise, while key liveness
follows OR-Set (add-wins) semantics — a concurrent update keeps a key
alive across a remove, and the surviving value is the merge of
everything not superseded by the remove.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator

from .base import StateCRDT
from .sets import ORSet


class LWWMap(StateCRDT):
    """Map with last-writer-wins per key (including deletes).

    Stamps are ``(counter, replica)`` with the counter advanced past
    everything observed via merge, so local read-modify-write wins.
    """

    def __init__(self, replica_id: Hashable) -> None:
        self.replica_id = replica_id
        self._seen = 0
        # key -> (stamp, value, deleted)
        self._entries: dict[Any, tuple[tuple[int, str], Any, bool]] = {}

    def _next_stamp(self) -> tuple[int, str]:
        self._seen += 1
        return (self._seen, str(self.replica_id))

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = (self._next_stamp(), value, False)

    def delete(self, key: Any) -> None:
        self._entries[key] = (self._next_stamp(), None, True)

    def get(self, key: Any, default: Any = None) -> Any:
        entry = self._entries.get(key)
        if entry is None or entry[2]:
            return default
        return entry[1]

    def __contains__(self, key: Any) -> bool:
        entry = self._entries.get(key)
        return entry is not None and not entry[2]

    def __iter__(self) -> Iterator:
        return (k for k, (_s, _v, deleted) in self._entries.items() if not deleted)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    @property
    def value(self) -> dict:
        return {
            k: v for k, (_s, v, deleted) in self._entries.items() if not deleted
        }

    def merge(self, other: "LWWMap") -> "LWWMap":
        self._require_same_type(other)
        for key, entry in other._entries.items():
            self._seen = max(self._seen, entry[0][0])
            mine = self._entries.get(key)
            if mine is None or entry[0] > mine[0]:
                self._entries[key] = entry
        return self

    def copy(self) -> "LWWMap":
        clone = self._blank_copy()
        clone._seen = self._seen
        # Entry tuples are immutable, so a shallow dict copy suffices.
        clone._entries = dict(self._entries)
        return clone

    def state(self) -> dict:
        return {repr(k): (s, v, d) for k, (s, v, d) in self._entries.items()}


class ORMap(StateCRDT):
    """Add-wins map whose values are themselves state CRDTs.

    Parameters
    ----------
    replica_id:
        This replica's id, also passed to value CRDTs it creates.
    value_factory:
        ``value_factory(replica_id)`` builds an empty value CRDT, e.g.
        ``ORMap("r1", PNCounter)`` or ``ORMap("r1", lambda r: ORSet(r))``.

    ``update(key, fn)`` applies a mutation to the key's value CRDT,
    creating it (and marking the key live) if needed.  ``remove``
    tombstones the key's observed liveness tags; a concurrent update
    keeps the key alive (add-wins) and the surviving value is the full
    merged value state.  Value state is retained even for dead keys —
    resetting it would let a replica's contribution regress below what
    other replicas already merged, losing updates (the classic ORMap
    garbage-collection trap), so we trade memory for correctness as
    production CRDT stores do.
    """

    def __init__(
        self,
        replica_id: Hashable,
        value_factory: Callable[[Hashable], StateCRDT],
    ) -> None:
        self.replica_id = replica_id
        self.value_factory = value_factory
        self._keys = ORSet(replica_id)
        self._values: dict[Any, StateCRDT] = {}

    def update(self, key: Any, mutate: Callable[[StateCRDT], None]) -> None:
        """Mutate ``key``'s value CRDT, asserting key liveness."""
        self._keys.add(key)
        if key not in self._values:
            self._values[key] = self.value_factory(self.replica_id)
        mutate(self._values[key])

    def get(self, key: Any) -> StateCRDT | None:
        """The live value CRDT for ``key`` (None when key is absent)."""
        if key in self._keys:
            return self._values.get(key)
        return None

    def remove(self, key: Any) -> None:
        """Remove ``key`` — observed-remove: concurrent updates survive.

        Only liveness is retracted; the value state stays (see class
        docstring for why resetting it would lose updates).
        """
        self._keys.remove(key)

    def __contains__(self, key: Any) -> bool:
        return key in self._keys

    def keys(self) -> frozenset:
        return self._keys.value

    def __iter__(self) -> Iterator:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def value(self) -> dict:
        return {
            key: self._values[key].value
            for key in self.keys()
            if key in self._values
        }

    def merge(self, other: "ORMap") -> "ORMap":
        self._require_same_type(other)
        self._keys.merge(other._keys)
        for key, remote_value in other._values.items():
            mine = self._values.get(key)
            if mine is None:
                # Adopt via an empty local-replica CRDT + merge rather
                # than copying: a copy would keep the remote replica id
                # and make future local mutations write into the remote
                # replica's entries, breaking per-replica uniqueness.
                mine = self.value_factory(self.replica_id)
                self._values[key] = mine
            mine.merge(remote_value)
        return self

    def copy(self) -> "ORMap":
        clone = self._blank_copy()
        clone.value_factory = self.value_factory
        clone._keys = self._keys.copy()
        clone._values = {k: v.copy() for k, v in self._values.items()}
        return clone

    def state(self) -> dict:
        return {
            "keys": self._keys.state(),
            "values": {repr(k): v.state() for k, v in self._values.items()},
        }
