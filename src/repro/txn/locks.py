"""Lock manager: strict two-phase locking with deadlock detection.

The transaction-centric half of the tutorial needs a classical
baseline; this is it.  Shared/exclusive locks per key, FIFO wait
queues, upgrades, and waits-for-graph cycle detection that aborts the
youngest transaction in the cycle (failing its pending lock future
with :class:`TransactionAborted`).

Lock grants are asynchronous (:class:`~repro.sim.Future`) so blocked
transactions park on the simulator instead of busy-waiting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

from ..errors import TransactionAborted
from ..sim import Future, Simulator


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    return held is LockMode.SHARED and wanted is LockMode.SHARED


@dataclass
class _Waiter:
    txn: Hashable
    mode: LockMode
    future: Future


@dataclass
class _LockState:
    holders: dict = field(default_factory=dict)   # txn -> LockMode
    queue: list = field(default_factory=list)     # list[_Waiter]


class LockManager:
    """Per-key S/X locks with FIFO queuing and deadlock aborts."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._locks: dict[Hashable, _LockState] = {}
        self._txn_keys: dict[Hashable, set] = {}
        self._txn_birth: dict[Hashable, int] = {}
        self._births = 0
        self.deadlocks_detected = 0

    # ------------------------------------------------------------------
    def acquire(self, txn: Hashable, key: Hashable, mode: LockMode) -> Future:
        """Request a lock; the future resolves on grant and fails with
        :class:`TransactionAborted` if this request deadlocks."""
        if txn not in self._txn_birth:
            self._births += 1
            self._txn_birth[txn] = self._births
        state = self._locks.setdefault(key, _LockState())
        future = Future(self.sim, label=f"lock({txn},{key},{mode.value})")

        held = state.holders.get(txn)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                future.resolve(True)  # re-entrant / already stronger
                return future
            # Upgrade S -> X: allowed immediately iff sole holder and
            # nothing queued ahead.
            if len(state.holders) == 1 and not state.queue:
                state.holders[txn] = LockMode.EXCLUSIVE
                future.resolve(True)
                return future
            state.queue.append(_Waiter(txn, mode, future))
            self._check_deadlock(key)
            return future

        if not state.queue and all(
            _compatible(h, mode) for h in state.holders.values()
        ):
            state.holders[txn] = mode
            self._txn_keys.setdefault(txn, set()).add(key)
            future.resolve(True)
            return future

        state.queue.append(_Waiter(txn, mode, future))
        self._check_deadlock(key)
        return future

    def release_all(self, txn: Hashable) -> None:
        """Strict 2PL release at commit/abort time."""
        for key in self._txn_keys.pop(txn, set()):
            state = self._locks.get(key)
            if state is None:
                continue
            state.holders.pop(txn, None)
            self._grant_waiters(key, state)
        # Also drop any still-queued requests from this txn.
        for key, state in self._locks.items():
            before = len(state.queue)
            state.queue = [w for w in state.queue if w.txn != txn]
            if len(state.queue) != before:
                self._grant_waiters(key, state)
        self._txn_birth.pop(txn, None)

    def _grant_waiters(self, key: Hashable, state: _LockState) -> None:
        progressed = True
        while progressed and state.queue:
            progressed = False
            head = state.queue[0]
            held_by_head = state.holders.get(head.txn)
            upgrade_ok = (
                held_by_head is LockMode.SHARED
                and head.mode is LockMode.EXCLUSIVE
                and len(state.holders) == 1
            )
            grant_ok = all(
                _compatible(h, head.mode)
                for t, h in state.holders.items()
                if t != head.txn
            ) and (held_by_head is None or upgrade_ok)
            if grant_ok:
                state.queue.pop(0)
                state.holders[head.txn] = head.mode
                self._txn_keys.setdefault(head.txn, set()).add(key)
                head.future.try_resolve(True)
                progressed = True
        if not state.holders and not state.queue:
            self._locks.pop(key, None)

    # ------------------------------------------------------------------
    # Deadlock detection
    # ------------------------------------------------------------------
    def _waits_for(self) -> dict[Hashable, set]:
        graph: dict[Hashable, set] = {}
        for state in self._locks.values():
            for waiter in state.queue:
                blockers = {
                    holder
                    for holder in state.holders
                    if holder != waiter.txn
                }
                # Earlier queued incompatible requests also block.
                for other in state.queue:
                    if other is waiter:
                        break
                    if other.txn != waiter.txn:
                        blockers.add(other.txn)
                if blockers:
                    graph.setdefault(waiter.txn, set()).update(blockers)
        return graph

    def _find_cycle(self) -> list | None:
        graph = self._waits_for()
        visited: set = set()
        stack: list = []
        on_stack: set = set()

        def dfs(node) -> list | None:
            visited.add(node)
            stack.append(node)
            on_stack.add(node)
            for neighbor in graph.get(node, ()):
                if neighbor not in visited:
                    found = dfs(neighbor)
                    if found:
                        return found
                elif neighbor in on_stack:
                    return stack[stack.index(neighbor):]
            stack.pop()
            on_stack.discard(node)
            return None

        for node in list(graph):
            if node not in visited:
                cycle = dfs(node)
                if cycle:
                    return cycle
        return None

    def _check_deadlock(self, _key: Hashable) -> None:
        cycle = self._find_cycle()
        if not cycle:
            return
        self.deadlocks_detected += 1
        victim = max(cycle, key=lambda t: self._txn_birth.get(t, 0))
        self.abort_waiting(victim)

    def abort_waiting(self, txn: Hashable) -> None:
        """Fail every queued request of ``txn`` (deadlock victim)."""
        for key, state in list(self._locks.items()):
            remaining = []
            for waiter in state.queue:
                if waiter.txn == txn:
                    waiter.future.try_fail(
                        TransactionAborted(f"deadlock victim: {txn}")
                    )
                else:
                    remaining.append(waiter)
            if len(remaining) != len(state.queue):
                state.queue = remaining
                self._grant_waiters(key, state)

    # ------------------------------------------------------------------
    def held_by(self, txn: Hashable) -> set:
        return set(self._txn_keys.get(txn, ()))

    def holders_of(self, key: Hashable) -> dict:
        state = self._locks.get(key)
        return dict(state.holders) if state else {}

    def queue_length(self, key: Hashable) -> int:
        state = self._locks.get(key)
        return len(state.queue) if state else 0
