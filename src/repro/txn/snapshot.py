"""Snapshot isolation (and an SSI-style serializable upgrade).

The database-side relaxation the tutorial contrasts with 1SR: readers
never block, each transaction sees the committed state as of its
begin timestamp, and writers obey first-committer-wins.  SI admits
write skew; ``isolation="serializable"`` adds read-set validation at
commit (backward OCC), which removes it — both behaviors are
exercised in the tests via the classic on-call-doctors example.
"""

from __future__ import annotations

import enum
from typing import Any, Hashable

from ..errors import TransactionAborted
from ..storage import MultiVersionStore, TimestampOracle


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class SnapshotTransaction:
    """One transaction against a :class:`SnapshotStore`."""

    def __init__(self, store: "SnapshotStore", txn_id: int, snapshot_ts: int,
                 isolation: str) -> None:
        self.store = store
        self.txn_id = txn_id
        self.snapshot_ts = snapshot_ts
        self.isolation = isolation
        self.status = TxnStatus.ACTIVE
        self.write_set: dict[Hashable, Any] = {}
        self.delete_set: set = set()
        self.read_set: set = set()

    # ------------------------------------------------------------------
    def read(self, key: Hashable) -> Any:
        self._require_active()
        self.read_set.add(key)
        if key in self.delete_set:
            return None
        if key in self.write_set:
            return self.write_set[key]
        return self.store.mv.read(key, self.snapshot_ts)

    def write(self, key: Hashable, value: Any) -> None:
        self._require_active()
        self.delete_set.discard(key)
        self.write_set[key] = value

    def delete(self, key: Hashable) -> None:
        self._require_active()
        self.write_set.pop(key, None)
        self.delete_set.add(key)

    # ------------------------------------------------------------------
    def commit(self) -> int:
        """First-committer-wins validation, then install.  Returns the
        commit timestamp.  Raises :class:`TransactionAborted` on
        conflict."""
        self._require_active()
        conflicts = [
            key
            for key in (set(self.write_set) | self.delete_set)
            if self.store.mv.modified_since(key, self.snapshot_ts)
        ]
        if conflicts:
            self.status = TxnStatus.ABORTED
            self.store.aborts_ww += 1
            raise TransactionAborted(
                f"write-write conflict on {sorted(map(repr, conflicts))}"
            )
        if self.isolation == "serializable":
            stale_reads = [
                key
                for key in self.read_set - set(self.write_set) - self.delete_set
                if self.store.mv.modified_since(key, self.snapshot_ts)
            ]
            if stale_reads:
                self.status = TxnStatus.ABORTED
                self.store.aborts_rw += 1
                raise TransactionAborted(
                    f"read-write conflict on {sorted(map(repr, stale_reads))}"
                )
        commit_ts = self.store.oracle.next()
        for key, value in self.write_set.items():
            self.store.mv.install(key, value, commit_ts)
        for key in self.delete_set:
            self.store.mv.install_delete(key, commit_ts)
        self.status = TxnStatus.COMMITTED
        self.store.commits += 1
        return commit_ts

    def abort(self) -> None:
        if self.status is TxnStatus.ACTIVE:
            self.status = TxnStatus.ABORTED
            self.store.voluntary_aborts += 1

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionAborted(f"transaction is {self.status.value}")


class SnapshotStore:
    """A multi-version store with SI / SSI-lite transactions.

    >>> store = SnapshotStore()
    >>> t = store.begin()
    >>> t.write("x", 1)
    >>> _ = t.commit()
    >>> store.begin().read("x")
    1
    """

    def __init__(self, isolation: str = "si") -> None:
        if isolation not in ("si", "serializable"):
            raise ValueError("isolation must be 'si' or 'serializable'")
        self.isolation = isolation
        self.mv = MultiVersionStore()
        self.oracle = TimestampOracle()
        self._txn_ids = 0
        self.commits = 0
        self.aborts_ww = 0
        self.aborts_rw = 0
        self.voluntary_aborts = 0

    def begin(self, isolation: str | None = None) -> SnapshotTransaction:
        self._txn_ids += 1
        return SnapshotTransaction(
            self,
            self._txn_ids,
            snapshot_ts=self.oracle.latest,
            isolation=isolation or self.isolation,
        )

    def read_committed(self, key: Hashable) -> Any:
        """Auto-commit read of the latest committed version."""
        return self.mv.read(key, self.oracle.latest)

    def vacuum(self) -> int:
        """Garbage-collect versions below the current horizon (no
        active-transaction tracking here: callers pick quiescent
        points, as the tests do)."""
        return self.mv.vacuum(self.oracle.latest)

    @property
    def abort_rate(self) -> float:
        total = self.commits + self.aborts_ww + self.aborts_rw
        if total == 0:
            return 0.0
        return (self.aborts_ww + self.aborts_rw) / total
