"""Transaction-side relaxations of one-copy serializability.

* :class:`LockManager` + :class:`TwoPhaseCoordinator` — the classical
  strict-2PL + 2PC baseline.
* :class:`SnapshotStore` — snapshot isolation and an SSI-style
  serializable mode.
* :class:`RedBlueBank` — RedBlue consistency (blue = commutative local
  ops, red = globally serialized ops).
* :class:`EscrowCounter` — escrow transactions for bounded counters,
  with :class:`CentralCounterServer` as the coordinated baseline.
"""

from .escrow import (
    CentralCounterClient,
    CentralCounterServer,
    EscrowCounter,
    EscrowSite,
)
from .locks import LockManager, LockMode
from .redblue import RedBlueBank, RedBlueSite, RedCoordinator
from .snapshot import SnapshotStore, SnapshotTransaction, TxnStatus
from .two_phase import (
    Partition,
    Transaction,
    TwoPhaseCoordinator,
    make_partitioned_store,
)

__all__ = [
    "LockManager",
    "LockMode",
    "Partition",
    "Transaction",
    "TwoPhaseCoordinator",
    "make_partitioned_store",
    "SnapshotStore",
    "SnapshotTransaction",
    "TxnStatus",
    "RedBlueBank",
    "RedBlueSite",
    "RedCoordinator",
    "EscrowCounter",
    "EscrowSite",
    "CentralCounterServer",
    "CentralCounterClient",
]
