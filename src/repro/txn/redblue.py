"""RedBlue consistency (Li et al., OSDI 2012) on a geo-replicated bank.

The tutorial's "fast as possible, consistent when necessary" point:
operations are labeled **blue** (commutative, invariant-safe — they
run at the local site immediately and propagate asynchronously as
shadow deltas) or **red** (they must be globally serialized — one
round trip to a sequencer that also guards the invariant).

The state here is the canonical bank: per-account balances with the
invariant *balance ≥ 0*.  Deposits commute and cannot break the
invariant → blue.  Withdrawals can → red, checked at the sequencer
whose view is conservative (it may miss recent blue deposits, so it
can reject a valid withdrawal but never admit an invalid one).

E8 measures mean latency vs. the blue fraction of the workload — the
RedBlue speedup curve.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable

from ..errors import InvariantViolation
from ..replication.ring import stable_hash
from ..sim import Future, Network, Node, Simulator


@dataclass(frozen=True)
class ShadowOp:
    """A commutative state delta, applied at every site exactly once."""

    op_id: int
    key: Hashable
    delta: float
    red: bool
    seqno: int | None = None   # global order, red ops only


@dataclass
class RedRequest:
    op_id: int
    key: Hashable
    delta: float
    origin: Hashable


@dataclass
class RedReply:
    op_id: int
    ok: bool
    reason: str = ""


class RedBlueSite(Node):
    """One geo-site: applies blue ops locally, red ops in global order."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        coordinator_id: Hashable,
        site_ids: list[Hashable],
    ) -> None:
        super().__init__(sim, network, node_id)
        self.coordinator_id = coordinator_id
        self.site_ids = list(site_ids)
        self.balances: dict[Hashable, float] = {}
        self.applied: set[int] = set()
        self._next_red_seq = 0
        self._red_buffer: dict[int, ShadowOp] = {}
        self._pending: dict[int, Future] = {}
        self._op_ids = itertools.count(1)
        self.blue_ops = 0
        self.red_ops = 0

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def deposit(self, account: Hashable, amount: float) -> Future:
        """Blue: applies locally now, propagates asynchronously."""
        if amount < 0:
            raise InvariantViolation("deposit must be non-negative")
        future = Future(self.sim, label=f"deposit({account})")
        op = ShadowOp(self._fresh_op_id(), account, amount, red=False)
        self._apply(op)
        self.blue_ops += 1
        for site in self.site_ids:
            if site != self.node_id:
                self.send(site, op)
        # The sequencer needs blue deltas too, or its conservative
        # view would never credit deposits and red ops would starve.
        self.send(self.coordinator_id, op)
        future.resolve(self.balances[account])
        return future

    def _fresh_op_id(self) -> int:
        return next(self._op_ids) * 100_000 + stable_hash(self.node_id) % 100_000

    def withdraw(self, account: Hashable, amount: float) -> Future:
        """Red: one round trip to the sequencer, which validates the
        invariant and assigns a global order."""
        if amount < 0:
            raise InvariantViolation("withdrawal must be non-negative")
        future = Future(self.sim, label=f"withdraw({account})")
        op_id = self._fresh_op_id()
        self._pending[op_id] = future
        self.red_ops += 1
        self.send(
            self.coordinator_id,
            RedRequest(op_id, account, -amount, self.node_id),
        )
        return future

    def balance(self, account: Hashable) -> float:
        return self.balances.get(account, 0.0)

    # ------------------------------------------------------------------
    # Shadow-op application
    # ------------------------------------------------------------------
    def _apply(self, op: ShadowOp) -> None:
        if op.op_id in self.applied:
            return
        self.applied.add(op.op_id)
        self.balances[op.key] = self.balances.get(op.key, 0.0) + op.delta

    def handle_ShadowOp(self, src: Hashable, op: ShadowOp) -> None:
        if not op.red:
            self._apply(op)
            return
        # Red ops apply in sequencer order at every site.
        self._red_buffer[op.seqno] = op
        while self._next_red_seq in self._red_buffer:
            self._apply(self._red_buffer.pop(self._next_red_seq))
            self._next_red_seq += 1

    def handle_RedReply(self, src: Hashable, msg: RedReply) -> None:
        future = self._pending.pop(msg.op_id, None)
        if future is None:
            return
        if msg.ok:
            future.resolve(True)
        else:
            future.fail(InvariantViolation(msg.reason))

    def snapshot(self) -> dict:
        return dict(self.balances)


class RedCoordinator(Node):
    """The red-op sequencer + invariant guard.

    Holds a conservative view of every balance: it sees all red ops
    (it orders them) and blue shadow ops as they arrive, so its view
    only ever *understates* balances — rejecting a withdrawal the true
    state could afford is possible; overdraft is not.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        site_ids: list[Hashable],
    ) -> None:
        super().__init__(sim, network, node_id)
        self.site_ids = list(site_ids)
        self.view: dict[Hashable, float] = {}
        self.applied: set[int] = set()
        self._seq = 0
        self.rejections = 0

    def handle_ShadowOp(self, src: Hashable, op: ShadowOp) -> None:
        # Blue deposits flowing by; fold them into the view.
        if op.op_id not in self.applied:
            self.applied.add(op.op_id)
            self.view[op.key] = self.view.get(op.key, 0.0) + op.delta

    def handle_RedRequest(self, src: Hashable, msg: RedRequest) -> None:
        current = self.view.get(msg.key, 0.0)
        if current + msg.delta < 0:
            self.rejections += 1
            self.send(
                msg.origin,
                RedReply(
                    msg.op_id, False,
                    f"insufficient funds: {current} + {msg.delta} < 0",
                ),
            )
            return
        self.view[msg.key] = current + msg.delta
        self.applied.add(msg.op_id)
        op = ShadowOp(msg.op_id, msg.key, msg.delta, red=True, seqno=self._seq)
        self._seq += 1
        for site in self.site_ids:
            self.send(site, op)
        self.send(msg.origin, RedReply(msg.op_id, True))


class RedBlueBank:
    """Factory wiring N sites + the sequencer onto a network."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sites: int = 3,
        site_ids: list[Hashable] | None = None,
        coordinator_id: Hashable = "red-seq",
    ) -> None:
        ids = site_ids or [f"site{i}" for i in range(sites)]
        self.coordinator = RedCoordinator(sim, network, coordinator_id, ids)
        self.sites = [
            RedBlueSite(sim, network, node_id, coordinator_id, ids)
            for node_id in ids
        ]

    def site(self, index: int) -> RedBlueSite:
        return self.sites[index]

    def converged_balance(self, account: Hashable, tol: float = 1e-6) -> float:
        """The common balance across sites.

        Blue deltas are floats applied in different orders at different
        sites, so equality is up to ``tol`` (float addition is not
        associative); a genuine divergence raises.
        """
        values = [site.balance(account) for site in self.sites]
        if max(values) - min(values) > tol:
            raise InvariantViolation(
                f"sites diverge on {account!r}: {sorted(values)}"
            )
        return values[0]

    def total_in_flight(self) -> int:
        return sum(len(site._pending) for site in self.sites)
