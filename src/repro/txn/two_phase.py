"""Distributed strict 2PL + two-phase commit over partitions.

The classical strong-consistency baseline for the transaction
experiments: data is hash-partitioned across :class:`Partition`
server nodes, each with its own :class:`~repro.txn.locks.LockManager`;
a :class:`TwoPhaseCoordinator` runs interactive transactions that lock
as they touch data and commit with prepare/commit rounds.  Every lock
and every commit phase pays real (simulated) network latency — the
cost RedBlue and escrow then avoid for their commutative fractions.

Local deadlocks are detected by each partition's lock manager;
*distributed* deadlocks (cycles spanning partitions) are broken by a
lock-wait timeout, as most production systems do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..errors import TransactionAborted
from ..sim import Future, Network, Simulator, spawn
from .locks import LockManager, LockMode
from ..replication.common import ClientNode, ServerNode
from ..replication.ring import stable_hash


@dataclass
class AcquireRead:
    txn: Hashable
    key: Hashable


@dataclass
class AcquireWrite:
    txn: Hashable
    key: Hashable


@dataclass
class PrepareTxn:
    txn: Hashable
    writes: dict


@dataclass
class CommitTxn:
    txn: Hashable


@dataclass
class AbortTxn:
    txn: Hashable


class Partition(ServerNode):
    """One shard: storage + lock manager + prepared-write buffers."""

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable,
                 lock_timeout: float = 500.0) -> None:
        super().__init__(sim, network, node_id)
        self.locks = LockManager(sim)
        self.data: dict[Hashable, Any] = {}
        self.prepared: dict[Hashable, dict] = {}
        self.lock_timeout = lock_timeout

    def _locked(self, txn: Hashable, key: Hashable, mode: LockMode) -> Future:
        grant = self.locks.acquire(txn, key, mode)
        if grant.done:
            return grant
        # Lock-wait timeout: breaks distributed deadlocks.
        self.set_timer(
            self.lock_timeout,
            lambda: grant.try_fail(
                TransactionAborted(f"lock wait timeout for {txn} on {key!r}")
            ),
        )
        return grant

    def serve_AcquireRead(self, src: Hashable, payload: AcquireRead) -> Future:
        result = Future(self.sim)

        def granted(grant: Future) -> None:
            if grant.error is not None:
                result.try_fail(grant.error)
            else:
                result.try_resolve(self.data.get(payload.key))

        self._locked(payload.txn, payload.key, LockMode.SHARED).add_callback(
            granted
        )
        return result

    def serve_AcquireWrite(self, src: Hashable, payload: AcquireWrite) -> Future:
        result = Future(self.sim)

        def granted(grant: Future) -> None:
            if grant.error is not None:
                result.try_fail(grant.error)
            else:
                result.try_resolve(True)

        self._locked(payload.txn, payload.key, LockMode.EXCLUSIVE).add_callback(
            granted
        )
        return result

    def serve_PrepareTxn(self, src: Hashable, payload: PrepareTxn) -> bool:
        # Locks are already held (2PL), data is valid: vote yes and
        # stage the writes durably.
        self.prepared[payload.txn] = dict(payload.writes)
        return True

    def serve_CommitTxn(self, src: Hashable, payload: CommitTxn) -> bool:
        writes = self.prepared.pop(payload.txn, {})
        self.data.update(writes)
        self.locks.release_all(payload.txn)
        return True

    def serve_AbortTxn(self, src: Hashable, payload: AbortTxn) -> bool:
        self.prepared.pop(payload.txn, None)
        self.locks.release_all(payload.txn)
        return True


class Transaction:
    """Interactive transaction handle used inside spawn() processes."""

    def __init__(self, coordinator: "TwoPhaseCoordinator", txn_id: str) -> None:
        self.coordinator = coordinator
        self.txn_id = txn_id
        self.write_buffer: dict[Hashable, dict[Hashable, Any]] = {}
        self.touched: set[Hashable] = set()
        self.finished = False

    def read(self, key: Hashable) -> Future:
        partition = self.coordinator.partition_of(key)
        self.touched.add(partition)
        buffered = self.write_buffer.get(partition, {})
        if key in buffered:
            future = Future(self.coordinator.sim)
            future.resolve(buffered[key])
            return future
        return self.coordinator.request(partition, AcquireRead(self.txn_id, key))

    def write(self, key: Hashable, value: Any) -> Future:
        """Acquires the X lock now; the value installs at commit."""
        partition = self.coordinator.partition_of(key)
        self.touched.add(partition)
        inner = self.coordinator.request(
            partition, AcquireWrite(self.txn_id, key)
        )
        outer = Future(self.coordinator.sim)

        def locked(future: Future) -> None:
            if future.error is not None:
                outer.fail(future.error)
                return
            self.write_buffer.setdefault(partition, {})[key] = value
            outer.resolve(True)

        inner.add_callback(locked)
        return outer

    def commit(self) -> Future:
        """Two-phase commit across the touched partitions."""
        return spawn(
            self.coordinator.sim, self._commit_script(), name=f"{self.txn_id}-commit"
        ).completion

    def _commit_script(self):
        self.finished = True
        coordinator = self.coordinator
        participants = sorted(self.touched, key=str)
        votes = []
        for partition in participants:
            writes = self.write_buffer.get(partition, {})
            votes.append(
                coordinator.request(partition, PrepareTxn(self.txn_id, writes))
            )
        try:
            yield votes
        except TransactionAborted:
            yield from self._abort_script(participants)
            raise
        acks = [
            coordinator.request(partition, CommitTxn(self.txn_id))
            for partition in participants
        ]
        yield acks
        coordinator.commits += 1
        return True

    def abort(self) -> Future:
        return spawn(
            self.coordinator.sim,
            self._abort_script(sorted(self.touched, key=str)),
            name=f"{self.txn_id}-abort",
        ).completion

    def _abort_script(self, participants):
        self.finished = True
        acks = [
            self.coordinator.request(partition, AbortTxn(self.txn_id))
            for partition in participants
        ]
        if acks:
            yield acks
        self.coordinator.aborts += 1


class TwoPhaseCoordinator(ClientNode):
    """Client-side coordinator: opens transactions, runs 2PC."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        partitions: list[Partition],
    ) -> None:
        super().__init__(sim, network, node_id)
        self.partitions = partitions
        self._txn_count = 0
        self.commits = 0
        self.aborts = 0

    def partition_of(self, key: Hashable) -> Hashable:
        index = stable_hash(key) % len(self.partitions)
        return self.partitions[index].node_id

    def begin(self) -> Transaction:
        self._txn_count += 1
        return Transaction(self, f"{self.node_id}-t{self._txn_count}")

    def run(self, body) -> Future:
        """Run ``body(txn)`` (a generator function) as a transaction:
        commit on normal return, abort+re-raise on exception.  The
        returned future resolves with the body's return value."""
        txn = self.begin()
        outer = Future(self.sim, label=f"{txn.txn_id}-run")

        def script():
            try:
                result = yield from body(txn)
            except Exception as exc:  # noqa: BLE001 - abort then surface
                if not txn.finished:
                    yield txn.abort()
                outer.fail(exc)
                return
            try:
                yield txn.commit()
            except TransactionAborted as exc:
                outer.fail(exc)
                return
            outer.resolve(result)

        spawn(self.sim, script(), name=f"{txn.txn_id}-body")
        return outer


def make_partitioned_store(
    sim: Simulator,
    network: Network,
    partitions: int = 4,
    lock_timeout: float = 500.0,
) -> list[Partition]:
    """Convenience factory for a bank of partitions."""
    return [
        Partition(sim, network, f"part{i}", lock_timeout=lock_timeout)
        for i in range(partitions)
    ]
