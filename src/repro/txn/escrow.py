"""Escrow transactions (O'Neil) for bounded counters.

The tutorial's recipe for keeping a *numeric invariant* (stock ≥ 0,
balance ≥ 0) without global coordination: split the allowed headroom
across sites as local **escrow allowances**.  A debit that fits the
local allowance commits locally — zero WAN cost, invariant safe by
construction.  A debit that doesn't triggers escrow *transfers* from
peers (WAN round trips), and aborts only when the global headroom is
truly insufficient.

:class:`CentralCounter` is the comparison baseline — every operation
takes a round trip to one lock server.  E9 sweeps headroom and skew
to chart abort rate and mean latency for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..errors import InvariantViolation
from ..sim import Future, Network, Node, Simulator


@dataclass
class EscrowRequest:
    """Ask a peer to spare up to ``wanted`` units of escrow."""

    request_id: int
    wanted: float


@dataclass
class EscrowGrant:
    request_id: int
    amount: float


class EscrowSite(Node):
    """One site holding a slice of the global headroom."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: Hashable,
        peers: list[Hashable],
        initial_escrow: float,
        transfer_timeout: float = 300.0,
    ) -> None:
        super().__init__(sim, network, node_id)
        self.peers = [p for p in peers if p != node_id]
        self.local_escrow = float(initial_escrow)
        self.transfer_timeout = transfer_timeout
        self._request_ids = 0
        self._pending: dict[int, Future] = {}
        self.local_commits = 0
        self.transfers_requested = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def credit(self, amount: float) -> Future:
        """Add headroom locally (e.g. restock); always local."""
        if amount < 0:
            raise InvariantViolation("credit must be non-negative")
        self.local_escrow += amount
        future = Future(self.sim)
        future.resolve(self.local_escrow)
        return future

    def debit(self, amount: float) -> Future:
        """Consume ``amount`` of the global headroom.

        Fast path: local escrow suffices.  Slow path: solicit
        transfers from peers, one at a time, until covered or out of
        peers (abort with :class:`InvariantViolation`).
        """
        if amount < 0:
            raise InvariantViolation("debit must be non-negative")
        future = Future(self.sim, label=f"debit({amount})")
        if self.local_escrow >= amount:
            self.local_escrow -= amount
            self.local_commits += 1
            future.resolve(True)
            return future
        self._solicit(future, amount, peer_index=0)
        return future

    def _solicit(self, future: Future, amount: float, peer_index: int) -> None:
        if self.local_escrow >= amount:
            self.local_escrow -= amount
            self.local_commits += 1
            future.try_resolve(True)
            return
        if peer_index >= len(self.peers):
            self.aborts += 1
            future.try_fail(
                InvariantViolation(
                    f"escrow exhausted: need {amount}, have {self.local_escrow}"
                )
            )
            return
        peer = self.peers[peer_index]
        self._request_ids += 1
        request_id = self._request_ids
        shortfall = amount - self.local_escrow
        reply_future = Future(self.sim)
        self._pending[request_id] = reply_future
        self.transfers_requested += 1
        self.send(peer, EscrowRequest(request_id, shortfall))

        def on_reply(reply: Future) -> None:
            if reply.error is None and isinstance(reply.value, float):
                self.local_escrow += reply.value
            self._solicit(future, amount, peer_index + 1)

        reply_future.add_callback(on_reply)
        self.set_timer(
            self.transfer_timeout,
            lambda: reply_future.try_resolve(0.0),
        )

    # ------------------------------------------------------------------
    # Peer protocol
    # ------------------------------------------------------------------
    def handle_EscrowRequest(self, src: Hashable, msg: EscrowRequest) -> None:
        granted = min(self.local_escrow, msg.wanted)
        self.local_escrow -= granted
        self.send(src, EscrowGrant(msg.request_id, granted))

    def handle_EscrowGrant(self, src: Hashable, msg: EscrowGrant) -> None:
        future = self._pending.pop(msg.request_id, None)
        if future is not None:
            future.try_resolve(float(msg.amount))


class EscrowCounter:
    """N sites sharing one bounded counter's headroom."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        total: float,
        sites: int = 3,
        site_ids: list[Hashable] | None = None,
        split: list[float] | None = None,
    ) -> None:
        if total < 0:
            raise InvariantViolation("total headroom must be non-negative")
        ids = site_ids or [f"esc{i}" for i in range(sites)]
        if split is None:
            split = [total / len(ids)] * len(ids)
        if len(split) != len(ids):
            raise ValueError("split length must match site count")
        if abs(sum(split) - total) > 1e-9:
            raise ValueError("split must sum to total")
        self.sites = [
            EscrowSite(sim, network, node_id, ids, allowance)
            for node_id, allowance in zip(ids, split)
        ]

    def site(self, index: int) -> EscrowSite:
        return self.sites[index]

    def global_headroom(self) -> float:
        """Invariant witness: the sum of local escrows never goes
        negative, and (absent in-flight grants) equals total - debits."""
        return sum(site.local_escrow for site in self.sites)


# ---------------------------------------------------------------------------
# Baseline: central lock server
# ---------------------------------------------------------------------------


@dataclass
class CentralDebit:
    amount: float


@dataclass
class CentralCredit:
    amount: float


class CentralCounterServer(Node):
    """All updates serialized at one server — correct and slow."""

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable,
                 total: float) -> None:
        super().__init__(sim, network, node_id)
        self.headroom = float(total)
        self.commits = 0
        self.aborts = 0

    def handle_CentralDebit(self, src: Hashable, msg: CentralDebit) -> None:
        if self.headroom >= msg.amount:
            self.headroom -= msg.amount
            self.commits += 1
            self.send(src, ("ok", self.headroom))
        else:
            self.aborts += 1
            self.send(src, ("insufficient", self.headroom))

    def handle_CentralCredit(self, src: Hashable, msg: CentralCredit) -> None:
        self.headroom += msg.amount
        self.send(src, ("ok", self.headroom))


class CentralCounterClient(Node):
    """Blocking-style client for the central counter."""

    def __init__(self, sim: Simulator, network: Network, node_id: Hashable,
                 server_id: Hashable) -> None:
        super().__init__(sim, network, node_id)
        self.server_id = server_id
        self._waiting: list[Future] = []

    def debit(self, amount: float) -> Future:
        future = Future(self.sim, label=f"central-debit({amount})")
        self._waiting.append(future)
        self.send(self.server_id, CentralDebit(amount))
        return future

    def credit(self, amount: float) -> Future:
        future = Future(self.sim, label=f"central-credit({amount})")
        self._waiting.append(future)
        self.send(self.server_id, CentralCredit(amount))
        return future

    def handle_tuple(self, src: Hashable, msg: tuple) -> None:
        status, headroom = msg
        future = self._waiting.pop(0)
        if status == "ok":
            future.resolve(True)
        else:
            future.fail(InvariantViolation("insufficient headroom"))
