"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``examples``            list the runnable examples
``run <example>``       run one example by name (e.g. ``run quickstart``)
``pbs``                 print a quick PBS t-visibility grid
``protocols``           list registered store adapters + capabilities
``spectrum``            print the E1-style consistency spectrum table
                        (built through the registry + workload driver)
``trace <file.jsonl>``  print a filtered timeline + summary of a sim trace
``bench``               run the seeded macro perf suite (BENCH_CORE.json)
``chaos``               run the nemesis conformance suite: every adapter
                        under a seeded fault plan, checker verdict table
``cache``               run the cache conformance grid: every cache
                        policy over every adapter, histories recorded at
                        the cache boundary, checker verdict per cell
``load``                open-loop load generator (Poisson/diurnal/flash
                        arrivals); ``--storm`` runs the hot-key storm demo
``scale``               elastic-scaling demo: live ring moves under
                        open-loop load, durability + convergence verdicts
``multiregion``         flagship multi-region scenario: sharded clusters
                        spread over three continents, follower reads,
                        region loss + failover, RTO/RPO per protocol
``selftest``            import every module and run a smoke simulation

The heavyweight experiment tables live in ``benchmarks/`` (run with
``pytest benchmarks/ --benchmark-only``); the CLI is for quick looks.
"""

from __future__ import annotations

import argparse
import importlib
import pathlib
import runpy
import sys


def _examples_dir() -> pathlib.Path:
    # examples/ sits next to src/ in a source checkout.
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "examples"
        if candidate.is_dir():
            return candidate
    raise SystemExit("examples/ directory not found (installed without sources?)")


def list_examples() -> list[str]:
    return sorted(
        path.stem
        for path in _examples_dir().glob("*.py")
        if not path.stem.startswith("_")
    )


def cmd_examples(_args: argparse.Namespace) -> int:
    for name in list_examples():
        print(name)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    name = args.example
    path = _examples_dir() / f"{name}.py"
    if not path.exists():
        print(f"unknown example {name!r}; available: {', '.join(list_examples())}",
              file=sys.stderr)
        return 2
    runpy.run_path(str(path), run_name="__main__")
    return 0


def cmd_pbs(args: argparse.Namespace) -> int:
    from .analysis import WARSModel, print_table, simulate_t_visibility

    model = WARSModel.wan() if args.wan else WARSModel.lan()
    rows = []
    n = args.n
    for r in range(1, n + 1):
        for w in range(1, n + 1):
            result = simulate_t_visibility(
                n, r, w, args.t, model=model, trials=args.trials,
            )
            rows.append([
                f"R={r} W={w}" + (" *" if r + w > n else ""),
                round(result.p_consistent, 4),
                round(result.mean_read_latency, 2),
                round(result.mean_write_latency, 2),
            ])
    print_table(
        ["config", f"P[consistent @ t={args.t:g}ms]", "read ms", "write ms"],
        rows,
        title=f"PBS t-visibility, N={n} "
              f"({'WAN' if args.wan else 'LAN'} profile; * = R+W>N)",
    )
    return 0


def cmd_protocols(_args: argparse.Namespace) -> int:
    """List every registered store adapter with its capability flags."""
    from .analysis import print_table
    from .api import registry

    rows = []
    for spec in registry.specs():
        caps = spec.capabilities
        flags = []
        if caps.tentative_reads:
            flags.append("tentative")
        if caps.multi_value_reads:
            flags.append("siblings")
        if not caps.networked:
            flags.append("direct")
        if not caps.survives_replica_crash:
            flags.append("fragile")
        rows.append([
            spec.name,
            ",".join(caps.read_modes),
            ",".join(caps.session_guarantees) or "-",
            "yes" if caps.has_history else "no",
            ",".join(flags) or "-",
            caps.description,
        ])
    print_table(
        ["protocol", "read modes", "session", "history", "flags",
         "description"],
        rows,
        title=f"{len(rows)} registered protocols (repro.api.registry)",
    )
    return 0


#: ``repro spectrum`` rungs: registry name, label, build kwargs, session
#: kwargs, read mode.  Node ids n0/n1/n2 map to us-east/eu/asia; the
#: client sits in the EU.
_SPECTRUM_RUNGS = [
    ("quorum", "eventual (R=W=1)",
     dict(n=3, r=1, w=1, op_deadline=2_000.0), dict(coordinator="n1"), None),
    ("quorum", "quorum (R=W=2)",
     dict(n=3, r=2, w=2, op_deadline=2_000.0), dict(coordinator="n1"), None),
    ("causal", "causal (local)", {}, dict(home="n1"), None),
    ("timeline", "timeline (read local)", {}, dict(home="n1"), "any"),
    ("timeline", "session RYW+MR",
     {}, dict(home="n1", guarantees=("ryw", "mr"), retry_delay=10.0), "any"),
    ("pileus", "pileus (SLA reads)", {}, dict(home="n1"), None),
    ("primary_backup", "primary-backup (async)", dict(mode="async"), {}, None),
    ("multipaxos", "strong (paxos)", {}, {}, None),
    ("chain", "strong (chain)", {}, {}, None),
]


def cmd_spectrum(args: argparse.Namespace) -> int:
    """The E1-style spectrum table, produced through the store registry
    and the protocol-agnostic workload driver."""
    from .analysis import print_table
    from .api import registry
    from .checkers import check_linearizability, stale_read_fraction
    from .sim import THREE_CONTINENTS, Network, Simulator
    from .workload import OpSpec, WorkloadDriver

    sites = ("us-east", "eu", "asia")
    node_ids = ["n0", "n1", "n2"]
    rounds = args.rounds
    ops = []
    for i in range(rounds):
        key = f"key-{i % 3}"
        ops += [OpSpec("update", key, f"v{i}"), OpSpec("sleep", "", 5.0),
                OpSpec("read", key), OpSpec("sleep", "", 5.0)]

    rows = []
    for name, label, build_kwargs, session_kwargs, read_mode in _SPECTRUM_RUNGS:
        sim = Simulator(seed=args.seed)
        placement = dict(zip(node_ids, sites))
        placement["client-eu"] = "eu"
        network = Network(
            sim, latency=THREE_CONTINENTS.latency_model(placement, jitter=0.05)
        )
        store = registry.build(name, sim, network, nodes=3,
                               node_ids=node_ids, **build_kwargs)
        if hasattr(store.cluster, "set_master"):
            for i in range(3):
                store.cluster.set_master(f"key-{i}", "n0")
        session_kwargs = dict(session_kwargs)
        if store.capabilities.networked:
            session_kwargs["client_id"] = "client-eu"
        driver = WorkloadDriver(sim)
        driver.add_session(store.session("eu-user", **session_kwargs), ops,
                           read_mode=read_mode, timeout=4_000.0)
        result = driver.run()
        history = result.history
        rows.append([
            label,
            round(result.read_latency.mean, 1),
            round(result.write_latency.mean, 1),
            round(stale_read_fraction(history), 3),
            check_linearizability(history).ok,
        ])
    print_table(
        ["protocol", "read ms", "write ms", "stale reads", "linearizable"],
        rows,
        title="consistency spectrum, one EU client, replicas on "
              "us-east/eu/asia (registry-driven)",
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .analysis import print_table
    from .sim.trace import filter_events, kind_counts, load_jsonl, message_summary

    try:
        events = load_jsonl(args.path)
    except (OSError, ValueError) as exc:
        # ValueError covers json.JSONDecodeError on a corrupt line.
        print(f"cannot read trace {args.path!r}: {exc}", file=sys.stderr)
        return 2
    selected = filter_events(
        events,
        kind=args.kind or None,
        since=args.since,
        until=args.until,
    )
    if args.type:
        selected = [
            ev for ev in selected if ev.data.get("msg_type") == args.type
        ]

    if not args.summary_only:
        limit = args.limit if args.limit > 0 else len(selected)
        for event in selected[:limit]:
            print(event.format_line())
        if len(selected) > limit:
            print(f"... {len(selected) - limit} more events "
                  f"(raise --limit to see them)")
        print()

    print_table(
        ["kind", "count"],
        sorted(kind_counts(selected).items()),
        title=f"{len(selected)}/{len(events)} trace events selected",
    )
    summary = message_summary(selected)
    if summary:
        # One column per drop reason actually seen, so client-side
        # hedge cancellations are not lumped in with network loss.
        reasons = sorted({
            reason
            for row in summary.values()
            for reason in row["drop_reasons"]
        })
        print()
        print_table(
            ["message type", "sent", "delivered", "dropped", *reasons],
            [
                [name, row["sent"], row["delivered"], row["dropped"]]
                + [row["drop_reasons"].get(reason, 0) for reason in reasons]
                for name, row in sorted(summary.items())
            ],
            title="per-message-type summary",
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the macro perf scenarios; optionally write BENCH_CORE.json
    and/or gate against a committed baseline."""
    import json

    from .perf import SCENARIOS, compare, render_report, run_suite

    if args.list:
        for name, scenario in SCENARIOS.items():
            print(f"{name:<18} {scenario.description}")
        return 0

    doc = run_suite(
        scenarios=args.scenario or None,
        seed=args.seed,
        quick=args.quick,
        verify=not args.no_verify,
        repeats=args.repeat,
        workers=args.workers,
    )
    print(render_report(doc))

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output}")

    if args.compare:
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2
        problems = compare(doc, baseline, tolerance=args.tolerance)
        if problems:
            print(f"\nFAIL vs baseline {args.compare}:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"\nOK vs baseline {args.compare} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Fan one scenario's seeds across worker processes; optionally
    prove parallel == serial via the per-seed fingerprint set."""
    import json

    from .analysis import render_table
    from .perf import (
        SweepError,
        check_parallel_determinism,
        parse_seeds,
        run_sweep,
    )

    try:
        seeds = parse_seeds(args.seeds)
        if args.check_determinism and args.workers > 1:
            serial, report = check_parallel_determinism(
                args.scenario, seeds, workers=args.workers, quick=args.quick,
            )
        else:
            serial = None
            report = run_sweep(
                args.scenario, seeds, workers=args.workers, quick=args.quick,
            )
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1

    rows = [
        [result.seed, result.events, round(result.events_per_sec, 1),
         round(result.wall_s, 3), result.trace_hash[:12],
         result.metrics_digest[:12]]
        for result in report.results
    ]
    scale = "quick" if report.quick else "full"
    print(render_table(
        ["seed", "events", "events/s", "wall s", "trace hash",
         "metrics digest"],
        rows,
        title=f"repro sweep — {report.scenario}, {scale} scale, "
              f"{report.workers} worker(s)",
    ))
    print(f"\naggregate: {report.total_events} events in "
          f"{report.wall_s:.2f}s across {report.workers} worker(s) = "
          f"{report.aggregate_events_per_sec:,.0f} events/s "
          f"(serial sum of walls: {report.serial_wall_s:.2f}s)")
    if serial is not None:
        speedup = serial.wall_s / max(report.wall_s, 1e-9)
        print(f"determinism: parallel fingerprint set == serial "
              f"({len(report.results)} seeds); parallel speedup "
              f"{speedup:.2f}x over the serial sweep")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos conformance suite and print the verdict table.

    Exit status: 0 when every protocol's declared guarantees hold (or
    are explicitly waived), 1 on any checker FAIL, 2 on bad arguments.
    """
    from .api import registry
    from .chaos import PLANS, ChaosRunner, format_reports, random_plan

    if args.list:
        for name, plan in sorted(PLANS.items()):
            faults = ", ".join(
                sorted({plan_step.fault for plan_step in plan.steps})
            )
            print(f"{name:<12} {len(plan.steps)} steps: {faults}")
        return 0

    if args.plan == "random":
        plan = random_plan(args.seed, intensity=args.intensity)
    elif args.plan in PLANS:
        plan = PLANS[args.plan]
    else:
        print(f"unknown plan {args.plan!r}; available: "
              f"{', '.join(sorted(PLANS))}, random", file=sys.stderr)
        return 2
    unknown = [p for p in args.protocol if p not in registry.names()]
    if unknown:
        print(f"unknown protocol(s): {', '.join(unknown)}; available: "
              f"{', '.join(registry.names())}", file=sys.stderr)
        return 2

    runner = ChaosRunner(
        seed=args.seed,
        plan=plan,
        protocols=args.protocol or None,
        nodes=args.nodes,
        clients=args.clients,
        ops=args.ops,
    )
    reports = runner.run()
    print(format_reports(reports))

    if args.check_determinism:
        again = {r.protocol: r.fingerprint for r in runner.run()}
        first = {r.protocol: r.fingerprint for r in reports}
        if first != again:
            drifted = sorted(
                name for name in first if first[name] != again.get(name)
            )
            print(f"\nFAIL: nondeterministic trace fingerprint for "
                  f"{', '.join(drifted)}", file=sys.stderr)
            return 1
        print(f"\ndeterminism: {len(first)} protocol(s) reproduced "
              f"identical fingerprints on a second run")

    return 0 if all(report.ok for report in reports) else 1


def cmd_cache(args: argparse.Namespace) -> int:
    """Run the cache conformance grid and print the verdict table.

    Each cell wraps one backing adapter in a :class:`repro.cache.\
CachedStore` under one policy, drives a chaos workload with histories
    recorded at the cache boundary, and applies the standard checkers.

    Exit status: 0 when no cell FAILs, 1 on any checker FAIL or (with
    ``--check-determinism``) trace fingerprint drift, 2 on bad args.
    """
    from .api import registry
    from .cache import (
        POLICIES,
        default_adapters,
        format_cache_reports,
        run_cache_conformance,
    )
    from .chaos import PLANS

    if args.plan not in PLANS:
        print(f"unknown plan {args.plan!r}; available: "
              f"{', '.join(sorted(PLANS))}", file=sys.stderr)
        return 2
    adapters = args.adapter or default_adapters()
    unknown = [a for a in adapters if a not in registry.names()]
    if unknown:
        print(f"unknown adapter(s): {', '.join(unknown)}; available: "
              f"{', '.join(default_adapters())}", file=sys.stderr)
        return 2
    policies = args.policy or list(POLICIES)
    bad = [p for p in policies if p not in POLICIES and p != "uncached"]
    if bad:
        print(f"unknown policy(s): {', '.join(bad)}; available: "
              f"{', '.join(POLICIES)}, uncached", file=sys.stderr)
        return 2

    knobs = dict(seed=args.seed, plan=args.plan, ops=args.ops)
    reports = run_cache_conformance(adapters, policies, **knobs)
    print(format_cache_reports(reports))

    if args.check_determinism:
        again = run_cache_conformance(adapters, policies, **knobs)
        first = {(r.adapter, r.policy): r.fingerprint for r in reports}
        second = {(r.adapter, r.policy): r.fingerprint for r in again}
        if first != second:
            drifted = sorted(
                f"{a}/{p}" for (a, p) in first
                if first[a, p] != second.get((a, p))
            )
            print(f"\nFAIL: nondeterministic trace fingerprint for "
                  f"{', '.join(drifted)}", file=sys.stderr)
            return 1
        print(f"\ndeterminism: {len(first)} cell(s) reproduced identical "
              f"fingerprints on a second run")

    return 0 if all(report.ok for report in reports) else 1


def cmd_load(args: argparse.Namespace) -> int:
    """Open-loop load generator (``repro load``), plus the hot-key
    storm demo (``repro load --storm``).

    Exit status: 0 on success; for ``--storm``, 1 when the collapse /
    prevention / convergence verdicts fail or (with
    ``--check-determinism``) the fingerprint drifts between two runs.
    """
    from .api import registry

    if args.storm:
        from .chaos import format_storm, run_storm

        report = run_storm(seed=args.seed, protocol=args.protocol,
                           nodes=args.nodes)
        print(format_storm(report))
        if args.check_determinism:
            again = run_storm(seed=args.seed, protocol=args.protocol,
                              nodes=args.nodes)
            if again.fingerprint() != report.fingerprint():
                print("\nFAIL: storm trace fingerprint drifted between "
                      "two identical runs", file=sys.stderr)
                return 1
            print("\ndeterminism: identical fingerprints on a second run")
        return 0 if report.ok else 1

    from .analysis import print_table
    from .sim import FixedLatency, Network, Simulator
    from .workload import (
        DiurnalArrivals,
        FlashCrowdArrivals,
        OpenLoopDriver,
        PoissonArrivals,
        YCSBWorkload,
    )

    if args.protocol not in registry.names():
        print(f"unknown protocol {args.protocol!r}; available: "
              f"{', '.join(registry.names())}", file=sys.stderr)
        return 2
    if args.arrivals == "poisson":
        arrivals = PoissonArrivals(rate=args.rate, seed=args.seed)
    elif args.arrivals == "diurnal":
        arrivals = DiurnalArrivals(low=args.base, high=args.rate,
                                   period=args.period, seed=args.seed)
    elif args.arrivals == "flash":
        arrivals = FlashCrowdArrivals(
            base=args.base, spike=args.rate, spike_at=args.spike_at,
            hold=args.hold, decay=args.decay, seed=args.seed,
        )
    else:
        print(f"unknown arrival process {args.arrivals!r}", file=sys.stderr)
        return 2

    sim = Simulator(seed=args.seed)
    network = Network(sim, latency=FixedLatency(2.0))
    store = registry.build(
        args.protocol, sim, network, nodes=args.nodes,
        service_time=args.service_time,
        queue_limit=args.queue_limit,
        admission_rate=args.admission_rate,
    )
    ops = YCSBWorkload(args.preset, records=args.records, seed=args.seed)
    driver = OpenLoopDriver(store, arrivals, ops, sessions=args.sessions,
                            timeout=args.timeout, seed=args.seed)
    result = driver.run(args.duration)
    metrics = sim.metrics
    print_table(
        ["metric", "value"],
        [
            ["offered ops", result.offered],
            ["offered rate (ops/s)", round(result.offered_rate, 1)],
            ["completed ok", result.ok],
            ["goodput (ops/s)", round(result.goodput, 1)],
            ["failed", result.failed],
            ["shed (client-visible)", result.shed],
            ["shed (server-side)", metrics.counter("server.shed").value],
            ["queue depth peak", metrics.gauge("server.queue_depth_peak").value],
            ["read p50 / p99 (ms)",
             f"{result.read_latency.percentile(50):.1f} / "
             f"{result.read_latency.percentile(99):.1f}"],
            ["write p50 / p99 (ms)",
             f"{result.write_latency.percentile(50):.1f} / "
             f"{result.write_latency.percentile(99):.1f}"],
            ["sessions used", result.sessions_used],
        ],
        title=f"open-loop {args.arrivals} load: {args.protocol}, "
              f"{args.nodes} nodes, {args.duration:g}ms window",
    )
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """Run the elastic-scaling demo (``repro scale``).

    Exit status: 0 when both ring moves commit, no acknowledged write
    is lost, and the store converges; 1 on any verdict failure or
    (with ``--check-determinism``) fingerprint drift between two runs.
    """
    from .sharding.demo import format_scale, run_scale_demo

    knobs = dict(
        seed=args.seed, protocol=args.protocol, shards=args.shards,
        peak=args.peak, rate=args.rate, duration=args.duration,
    )
    report = run_scale_demo(**knobs)
    print(format_scale(report))
    if args.check_determinism:
        again = run_scale_demo(**knobs)
        if again.fingerprint != report.fingerprint:
            print("\nFAIL: scale trace fingerprint drifted between two "
                  "identical runs", file=sys.stderr)
            return 1
        print("\ndeterminism: identical fingerprints on a second run")
    return 0 if report.ok else 1


def cmd_multiregion(args: argparse.Namespace) -> int:
    """Run the multi-region flagship scenario (``repro multiregion``).

    Exit status: 0 when every protocol recovers from the region loss,
    local follower reads beat cross-region primary reads, and the
    quorum leg loses no acknowledged write; 1 on any verdict failure
    or (with ``--check-determinism``) fingerprint drift between runs.
    """
    from .scenarios import format_multiregion, run_multiregion

    protocols = tuple(args.protocol) or ("timeline", "primary_backup",
                                         "quorum")
    knobs = dict(seed=args.seed, protocols=protocols, quick=args.quick)
    try:
        report = run_multiregion(**knobs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_multiregion(report))
    if args.check_determinism:
        again = run_multiregion(**knobs)
        if again.fingerprint != report.fingerprint:
            print("\nFAIL: multiregion trace fingerprint drifted between "
                  "two identical runs", file=sys.stderr)
            return 1
        print("\ndeterminism: identical fingerprints on a second run")
    return 0 if report.ok else 1


def cmd_selftest(_args: argparse.Namespace) -> int:
    import pkgutil

    import repro

    count = 0
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(info.name)
        count += 1
    print(f"imported {count} modules")

    from repro import Network, Simulator, spawn
    from repro.checkers import check_linearizability
    from repro.replication import DynamoCluster

    sim = Simulator(seed=1)
    net = Network(sim)
    cluster = DynamoCluster(sim, net, nodes=5, n=3, r=2, w=2)
    client = cluster.connect()
    result = {}

    def script():
        yield client.put("k", "ok")
        value, _stamp = yield client.get("k")
        result["value"] = value

    spawn(sim, script())
    sim.run()
    assert result["value"] == "ok"
    assert check_linearizability(cluster.history()).ok
    print("smoke simulation ok (write/read/check on a 5-node quorum store)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("examples", help="list runnable examples")

    run_parser = sub.add_parser("run", help="run one example")
    run_parser.add_argument("example")

    pbs_parser = sub.add_parser("pbs", help="quick PBS grid")
    pbs_parser.add_argument("--n", type=int, default=3)
    pbs_parser.add_argument("--t", type=float, default=0.0)
    pbs_parser.add_argument("--trials", type=int, default=4000)
    pbs_parser.add_argument("--wan", action="store_true")

    spectrum_parser = sub.add_parser(
        "spectrum", help="print the consistency spectrum table"
    )
    spectrum_parser.add_argument("--rounds", type=int, default=15)
    spectrum_parser.add_argument("--seed", type=int, default=1)

    sub.add_parser(
        "protocols", help="list registered store adapters + capabilities"
    )

    trace_parser = sub.add_parser(
        "trace", help="summarize a JSONL trace dumped by repro.sim.Tracer"
    )
    trace_parser.add_argument("path", help="trace file (.jsonl)")
    trace_parser.add_argument(
        "--kind", action="append", default=[],
        help="keep only this event kind (repeatable), e.g. msg_drop",
    )
    trace_parser.add_argument(
        "--type", help="keep only messages of this payload type"
    )
    trace_parser.add_argument("--since", type=float, default=None,
                              help="keep events at/after this sim time (ms)")
    trace_parser.add_argument("--until", type=float, default=None,
                              help="keep events at/before this sim time (ms)")
    trace_parser.add_argument("--limit", type=int, default=40,
                              help="timeline lines to print (0 = all)")
    trace_parser.add_argument("--summary-only", action="store_true",
                              help="skip the timeline, print only summaries")

    bench_parser = sub.add_parser(
        "bench", help="run the seeded macro perf suite (BENCH_CORE.json)"
    )
    bench_parser.add_argument("--quick", action="store_true",
                              help="CI smoke scale (seconds, not minutes)")
    bench_parser.add_argument("--seed", type=int, default=42)
    bench_parser.add_argument(
        "--scenario", action="append", default=[],
        help="run only this scenario (repeatable; default: all)",
    )
    bench_parser.add_argument("--output", metavar="PATH",
                              help="write the BENCH_CORE.json document here")
    bench_parser.add_argument(
        "--compare", metavar="BASELINE",
        help="gate against a baseline BENCH_CORE.json (exit 1 on "
             "regression or behavior-fingerprint change)",
    )
    bench_parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional events/sec drop for --compare "
             "(default 0.30)",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="time each scenario N times and keep the best wall time "
             "(defense against machine noise; default 1)",
    )
    bench_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the traced verification pass (no trace hashes)",
    )
    bench_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan scenarios across N worker processes (default 1: "
             "serial — use serial for baseline regeneration, parallel "
             "for fast comparative runs)",
    )
    bench_parser.add_argument("--list", action="store_true",
                              help="list scenarios and exit")

    sweep_parser = sub.add_parser(
        "sweep",
        help="run one scenario across many seeds on a process pool",
    )
    sweep_parser.add_argument(
        "--scenario", default="quorum_ycsb",
        help="scenario to sweep (default quorum_ycsb; see bench --list)",
    )
    sweep_parser.add_argument(
        "--seeds", default="1-8", metavar="SPEC",
        help="seed spec: N, N-M, or comma list e.g. 1,2,5-7 "
             "(default 1-8)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial in-process)",
    )
    sweep_parser.add_argument(
        "--quick", action="store_true",
        help="quick per-seed scale (same meaning as bench --quick)",
    )
    sweep_parser.add_argument(
        "--check-determinism", action="store_true",
        help="also run serially and fail unless both runs produce the "
             "identical per-seed (trace_hash, metrics_digest) set",
    )
    sweep_parser.add_argument("--output", metavar="PATH",
                              help="write the sweep report JSON here")

    chaos_parser = sub.add_parser(
        "chaos", help="nemesis conformance suite: fault plan + checkers"
    )
    chaos_parser.add_argument("--seed", type=int, default=42)
    chaos_parser.add_argument(
        "--plan", default="partitions",
        help="fault plan name, or 'random' for a seeded random plan "
             "(default: partitions; see --list)",
    )
    chaos_parser.add_argument(
        "--protocol", action="append", default=[],
        help="run only this adapter (repeatable; default: all registered)",
    )
    chaos_parser.add_argument("--nodes", type=int, default=5)
    chaos_parser.add_argument("--clients", type=int, default=3)
    chaos_parser.add_argument("--ops", type=int, default=120,
                              help="workload length per protocol")
    chaos_parser.add_argument(
        "--intensity", type=float, default=0.5,
        help="fault density for --plan random (0..1, default 0.5)",
    )
    chaos_parser.add_argument(
        "--check-determinism", action="store_true",
        help="run the whole suite twice and fail on any trace "
             "fingerprint drift",
    )
    chaos_parser.add_argument("--list", action="store_true",
                              help="list built-in fault plans and exit")

    cache_parser = sub.add_parser(
        "cache", help="cache conformance grid: policy x adapter + checkers"
    )
    cache_parser.add_argument("--seed", type=int, default=42)
    cache_parser.add_argument(
        "--plan", default="partitions",
        help="fault plan name (default: partitions; see chaos --list)",
    )
    cache_parser.add_argument(
        "--adapter", action="append", default=[],
        help="backing adapter (repeatable; default: all registered)",
    )
    cache_parser.add_argument(
        "--policy", action="append", default=[],
        help="cache policy (repeatable; default: all four; "
             "'uncached' runs the bare adapter baseline)",
    )
    cache_parser.add_argument("--ops", type=int, default=60,
                              help="workload length per cell")
    cache_parser.add_argument(
        "--check-determinism", action="store_true",
        help="run the whole grid twice and fail on any trace "
             "fingerprint drift",
    )

    load_parser = sub.add_parser(
        "load", help="open-loop load generator + hot-key storm demo"
    )
    load_parser.add_argument("--protocol", default="quorum")
    load_parser.add_argument("--nodes", type=int, default=3)
    load_parser.add_argument("--seed", type=int, default=42)
    load_parser.add_argument(
        "--arrivals", default="poisson",
        choices=("poisson", "diurnal", "flash"),
        help="arrival process (default: poisson)",
    )
    load_parser.add_argument("--rate", type=float, default=2000.0,
                             help="peak offered rate, ops/sec")
    load_parser.add_argument("--base", type=float, default=200.0,
                             help="baseline rate for diurnal/flash")
    load_parser.add_argument("--period", type=float, default=60_000.0,
                             help="diurnal cycle length (ms)")
    load_parser.add_argument("--spike-at", type=float, default=500.0,
                             help="flash-crowd spike start (ms)")
    load_parser.add_argument("--hold", type=float, default=2000.0,
                             help="flash-crowd spike hold (ms)")
    load_parser.add_argument("--decay", type=float, default=1000.0,
                             help="flash-crowd decay constant (ms)")
    load_parser.add_argument("--duration", type=float, default=4000.0,
                             help="offered-traffic window (ms)")
    load_parser.add_argument("--sessions", type=int, default=1000)
    load_parser.add_argument("--timeout", type=float, default=250.0,
                             help="per-op client timeout (ms)")
    load_parser.add_argument("--preset", default="B",
                             help="YCSB preset for the op mix (default B)")
    load_parser.add_argument("--records", type=int, default=100,
                             help="keyspace size (small = hotter keys)")
    load_parser.add_argument("--service-time", type=float, default=1.0,
                             help="per-node service time (ms/request)")
    load_parser.add_argument("--queue-limit", type=int, default=None,
                             help="bounded service queue (default: off)")
    load_parser.add_argument("--admission-rate", type=float, default=None,
                             help="token-bucket ops/sec/node (default: off)")
    load_parser.add_argument(
        "--storm", action="store_true",
        help="run the three-leg hot-key storm demo instead",
    )
    load_parser.add_argument(
        "--check-determinism", action="store_true",
        help="with --storm: run twice, fail on fingerprint drift",
    )

    scale_parser = sub.add_parser(
        "scale", help="elastic-scaling demo: ring moves under live load"
    )
    scale_parser.add_argument("--seed", type=int, default=42)
    scale_parser.add_argument("--protocol", default="quorum")
    scale_parser.add_argument("--shards", type=int, default=2,
                              help="starting (and final) shard count")
    scale_parser.add_argument("--peak", type=int, default=4,
                              help="shard count to scale out to")
    scale_parser.add_argument("--rate", type=float, default=600.0,
                              help="offered load, ops/sec")
    scale_parser.add_argument("--duration", type=float, default=3000.0,
                              help="offered-traffic window (ms)")
    scale_parser.add_argument(
        "--check-determinism", action="store_true",
        help="run twice, fail on trace fingerprint drift",
    )

    multiregion_parser = sub.add_parser(
        "multiregion",
        help="multi-region flagship: region loss, failover, RTO/RPO",
    )
    multiregion_parser.add_argument("--seed", type=int, default=42)
    multiregion_parser.add_argument(
        "--protocol", action="append", default=[],
        help="run only this protocol leg (repeatable; default: "
             "timeline, primary_backup, quorum)",
    )
    multiregion_parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale: fewer shards and keys",
    )
    multiregion_parser.add_argument(
        "--check-determinism", action="store_true",
        help="run twice, fail on trace fingerprint drift",
    )

    sub.add_parser("selftest", help="import everything + smoke simulation")

    args = parser.parse_args(argv)
    handlers = {
        "examples": cmd_examples,
        "run": cmd_run,
        "pbs": cmd_pbs,
        "protocols": cmd_protocols,
        "spectrum": cmd_spectrum,
        "trace": cmd_trace,
        "bench": cmd_bench,
        "sweep": cmd_sweep,
        "chaos": cmd_chaos,
        "cache": cmd_cache,
        "load": cmd_load,
        "scale": cmd_scale,
        "multiregion": cmd_multiregion,
        "selftest": cmd_selftest,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
