"""Chaos conformance: run every adapter under a fault plan, check its claims.

For each registered protocol the runner builds a fresh seeded
simulator, drives a YCSB-style closed-loop workload while a
:class:`~repro.chaos.Nemesis` executes the fault plan, then stops the
nemesis, heals, quiesces (``store.settle()``), and asserts exactly the
guarantees the adapter's :class:`~repro.api.StoreCapabilities`
declares:

* convergence after heal — every store with ``eventually_convergent``;
* linearizability — when the chaos read mode is in
  ``linearizable_read_modes``;
* each claimed session guarantee — unless ``chaos_waivers`` names it
  (waivers surface as WAIVED rows with their documented reason, never
  as silent skips).

Every run is traced through a :class:`~repro.perf.HashingTracer`, so
a protocol's chaos run has a fingerprint: same seed + same plan ⇒
byte-identical trace, which the CLI and CI verify back-to-back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..api import registry
from ..checkers import (
    check_convergence,
    check_linearizability,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_writes_follow_reads,
)
from ..perf.harness import HashingTracer
from ..sim import FixedLatency, Network, Simulator
from ..workload import WorkloadDriver, YCSBWorkload
from .nemesis import Nemesis
from .plan import PLANS, FaultPlan

#: Statuses a conformance check can land on.
PASS, FAIL, UNKNOWN, WAIVED = "pass", "fail", "unknown", "waived"

SESSION_CHECKERS = {
    "ryw": check_read_your_writes,
    "mr": check_monotonic_reads,
    "mw": check_monotonic_writes,
    "wfr": check_writes_follow_reads,
}

#: Per-protocol knobs for the conformance workload: which read mode
#: the run records (the linearizable one where claimed), and session
#: options.  Everything else is uniform across protocols.
TUNING: dict[str, dict[str, Any]] = {
    "quorum": {"read_mode": "quorum"},
    "quorum_siblings": {"read_mode": "quorum"},
    "causal": {"read_mode": "local"},
    "timeline": {"read_mode": "critical"},
    "bayou": {"read_mode": "tentative"},
    "primary_backup": {"read_mode": "primary"},
    "chain": {"read_mode": "tail"},
    "multipaxos": {"read_mode": "log"},
    "pileus": {"read_mode": "sla"},
    # The cache wrapper (default: write_through over quorum) records
    # its chaos history at the cache boundary; the dedicated grid in
    # repro.cache.conformance sweeps every policy × adapter cell.
    "cached": {"read_mode": "cached"},
}


@dataclass
class CheckResult:
    """One guarantee's verdict for one protocol."""

    guarantee: str
    status: str                   # pass | fail | unknown | waived
    detail: str = ""
    checked_ops: int = 0


@dataclass
class ProtocolReport:
    """One protocol's full chaos-conformance outcome."""

    protocol: str
    plan: str
    seed: int
    fingerprint: str
    ops_ok: int = 0
    ops_failed: int = 0
    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.status != FAIL for r in self.results)


class ChaosRunner:
    """Runs the chaos conformance suite over registered adapters."""

    def __init__(
        self,
        seed: int = 42,
        plan: FaultPlan | str = "partitions",
        protocols: list[str] | None = None,
        nodes: int = 5,
        clients: int = 3,
        ops: int = 120,
        op_timeout: float = 250.0,
        think_time: float = 2.0,
        preset: str = "A",
        records: int = 24,
        final_heal: bool = True,
    ) -> None:
        self.seed = seed
        self.plan = PLANS[plan] if isinstance(plan, str) else plan
        self.protocols = protocols if protocols is not None \
            else registry.names()
        self.nodes = nodes
        self.clients = clients
        self.ops = ops
        self.op_timeout = op_timeout
        self.think_time = think_time
        self.preset = preset
        self.records = records
        self.final_heal = final_heal

    # ------------------------------------------------------------------
    def run(self) -> list[ProtocolReport]:
        return [self.run_protocol(name) for name in self.protocols]

    def run_protocol(self, name: str) -> ProtocolReport:
        """One protocol's chaos run, isolated in a fresh simulator."""
        spec = registry.get(name)
        tuning = TUNING.get(name, {})
        tracer = HashingTracer()
        sim = Simulator(self.seed, tracer=tracer)
        network = Network(sim, latency=FixedLatency(2.0))
        store = spec.build(sim, network, nodes=self.nodes,
                           **tuning.get("build", {}))

        workload = YCSBWorkload(self.preset, records=self.records,
                                seed=self.seed)
        driver = WorkloadDriver(sim)
        driver.add_clients(
            store, self.clients, workload.take(self.ops),
            session_opts=tuning.get("session_opts"),
            read_mode=tuning.get("read_mode"),
            timeout=self.op_timeout,
            think_time=self.think_time,
        )

        nemesis = Nemesis(self.plan, seed=self.seed)
        nemesis.install(store)
        result = driver.run()
        nemesis.stop()
        if self.final_heal:
            nemesis.heal_all()
            sim.run()
            # Two settle rounds: the first syncs data, the second lets
            # derived state (commit orders, cascaded installs) close.
            store.settle()
            sim.run()
            store.settle()
            sim.run()

        report = ProtocolReport(
            protocol=name,
            plan=self.plan.name,
            seed=self.seed,
            fingerprint=tracer.hexdigest(),
            ops_ok=result.ops_ok,
            ops_failed=result.ops_failed,
        )
        report.results = self._check(spec.capabilities, store, result, tuning)
        return report

    # ------------------------------------------------------------------
    def _check(self, caps, store, result, tuning) -> list[CheckResult]:
        checks: list[CheckResult] = []
        checks.append(self._check_convergence(caps, store))
        mode = tuning.get("read_mode") or caps.default_read_mode
        if mode in caps.linearizable_read_modes:
            checks.append(self._checker_result(
                caps, "linearizable",
                lambda: check_linearizability(result.history),
            ))
        for guarantee in caps.session_guarantees:
            checks.append(self._checker_result(
                caps, guarantee,
                lambda g=guarantee: SESSION_CHECKERS[g](result.history),
            ))
        return checks

    def _check_convergence(self, caps, store) -> CheckResult:
        if not caps.eventually_convergent:
            waiver = caps.waiver_for("convergence")
            if waiver:
                return CheckResult("convergence", WAIVED, waiver)
            return CheckResult(
                "convergence", UNKNOWN, "not claimed by capabilities"
            )
        if not self.final_heal and (
            self.plan.ends_partitioned()
            or any(s.fault in ("crash", "partition", "drop", "slow_link")
                   for s in self.plan.steps)
        ):
            return CheckResult(
                "convergence", UNKNOWN,
                "run ended mid-fault without a final heal; convergence "
                "is not assessable",
            )
        verdict = check_convergence(store.snapshots())
        if verdict.ok:
            return CheckResult("convergence", PASS,
                               checked_ops=verdict.checked_ops)
        return CheckResult(
            "convergence", FAIL,
            "; ".join(str(v) for v in verdict.violations[:3]),
            verdict.checked_ops,
        )

    def _checker_result(self, caps, guarantee, run_checker) -> CheckResult:
        waiver = caps.waiver_for(guarantee)
        if waiver is None and guarantee in SESSION_CHECKERS:
            # A blanket "session" waiver covers all four guarantees.
            waiver = caps.waiver_for("session")
        if waiver:
            return CheckResult(guarantee, WAIVED, waiver)
        verdict = run_checker()
        if verdict.checked_ops == 0:
            return CheckResult(
                guarantee, UNKNOWN, "vacuous: no checkable operations"
            )
        if verdict.ok:
            return CheckResult(guarantee, PASS,
                               checked_ops=verdict.checked_ops)
        return CheckResult(
            guarantee, FAIL,
            "; ".join(str(v) for v in verdict.violations[:3]),
            verdict.checked_ops,
        )


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def format_reports(reports: list[ProtocolReport]) -> str:
    """The per-protocol verdict table ``repro chaos`` prints."""
    lines = []
    if reports:
        lines.append(
            f"chaos conformance: plan={reports[0].plan} "
            f"seed={reports[0].seed}"
        )
    header = f"{'protocol':<17}{'guarantee':<14}{'status':<9}detail"
    lines.append(header)
    lines.append("-" * max(48, len(header)))
    for report in reports:
        ops = f"ok={report.ops_ok} failed={report.ops_failed}"
        lines.append(
            f"{report.protocol:<17}{'(workload)':<14}{'':<9}{ops} "
            f"fp={report.fingerprint[:12]}"
        )
        for check in report.results:
            detail = check.detail
            if check.status == PASS and check.checked_ops:
                detail = f"{check.checked_ops} ops checked"
            if len(detail) > 60:
                detail = detail[:57] + "..."
            lines.append(
                f"{'':<17}{check.guarantee:<14}{check.status.upper():<9}"
                f"{detail}"
            )
    failed = [r.protocol for r in reports if not r.ok]
    lines.append("-" * max(48, len(header)))
    if failed:
        lines.append(f"FAIL: {', '.join(failed)}")
    else:
        lines.append(f"PASS: {len(reports)} protocol(s) conform")
    return "\n".join(lines)
