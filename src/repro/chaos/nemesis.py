"""The nemesis: executes a :class:`~repro.chaos.FaultPlan` against a store.

Jepsen's nemesis re-imagined for a deterministic simulator: faults are
ordinary simulation events scheduled from the plan, and every random
choice (which node crashes, which side a client lands on, how much
skew) comes from the nemesis's **own** seeded RNG — never ``sim.rng``
— so installing a nemesis does not perturb the workload's random
sequence, and the same ``(plan, seed)`` replays bit-identically.

Every fault increments a ``chaos.<fault>`` counter and records a
``chaos`` trace annotation, so fault timing is visible in trace
timelines and is part of the run's fingerprint.
"""

from __future__ import annotations

import random
from typing import Any, Hashable

from ..errors import SimulationError
from .plan import FaultPlan, FaultStep


class Nemesis:
    """Schedules a plan's faults as simulation events.

    Usage::

        nemesis = Nemesis(PLANS["partitions"], seed=42)
        nemesis.install(store)       # before driver.run()
        ...run the workload...
        nemesis.stop()
        nemesis.heal_all()           # then settle + check
    """

    def __init__(self, plan: FaultPlan, seed: int | None = None) -> None:
        self.plan = plan
        self.seed = seed if seed is not None else plan.seed
        self.rng = random.Random(self.seed)
        self.store: Any = None
        self.crashed: set[Hashable] = set()
        self.skewed: set[Hashable] = set()
        self._events: list = []
        self._stopped = False
        self._installed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self, store: Any) -> None:
        """Attach to ``store`` and schedule every step (daemon events:
        the nemesis never keeps the simulation alive by itself).  Step
        times are relative to the install instant."""
        if self._installed:
            raise SimulationError("nemesis already installed")
        self._installed = True
        self.store = store
        self.sim = store.sim
        self.network = store.network
        self._base = self.sim.now
        self._steps_fired = self.sim.metrics.counter("chaos.steps")
        for plan_step in self.plan.steps:
            delay = plan_step.at if plan_step.at is not None \
                else plan_step.every
            self._events.append(
                self.sim.schedule_daemon(delay, self._fire, plan_step)
            )

    def stop(self) -> None:
        """Cancel every pending fault (fired ones stay fired)."""
        self._stopped = True
        for event in self._events:
            event.cancel()
        self._events.clear()

    def heal_all(self) -> None:
        """Undo every standing fault: heal the partition, clear link
        faults, zero clock skew, recover every node the nemesis
        crashed.  In-flight drops stay dropped — healing is not
        retroactive delivery."""
        self.network.heal()
        self.network.clear_link_faults()
        for node_id in sorted(self.skewed, key=str):
            self.network.node(node_id).clock_offset = 0.0
        self.skewed.clear()
        for node_id in sorted(self.crashed, key=str):
            self.store.recover(node_id)
        self.crashed.clear()
        self.sim.annotate("chaos", fault="heal_all")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _fire(self, plan_step: FaultStep) -> None:
        if self._stopped:
            return
        self._steps_fired.inc()
        self.sim.metrics.counter(f"chaos.{plan_step.fault}").inc()
        getattr(self, f"_do_{plan_step.fault}")(plan_step)
        if plan_step.every is not None:
            elapsed = self.sim.now - self._base  # plan times are relative
            if plan_step.until is None or \
                    elapsed + plan_step.every <= plan_step.until:
                self._events.append(
                    self.sim.schedule_daemon(plan_step.every, self._fire,
                                             plan_step)
                )

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------
    def _servers(self) -> list[Hashable]:
        return list(self.store.server_ids())

    def _alive_servers(self) -> list[Hashable]:
        return [s for s in self._servers() if s not in self.crashed]

    def _coordinator(self) -> Hashable | None:
        """The store's distinguished node, where the protocol has one:
        probes the wrapped cluster for a Paxos leader, a primary, or a
        chain head.  ``None`` for leaderless protocols."""
        cluster = getattr(self.store, "cluster", None)
        for attr in ("leader", "primary", "head"):
            try:
                node = getattr(cluster, attr, None)
            except Exception:
                # e.g. MultiPaxosCluster.leader raises when leaderless.
                node = None
            if node is not None and hasattr(node, "node_id"):
                return node.node_id
        return None

    def _pick_target(self, plan_step: FaultStep) -> Hashable | None:
        target = plan_step.param("target", "random")
        alive = self._alive_servers()
        if not alive:
            return None
        if target == "coordinator":
            coordinator = self._coordinator()
            if coordinator is not None and coordinator in alive:
                return coordinator
            return self.rng.choice(alive)
        if target == "random":
            return self.rng.choice(alive)
        return target if target in alive else None

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def _do_partition(self, plan_step: FaultStep) -> None:
        shape = plan_step.param("shape", "halves")
        servers = self._servers()
        if shape == "halves":
            split = (len(servers) + 1) // 2
            left, right = list(servers[:split]), list(servers[split:])
            # Every other network node (clients, forwarders) picks a
            # side — partition() would otherwise strand them in the
            # implicit leftover group, unable to reach any server.
            for node_id in self.network.node_ids:
                if node_id in servers:
                    continue
                (left if self.rng.random() < 0.5 else right).append(node_id)
            self.network.partition(left, right)
        elif shape == "ring":
            # Only ring-adjacent server links stay up (clients keep
            # full connectivity — the ring throttles replication).
            for i, a in enumerate(servers):
                for b in servers[i + 1:]:
                    j = servers.index(b)
                    if (j - i) % len(servers) in (1, len(servers) - 1):
                        continue
                    self.network.set_link_fault(a, b, down=True)
        elif shape == "bridge":
            # Two halves that can only talk through one bridge node.
            bridge = self.rng.choice(servers)
            rest = [s for s in servers if s != bridge]
            split = (len(rest) + 1) // 2
            left, right = rest[:split], rest[split:]
            for a in left:
                for b in right:
                    self.network.set_link_fault(a, b, down=True)
        else:  # pragma: no cover - plan validation rejects this
            raise SimulationError(f"unknown partition shape {shape!r}")
        self.sim.annotate("chaos", fault="partition", shape=shape)

    def _do_region_partition(self, plan_step: FaultStep) -> None:
        """Cut an entire region off the WAN: every node placed there —
        servers *and* clients — loses contact with the rest of the
        world (they still talk to each other)."""
        placement = getattr(self.store, "placement", None)
        if placement is None:
            self.sim.annotate("chaos", fault="region_partition",
                              skipped="unplaced")
            return
        region = plan_step.param("region")
        if region is None:
            region = self.rng.choice(sorted(placement.region_names))
        known = set(self.network.node_ids)
        lost = [
            node_id for node_id in placement.nodes_in(region)
            if node_id in known
        ]
        if not lost:
            self.sim.annotate("chaos", fault="region_partition",
                              region=region, skipped="empty")
            return
        # One explicit group; everything else lands in partition()'s
        # implicit rest-of-world group.
        self.network.partition(lost)
        self.sim.annotate("chaos", fault="region_partition", region=region,
                          nodes=len(lost))

    def _do_heal(self, plan_step: FaultStep) -> None:
        self.network.heal()
        self.network.clear_link_faults()
        self.sim.annotate("chaos", fault="heal")

    def _do_crash(self, plan_step: FaultStep) -> None:
        alive = self._alive_servers()
        if len(alive) <= 1:
            return  # never crash the last server standing
        target = self._pick_target(plan_step)
        if target is None:
            return
        self.store.crash(target)
        self.crashed.add(target)
        self.sim.annotate("chaos", fault="crash", node=target)

    def _do_recover(self, plan_step: FaultStep) -> None:
        target = plan_step.param("target", "all")
        if not self.crashed:
            return
        if target == "all":
            victims = sorted(self.crashed, key=str)
        elif target == "random":
            victims = [self.rng.choice(sorted(self.crashed, key=str))]
        else:
            victims = [target] if target in self.crashed else []
        for node_id in victims:
            self.store.recover(node_id)
            self.crashed.discard(node_id)
            self.sim.annotate("chaos", fault="recover", node=node_id)

    def _do_clock_skew(self, plan_step: FaultStep) -> None:
        target = plan_step.param("target")
        if target is None:
            servers = self._servers()
            if not servers:
                return
            target = self.rng.choice(servers)
        offset = plan_step.param("offset_ms")
        if offset is None:
            max_ms = plan_step.param("max_ms", 50.0)
            offset = self.rng.uniform(-max_ms, max_ms)
        self.network.node(target).clock_offset = offset
        self.skewed.add(target)
        self.sim.annotate("chaos", fault="clock_skew", node=target,
                          offset_ms=round(offset, 3))

    def _link_pair(self) -> tuple[Hashable, Hashable] | None:
        servers = self._servers()
        if len(servers) < 2:
            return None
        a, b = self.rng.sample(servers, 2)
        return a, b

    def _do_slow_link(self, plan_step: FaultStep) -> None:
        pair = self._link_pair()
        if pair is None:
            return
        a, b = pair
        extra = plan_step.param("extra_delay", 25.0)
        self.network.set_link_fault(a, b, extra_delay=extra)
        self._expire_link(plan_step, a, b)
        self.sim.annotate("chaos", fault="slow_link", a=a, b=b,
                          extra_delay=extra)

    def _do_drop(self, plan_step: FaultStep) -> None:
        pair = self._link_pair()
        if pair is None:
            return
        a, b = pair
        rate = plan_step.param("rate", 0.5)
        self.network.set_link_fault(a, b, drop_rate=rate)
        self._expire_link(plan_step, a, b)
        self.sim.annotate("chaos", fault="drop", a=a, b=b, rate=rate)

    # ------------------------------------------------------------------
    # Elastic faults (live ring moves on elastic stores)
    # ------------------------------------------------------------------
    def _elastic(self) -> bool:
        caps = getattr(self.store, "capabilities", None)
        return bool(caps is not None and getattr(caps, "elastic", False))

    def _do_scale_out(self, plan_step: FaultStep) -> None:
        if not self._elastic():
            self.sim.annotate("chaos", fault="scale_out", skipped="inelastic")
            return
        if self.store.rebalancing:
            self.sim.annotate("chaos", fault="scale_out", skipped="busy")
            return
        self.store.add_shard(plan_step.param("shard"))
        self.sim.annotate("chaos", fault="scale_out",
                          shards=len(self.store.shards))

    def _do_scale_in(self, plan_step: FaultStep) -> None:
        if not self._elastic():
            self.sim.annotate("chaos", fault="scale_in", skipped="inelastic")
            return
        if self.store.rebalancing or len(self.store.ring.nodes) <= 1:
            self.sim.annotate("chaos", fault="scale_in", skipped="busy")
            return
        self.store.decommission_shard(plan_step.param("shard"))
        self.sim.annotate("chaos", fault="scale_in",
                          shards=len(self.store.shards))

    def _expire_link(self, plan_step: FaultStep, a, b) -> None:
        duration = plan_step.param("duration", 0.0)
        if duration > 0:
            self._events.append(
                self.sim.schedule_daemon(
                    duration, self.network.clear_link_fault, a, b
                )
            )
