"""The hot-key storm: congestion collapse and its prevention.

A chaos scenario on the *traffic* axis rather than the network axis:
a flash crowd (open-loop, so it does not self-throttle) slams a
zipfian-hot keyspace against a quorum store whose hot key's ring
coordinator has finite capacity.  Without overload control the
coordinator's unbounded service queue grows past the client timeout —
every queued request is served only after its client gave up, so
service capacity is spent producing replies nobody reads.  Goodput
collapses while the servers run flat out: congestion collapse, the
metastable failure mode admission control exists to prevent.

The scenario runs the same seeded storm up to three times:

* ``knee``      — offered load at aggregate capacity, admission on:
  the best sustainable goodput (the top of the throughput–latency
  knee; E16 sweeps the full curve).
* ``collapse``  — flash crowd at several times capacity, admission
  *off*: goodput collapses far below the knee.
* ``protected`` — same flash crowd, bounded queue + token bucket on:
  excess arrivals are shed at admission with a retry-after hint,
  admitted requests finish inside their timeout, and goodput holds
  within 20% of the knee.

Every run is traced through a :class:`~repro.perf.HashingTracer`, so
the whole storm has a per-seed fingerprint; the CI overload-smoke job
runs it twice and fails on drift, and :func:`run_storm` checks
convergence after the storm quiesces (an overloaded store must shed or
slow, never diverge).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import registry
from ..checkers import check_convergence
from ..perf.harness import HashingTracer
from ..sim import FixedLatency, Network, Simulator
from ..workload import FlashCrowdArrivals, PoissonArrivals, YCSBWorkload
from ..workload.openloop import OpenLoopDriver

__all__ = ["StormRun", "StormReport", "run_storm", "format_storm"]

#: Per-node capacity knobs the storm uses; small on purpose so the
#: scenario saturates in a few simulated seconds.
SERVICE_TIME = 1.0          # ms per request -> 1000 ops/sec/node
QUEUE_LIMIT = 32            # admitted-but-unserved requests per node
ADMISSION_RATE = 900.0      # sustained ops/sec/node through the bucket
ADMISSION_BURST = 50.0


@dataclass
class StormRun:
    """One leg of the storm (knee, collapse, or protected)."""

    name: str
    admission: bool
    offered: int
    ok: int
    failed: int
    shed: int
    goodput: float
    p99_read: float
    p99_write: float
    queue_peak: float
    server_shed: int
    fingerprint: str
    converged: bool


@dataclass
class StormReport:
    """The storm's verdicts, per seed."""

    seed: int
    protocol: str
    runs: dict[str, StormRun] = field(default_factory=dict)

    @property
    def knee_goodput(self) -> float:
        return self.runs["knee"].goodput

    @property
    def collapse_demonstrated(self) -> bool:
        """Without admission control the flash crowd must have crushed
        goodput to under half the knee."""
        return self.runs["collapse"].goodput < 0.5 * self.knee_goodput

    @property
    def collapse_prevented(self) -> bool:
        """With admission control on, goodput must hold within 20% of
        the knee through the same flash crowd."""
        return self.runs["protected"].goodput >= 0.8 * self.knee_goodput

    @property
    def converged(self) -> bool:
        return all(run.converged for run in self.runs.values())

    @property
    def ok(self) -> bool:
        return (self.collapse_demonstrated and self.collapse_prevented
                and self.converged)

    def fingerprint(self) -> str:
        """One combined per-seed fingerprint over all three legs."""
        return "-".join(
            self.runs[name].fingerprint[:16] for name in sorted(self.runs)
        )


def _storm_leg(
    name: str,
    seed: int,
    arrivals,
    admission: bool,
    protocol: str,
    nodes: int,
    until: float,
    timeout: float,
) -> StormRun:
    tracer = HashingTracer()
    sim = Simulator(seed, tracer=tracer)
    network = Network(sim, latency=FixedLatency(2.0))
    knobs = {}
    if admission:
        knobs = dict(queue_limit=QUEUE_LIMIT, admission_rate=ADMISSION_RATE,
                     admission_burst=ADMISSION_BURST)
    store = registry.build(protocol, sim, network, nodes=nodes,
                           service_time=SERVICE_TIME, **knobs)
    # Small zipfian keyspace: the hottest key's ring coordinator is the
    # node the storm lands on.
    ops = YCSBWorkload("B", records=100, seed=seed)
    driver = OpenLoopDriver(store, arrivals, ops, sessions=1000,
                            timeout=timeout, seed=seed)
    result = driver.run(until)
    # The storm must never break safety: once traffic stops and the
    # store quiesces, replicas converge exactly as after a partition.
    store.settle()
    sim.run()
    converged = check_convergence(store.snapshots()).ok
    metrics = sim.metrics
    return StormRun(
        name=name,
        admission=admission,
        offered=result.offered,
        ok=result.ok,
        failed=result.failed,
        shed=result.shed,
        goodput=result.goodput,
        p99_read=result.read_latency.percentile(99),
        p99_write=result.write_latency.percentile(99),
        queue_peak=metrics.gauge("server.queue_depth_peak").value,
        server_shed=metrics.counter("server.shed").value,
        fingerprint=tracer.hexdigest(),
        converged=converged,
    )


def run_storm(
    seed: int = 42,
    protocol: str = "quorum",
    nodes: int = 3,
    base_rate: float = 500.0,
    spike_rate: float = 8000.0,
    spike_at: float = 500.0,
    hold: float = 2000.0,
    decay: float = 1000.0,
    until: float = 4000.0,
    timeout: float = 100.0,
) -> StormReport:
    """Run the three-leg hot-key storm; deterministic per ``seed``."""
    report = StormReport(seed=seed, protocol=protocol)
    capacity = nodes * 1000.0 / SERVICE_TIME
    report.runs["knee"] = _storm_leg(
        "knee", seed, PoissonArrivals(rate=capacity, seed=seed),
        admission=True, protocol=protocol, nodes=nodes,
        until=until, timeout=timeout,
    )
    storm = dict(base=base_rate, spike=spike_rate, spike_at=spike_at,
                 hold=hold, decay=decay, seed=seed)
    report.runs["collapse"] = _storm_leg(
        "collapse", seed, FlashCrowdArrivals(**storm),
        admission=False, protocol=protocol, nodes=nodes,
        until=until, timeout=timeout,
    )
    report.runs["protected"] = _storm_leg(
        "protected", seed, FlashCrowdArrivals(**storm),
        admission=True, protocol=protocol, nodes=nodes,
        until=until, timeout=timeout,
    )
    return report


def format_storm(report: StormReport) -> str:
    """The verdict table ``repro load --storm`` prints."""
    lines = [
        f"hot-key storm: protocol={report.protocol} seed={report.seed} "
        f"(service_time={SERVICE_TIME}ms/node)",
        f"{'leg':<11}{'admission':<11}{'offered':>8}{'ok':>8}{'shed':>8}"
        f"{'goodput':>9}{'p99 rd':>8}{'q.peak':>8}",
    ]
    lines.append("-" * len(lines[-1]))
    for name in ("knee", "collapse", "protected"):
        run = report.runs[name]
        lines.append(
            f"{run.name:<11}{'on' if run.admission else 'off':<11}"
            f"{run.offered:>8}{run.ok:>8}{run.shed:>8}"
            f"{run.goodput:>9.0f}{run.p99_read:>8.1f}{run.queue_peak:>8.0f}"
        )
    lines.append("-" * 71)
    knee = report.knee_goodput
    collapse = report.runs["collapse"].goodput
    protected = report.runs["protected"].goodput
    lines.append(
        f"collapse demonstrated: {report.collapse_demonstrated} "
        f"(goodput {collapse:.0f} vs knee {knee:.0f}, "
        f"needs < {0.5 * knee:.0f})"
    )
    lines.append(
        f"collapse prevented:    {report.collapse_prevented} "
        f"(goodput {protected:.0f}, needs >= {0.8 * knee:.0f})"
    )
    lines.append(f"converged after storm: {report.converged}")
    lines.append(f"fingerprint: {report.fingerprint()}")
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)
