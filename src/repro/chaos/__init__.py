"""Deterministic fault injection (nemesis) and chaos conformance.

The subsystem ISSUE 5 adds: seeded fault plans
(:class:`FaultPlan`, :data:`PLANS`, :func:`random_plan`), the
:class:`Nemesis` that executes them as simulation events, and the
:class:`ChaosRunner` that drives every registered store adapter
through a plan and checks its declared guarantees.
"""

from .nemesis import Nemesis
from .plan import (
    FAULTS,
    PARTITION_SHAPES,
    PLANS,
    FaultPlan,
    FaultStep,
    random_plan,
    step,
)
from .runner import (
    FAIL,
    PASS,
    TUNING,
    UNKNOWN,
    WAIVED,
    ChaosRunner,
    CheckResult,
    ProtocolReport,
    format_reports,
)
from .storm import StormReport, StormRun, format_storm, run_storm

__all__ = [
    "FAULTS",
    "PARTITION_SHAPES",
    "PLANS",
    "FaultPlan",
    "FaultStep",
    "step",
    "random_plan",
    "Nemesis",
    "ChaosRunner",
    "CheckResult",
    "ProtocolReport",
    "format_reports",
    "TUNING",
    "PASS",
    "FAIL",
    "UNKNOWN",
    "WAIVED",
    "StormRun",
    "StormReport",
    "run_storm",
    "format_storm",
]
