"""Fault plans: the declarative schedule a :class:`~repro.chaos.Nemesis` executes.

A plan is a list of :class:`FaultStep`\\ s — ``(at | every, fault,
params)`` — over the fault vocabulary of the tutorial's failure axes:

============  =============================================================
``partition`` split the network (``shape``: ``halves``/``ring``/``bridge``)
``region_partition`` cut one whole region off (``region``: name, or the
              nemesis picks one; needs a region-placed store)
``heal``      remove the partition and every link fault
``crash``     fail-stop a server (``target``: ``coordinator``/``random``/id)
``recover``   restart crashed servers (``target``: ``all``/``random``/id)
``clock_skew``offset one server's physical clock (``max_ms`` or
              ``offset_ms`` + ``target``)
``slow_link`` add ``extra_delay`` ms to one server↔server link
``drop``      drop ``rate`` of one server↔server link's messages
``scale_out`` add a shard to an elastic store (live ring move)
``scale_in``  decommission a shard from an elastic store
============  =============================================================

The ``scale_*`` faults target stores whose capabilities declare
``elastic``; against a fixed-topology store they are annotated no-ops,
so mixed plans stay portable across the registry.

Times are milliseconds **relative to nemesis install**.  Steps carry
no randomness themselves — target/side selection happens inside the
nemesis from its own seeded RNG, so the same ``(plan, seed)`` pair
replays the identical fault sequence (the determinism property the
chaos conformance suite fingerprints).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

FAULTS = (
    "partition",
    "region_partition",
    "heal",
    "crash",
    "recover",
    "clock_skew",
    "slow_link",
    "drop",
    "scale_out",
    "scale_in",
)

PARTITION_SHAPES = ("halves", "ring", "bridge")


@dataclass(frozen=True)
class FaultStep:
    """One scheduled fault: fires once (``at``) or periodically
    (``every``, optionally stopping at ``until``)."""

    fault: str
    at: float | None = None
    every: float | None = None
    until: float | None = None
    #: Sorted ``(key, value)`` pairs — kept as a tuple so steps stay
    #: hashable and their canonical form is order-independent.
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.fault not in FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; have {FAULTS}"
            )
        if (self.at is None) == (self.every is None):
            raise ValueError(
                f"step {self.fault!r} needs exactly one of at=/every="
            )
        if self.at is not None and self.at < 0:
            raise ValueError("at= must be non-negative")
        if self.every is not None and self.every <= 0:
            raise ValueError("every= must be positive")
        if self.until is not None and self.every is None:
            raise ValueError("until= only applies to repeating steps")
        shape = self.param("shape")
        if self.fault == "partition" and shape is not None \
                and shape not in PARTITION_SHAPES:
            raise ValueError(
                f"unknown partition shape {shape!r}; have {PARTITION_SHAPES}"
            )

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def canonical(self) -> str:
        bits = [self.fault]
        if self.at is not None:
            bits.append(f"at={self.at:g}")
        else:
            bits.append(f"every={self.every:g}")
            if self.until is not None:
                bits.append(f"until={self.until:g}")
        bits.extend(f"{k}={v!r}" for k, v in self.params)
        return "(" + " ".join(bits) + ")"


def step(
    fault: str,
    at: float | None = None,
    every: float | None = None,
    until: float | None = None,
    **params: Any,
) -> FaultStep:
    """Ergonomic :class:`FaultStep` constructor used by the named
    plans: ``step("partition", at=40, shape="halves")``."""
    return FaultStep(
        fault, at=at, every=every, until=until,
        params=tuple(sorted(params.items())),
    )


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered fault schedule."""

    name: str
    steps: tuple[FaultStep, ...]
    #: Default nemesis RNG seed (the nemesis may override).
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.steps, tuple):
            object.__setattr__(self, "steps", tuple(self.steps))

    def canonical(self) -> str:
        """A stable textual form — equal plans stringify identically,
        so plan identity can feed trace fingerprints."""
        inner = " ".join(s.canonical() for s in self.steps)
        return f"plan[{self.name} seed={self.seed} {inner}]"

    @property
    def horizon(self) -> float:
        """The last scheduled time the plan names (repeating steps
        without ``until`` contribute their first firing)."""
        times = [s.at if s.at is not None else (s.until or s.every)
                 for s in self.steps]
        return max(times) if times else 0.0

    def ends_partitioned(self) -> bool:
        """True when no ``heal`` follows the final one-shot
        ``partition`` — the history ends mid-partition and convergence
        is not assessable without an explicit final heal."""
        last_partition = last_heal = None
        for s in self.steps:
            if s.at is None:
                continue
            if s.fault == "partition":
                last_partition = s.at if last_partition is None \
                    else max(last_partition, s.at)
            elif s.fault == "heal":
                last_heal = s.at if last_heal is None \
                    else max(last_heal, s.at)
        if last_partition is None:
            return False
        return last_heal is None or last_heal < last_partition

    @classmethod
    def from_steps(
        cls,
        name: str,
        specs: Iterable[FaultStep | Mapping[str, Any]],
        seed: int = 0,
    ) -> "FaultPlan":
        """Build a plan from steps or plain dicts (the DSL form):
        ``{"at": 40, "fault": "partition", "shape": "halves"}``."""
        steps = []
        for spec in specs:
            if isinstance(spec, FaultStep):
                steps.append(spec)
                continue
            spec = dict(spec)
            fault = spec.pop("fault")
            at = spec.pop("at", None)
            every = spec.pop("every", None)
            until = spec.pop("until", None)
            steps.append(step(fault, at=at, every=every, until=until, **spec))
        return cls(name, tuple(steps), seed=seed)


def random_plan(
    seed: int,
    intensity: float = 0.5,
    horizon: float = 600.0,
) -> FaultPlan:
    """A seeded random plan: ``intensity`` in (0, 1] scales how many
    faults land inside ``horizon`` ms.  Always ends with a heal and a
    recover so histories close cleanly (the runner re-heals anyway)."""
    if not 0 < intensity <= 1:
        raise ValueError("intensity must be in (0, 1]")
    rng = random.Random(seed)
    count = max(1, round(intensity * 8))
    kinds = (
        "partition", "partition", "heal", "crash", "recover",
        "clock_skew", "slow_link", "drop",
    )
    steps = []
    times = sorted(rng.uniform(10.0, horizon * 0.8) for _ in range(count))
    for when in times:
        fault = rng.choice(kinds)
        if fault == "partition":
            steps.append(step("partition", at=when,
                              shape=rng.choice(PARTITION_SHAPES)))
        elif fault == "crash":
            steps.append(step("crash", at=when,
                              target=rng.choice(("coordinator", "random"))))
        elif fault == "recover":
            steps.append(step("recover", at=when, target="all"))
        elif fault == "clock_skew":
            steps.append(step("clock_skew", at=when,
                              max_ms=rng.uniform(10.0, 100.0)))
        elif fault == "slow_link":
            steps.append(step("slow_link", at=when,
                              extra_delay=rng.uniform(10.0, 60.0),
                              duration=rng.uniform(40.0, 120.0)))
        elif fault == "drop":
            steps.append(step("drop", at=when,
                              rate=rng.uniform(0.2, 0.8),
                              duration=rng.uniform(40.0, 120.0)))
        else:
            steps.append(step("heal", at=when))
    steps.append(step("heal", at=horizon * 0.9))
    steps.append(step("recover", at=horizon * 0.9, target="all"))
    return FaultPlan(f"random-{seed}", tuple(steps), seed=seed)


#: The default plan library the CLI and conformance suite reference by
#: name.  Times assume a workload spanning a few hundred simulated ms.
PLANS: dict[str, FaultPlan] = {
    "partitions": FaultPlan("partitions", (
        step("partition", at=40, shape="halves"),
        step("heal", at=140),
        step("partition", at=180, shape="ring"),
        step("heal", at=280),
        step("partition", at=320, shape="bridge"),
        step("heal", at=420),
    )),
    "crashes": FaultPlan("crashes", (
        step("crash", at=50, target="coordinator"),
        step("recover", at=150, target="all"),
        step("crash", at=200, target="random"),
        step("recover", at=300, target="all"),
    )),
    "clock": FaultPlan("clock", (
        step("clock_skew", every=60, until=360, max_ms=50),
    )),
    "links": FaultPlan("links", (
        step("slow_link", at=40, extra_delay=25, duration=90),
        step("drop", at=160, rate=0.5, duration=100),
        step("slow_link", at=290, extra_delay=40, duration=80),
        step("heal", at=400),
    )),
    "rebalance": FaultPlan("rebalance", (
        step("partition", at=40, shape="halves"),
        step("scale_out", at=60),
        step("heal", at=160),
        step("scale_in", at=420),
        step("heal", at=560),
    )),
    "region_loss": FaultPlan("region_loss", (
        step("region_partition", at=40),
        step("heal", at=400),
    )),
    "mixed": FaultPlan("mixed", (
        step("partition", at=40, shape="halves"),
        step("crash", at=80, target="random"),
        step("heal", at=160),
        step("recover", at=200, target="all"),
        step("drop", at=240, rate=0.4, duration=80),
        step("clock_skew", at=300, max_ms=40),
        step("heal", at=400),
    )),
}
