"""Operation histories: the raw material of consistency checking.

A :class:`History` is a set of client-observed operations — key, kind
(read/write), value/version, session, invocation and response times.
The checkers in :mod:`repro.checkers` are predicates over histories;
the replication protocols record histories via :class:`HistoryRecorder`
so every experiment's consistency claims are machine-checked rather
than asserted.
"""

from .events import History, Operation, make_read, make_write
from .recorder import HistoryRecorder, TokenHistoryRecorder

#: Aliases that read naturally at call sites.
ReadOp = make_read
WriteOp = make_write

__all__ = [
    "Operation",
    "ReadOp",
    "WriteOp",
    "History",
    "HistoryRecorder",
    "TokenHistoryRecorder",
    "make_read",
    "make_write",
]
