"""Recording histories from live simulations.

The recorder is deliberately dumb: protocols call ``begin`` when a
client operation is invoked and ``complete``/``fail`` when it returns.
Everything clever happens later, in the checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..sim import Simulator
from .events import History, Operation


@dataclass
class _PendingOp:
    kind: str
    key: Hashable
    session: Hashable
    start: float
    replica: Hashable


class HistoryRecorder:
    """Accumulates operations as they complete."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._pending: dict[int, _PendingOp] = {}
        self._next_handle = 0
        self._ops: list[Operation] = []

    def begin(
        self,
        kind: str,
        key: Hashable,
        session: Hashable,
        replica: Hashable = None,
    ) -> int:
        """Record an invocation; returns a handle for completion."""
        self._next_handle += 1
        self._pending[self._next_handle] = _PendingOp(
            kind, key, session, self.sim.now, replica
        )
        return self._next_handle

    def complete(
        self,
        handle: int,
        version: int,
        value: Any = None,
        replica: Hashable = None,
        tier: Hashable = None,
    ) -> Operation:
        """Record a successful response for ``handle``.

        ``tier`` names the serving tier that answered (``"cache"`` /
        ``"store"``) when the history is recorded at a cache boundary.
        """
        pending = self._pending.pop(handle)
        op = Operation(
            kind=pending.kind,
            key=pending.key,
            version=version,
            session=pending.session,
            start=pending.start,
            end=self.sim.now,
            value=value,
            replica=replica if replica is not None else pending.replica,
            tier=tier,
        )
        self._ops.append(op)
        return op

    def fail(self, handle: int, value: Any = None) -> Operation:
        """Record an operation that never produced a response.

        ``value`` is the value a write *attempted* — kept on the op so
        checkers can tie a later read of that value back to this
        maybe-applied write."""
        pending = self._pending.pop(handle)
        op = Operation(
            kind=pending.kind,
            key=pending.key,
            version=0,
            session=pending.session,
            start=pending.start,
            end=None,
            value=value,
            replica=pending.replica,
        )
        self._ops.append(op)
        return op

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def history(self) -> History:
        """Snapshot the history recorded so far."""
        return History(self._ops)

    def record(self, op: Operation) -> None:
        """Append an externally built operation (for composition)."""
        self._ops.append(op)


@dataclass
class _TokenOp:
    kind: str
    key: Hashable
    session: Hashable
    start: float
    end: float | None
    token: Any
    value: Any
    replica: Hashable
    tier: Hashable = None


class TokenHistoryRecorder(HistoryRecorder):
    """A recorder for version *tokens* instead of integer versions.

    The protocols stamp operations with heterogeneous version metadata
    — Lamport stamps, causal ranks, per-record sequence numbers —
    whose only shared property is a total order *within a key*.  This
    recorder accepts those tokens directly (:meth:`complete_token`)
    and densifies them into per-key integer versions at
    :meth:`history` time, exactly the post-hoc scheme
    :meth:`repro.replication.DynamoCluster.history` uses.  It is what
    lets one workload driver record a checkable history against any
    store behind the :mod:`repro.api` interface.

    Falsy tokens (``None``, ``0``, empty context) mean "nothing
    observed" and map to version 0, the checkers' initial state.
    """

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim)
        self._token_ops: list[_TokenOp] = []

    def complete_token(
        self,
        handle: int,
        token: Any,
        value: Any = None,
        replica: Hashable = None,
        tier: Hashable = None,
    ) -> None:
        """Record a successful response carrying a version token.

        ``tier`` tags the op with the serving tier (``"cache"`` /
        ``"store"``) when the caller drives a cache-fronted store."""
        pending = self._pending.pop(handle)
        self._token_ops.append(
            _TokenOp(
                pending.kind, pending.key, pending.session, pending.start,
                self.sim.now, token if token else None, value,
                replica if replica is not None else pending.replica,
                tier,
            )
        )

    def fail(  # type: ignore[override]
        self, handle: int, value: Any = None
    ) -> None:
        """Record an operation that never produced a response.
        ``value`` is a write's attempted value (see below)."""
        pending = self._pending.pop(handle)
        self._token_ops.append(
            _TokenOp(
                pending.kind, pending.key, pending.session, pending.start,
                None, None, value, pending.replica,
            )
        )

    def history(self) -> History:
        """Densify tokens into per-key versions; reads contribute their
        observed tokens too, so writes that timed out client-side but
        landed on replicas still rank consistently.

        A failed write carries no token (the server assigns it), but if
        a completed op later *observed* the write's attempted value, the
        write's version is inferred from that observation — otherwise a
        read of a maybe-applied write is an orphan version no write op
        explains, and the linearizability checker reports a phantom
        violation.  Inference only fires when the value maps to exactly
        one version for the key (workload values are unique)."""
        tokens_by_key: dict[Hashable, set] = {}
        for raw in self._token_ops:
            if raw.token is not None:
                tokens_by_key.setdefault(raw.key, set()).add(raw.token)
        rank: dict[tuple[Hashable, Any], int] = {}
        for key, tokens in tokens_by_key.items():
            for index, token in enumerate(sorted(tokens), start=1):
                rank[(key, token)] = index
        ambiguous = object()
        seen_versions: dict[tuple[Hashable, Any], Any] = {}
        for raw in self._token_ops:
            if raw.token is None or raw.value is None:
                continue
            observed = (raw.key, raw.value)
            version = rank[(raw.key, raw.token)]
            if seen_versions.setdefault(observed, version) != version:
                seen_versions[observed] = ambiguous
        ops = list(self._ops)
        for raw in self._token_ops:
            version = 0
            if raw.token is not None:
                version = rank.get((raw.key, raw.token), 0)
            elif raw.end is None and raw.kind == "write" \
                    and raw.value is not None:
                inferred = seen_versions.get((raw.key, raw.value))
                if isinstance(inferred, int):
                    version = inferred
            ops.append(
                Operation(
                    kind=raw.kind,
                    key=raw.key,
                    version=version,
                    session=raw.session,
                    start=raw.start,
                    end=raw.end,
                    value=raw.value,
                    replica=raw.replica,
                    tier=raw.tier,
                )
            )
        return History(ops)
