"""Recording histories from live simulations.

The recorder is deliberately dumb: protocols call ``begin`` when a
client operation is invoked and ``complete``/``fail`` when it returns.
Everything clever happens later, in the checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..sim import Simulator
from .events import History, Operation


@dataclass
class _PendingOp:
    kind: str
    key: Hashable
    session: Hashable
    start: float
    replica: Hashable


class HistoryRecorder:
    """Accumulates operations as they complete."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._pending: dict[int, _PendingOp] = {}
        self._next_handle = 0
        self._ops: list[Operation] = []

    def begin(
        self,
        kind: str,
        key: Hashable,
        session: Hashable,
        replica: Hashable = None,
    ) -> int:
        """Record an invocation; returns a handle for completion."""
        self._next_handle += 1
        self._pending[self._next_handle] = _PendingOp(
            kind, key, session, self.sim.now, replica
        )
        return self._next_handle

    def complete(
        self,
        handle: int,
        version: int,
        value: Any = None,
        replica: Hashable = None,
    ) -> Operation:
        """Record a successful response for ``handle``."""
        pending = self._pending.pop(handle)
        op = Operation(
            kind=pending.kind,
            key=pending.key,
            version=version,
            session=pending.session,
            start=pending.start,
            end=self.sim.now,
            value=value,
            replica=replica if replica is not None else pending.replica,
        )
        self._ops.append(op)
        return op

    def fail(self, handle: int) -> Operation:
        """Record an operation that never produced a response."""
        pending = self._pending.pop(handle)
        op = Operation(
            kind=pending.kind,
            key=pending.key,
            version=0,
            session=pending.session,
            start=pending.start,
            end=None,
            replica=pending.replica,
        )
        self._ops.append(op)
        return op

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def history(self) -> History:
        """Snapshot the history recorded so far."""
        return History(self._ops)

    def record(self, op: Operation) -> None:
        """Append an externally built operation (for composition)."""
        self._ops.append(op)
