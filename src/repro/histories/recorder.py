"""Recording histories from live simulations.

The recorder is deliberately dumb: protocols call ``begin`` when a
client operation is invoked and ``complete``/``fail`` when it returns.
Everything clever happens later, in the checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from ..sim import Simulator
from .events import History, Operation


@dataclass
class _PendingOp:
    kind: str
    key: Hashable
    session: Hashable
    start: float
    replica: Hashable


class HistoryRecorder:
    """Accumulates operations as they complete."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._pending: dict[int, _PendingOp] = {}
        self._next_handle = 0
        self._ops: list[Operation] = []

    def begin(
        self,
        kind: str,
        key: Hashable,
        session: Hashable,
        replica: Hashable = None,
    ) -> int:
        """Record an invocation; returns a handle for completion."""
        self._next_handle += 1
        self._pending[self._next_handle] = _PendingOp(
            kind, key, session, self.sim.now, replica
        )
        return self._next_handle

    def complete(
        self,
        handle: int,
        version: int,
        value: Any = None,
        replica: Hashable = None,
    ) -> Operation:
        """Record a successful response for ``handle``."""
        pending = self._pending.pop(handle)
        op = Operation(
            kind=pending.kind,
            key=pending.key,
            version=version,
            session=pending.session,
            start=pending.start,
            end=self.sim.now,
            value=value,
            replica=replica if replica is not None else pending.replica,
        )
        self._ops.append(op)
        return op

    def fail(self, handle: int) -> Operation:
        """Record an operation that never produced a response."""
        pending = self._pending.pop(handle)
        op = Operation(
            kind=pending.kind,
            key=pending.key,
            version=0,
            session=pending.session,
            start=pending.start,
            end=None,
            replica=pending.replica,
        )
        self._ops.append(op)
        return op

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def history(self) -> History:
        """Snapshot the history recorded so far."""
        return History(self._ops)

    def record(self, op: Operation) -> None:
        """Append an externally built operation (for composition)."""
        self._ops.append(op)


@dataclass
class _TokenOp:
    kind: str
    key: Hashable
    session: Hashable
    start: float
    end: float | None
    token: Any
    value: Any
    replica: Hashable


class TokenHistoryRecorder(HistoryRecorder):
    """A recorder for version *tokens* instead of integer versions.

    The protocols stamp operations with heterogeneous version metadata
    — Lamport stamps, causal ranks, per-record sequence numbers —
    whose only shared property is a total order *within a key*.  This
    recorder accepts those tokens directly (:meth:`complete_token`)
    and densifies them into per-key integer versions at
    :meth:`history` time, exactly the post-hoc scheme
    :meth:`repro.replication.DynamoCluster.history` uses.  It is what
    lets one workload driver record a checkable history against any
    store behind the :mod:`repro.api` interface.

    Falsy tokens (``None``, ``0``, empty context) mean "nothing
    observed" and map to version 0, the checkers' initial state.
    """

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim)
        self._token_ops: list[_TokenOp] = []

    def complete_token(
        self,
        handle: int,
        token: Any,
        value: Any = None,
        replica: Hashable = None,
    ) -> None:
        """Record a successful response carrying a version token."""
        pending = self._pending.pop(handle)
        self._token_ops.append(
            _TokenOp(
                pending.kind, pending.key, pending.session, pending.start,
                self.sim.now, token if token else None, value,
                replica if replica is not None else pending.replica,
            )
        )

    def fail(self, handle: int) -> None:  # type: ignore[override]
        """Record an operation that never produced a response."""
        pending = self._pending.pop(handle)
        self._token_ops.append(
            _TokenOp(
                pending.kind, pending.key, pending.session, pending.start,
                None, None, None, pending.replica,
            )
        )

    def history(self) -> History:
        """Densify tokens into per-key versions; reads contribute their
        observed tokens too, so writes that timed out client-side but
        landed on replicas still rank consistently."""
        tokens_by_key: dict[Hashable, set] = {}
        for raw in self._token_ops:
            if raw.token is not None:
                tokens_by_key.setdefault(raw.key, set()).add(raw.token)
        rank: dict[tuple[Hashable, Any], int] = {}
        for key, tokens in tokens_by_key.items():
            for index, token in enumerate(sorted(tokens), start=1):
                rank[(key, token)] = index
        ops = list(self._ops)
        for raw in self._token_ops:
            version = 0
            if raw.token is not None:
                version = rank.get((raw.key, raw.token), 0)
            ops.append(
                Operation(
                    kind=raw.kind,
                    key=raw.key,
                    version=version,
                    session=raw.session,
                    start=raw.start,
                    end=raw.end,
                    value=raw.value,
                    replica=raw.replica,
                )
            )
        return History(ops)
