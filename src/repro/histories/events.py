"""History event types.

Conventions the checkers rely on:

* Writes carry a per-key **version**: an integer that totally orders
  the installed writes of one key (assigned by the master, the commit
  protocol, or the LWW arbitration rank).  Version 0 means "the
  initial, never-written state".
* Reads record the version they observed (0 when the key was unborn).
* ``session`` identifies a client session — the unit over which the
  Terry et al. session guarantees are defined.
* Times are simulator milliseconds: ``start`` (invocation) and ``end``
  (response).  A failed/incomplete op has ``end = None`` and is ignored
  by most checkers (and treated as possibly-applied by the
  linearizability checker).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

_op_ids = itertools.count(1)


@dataclass(frozen=True)
class Operation:
    """One client-observed operation."""

    kind: str                 # "read" | "write"
    key: Hashable
    version: int              # per-key total order rank (0 = unborn)
    session: Hashable
    start: float
    end: float | None
    value: Any = None
    op_id: int = field(default_factory=lambda: next(_op_ids))
    replica: Hashable = None  # which replica served it (diagnostics)
    #: Which serving tier answered: ``"cache"`` for a cache hit,
    #: ``"store"`` for a read/write that reached the backing store,
    #: ``None`` when the history was recorded below any cache.  Lets
    #: the staleness checkers attribute staleness to the tier that
    #: caused it instead of assuming every op observed the
    #: authoritative store.
    tier: Hashable = None

    @property
    def is_read(self) -> bool:
        return self.kind == "read"

    @property
    def is_write(self) -> bool:
        return self.kind == "write"

    @property
    def completed(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:
        span = f"{self.start:.2f}-{self.end:.2f}" if self.completed else f"{self.start:.2f}-?"
        return (
            f"<{self.kind} {self.key!r}=v{self.version} s={self.session} "
            f"[{span}]>"
        )


def make_write(
    key: Hashable,
    version: int,
    session: Hashable = "s0",
    start: float = 0.0,
    end: float | None = 0.0,
    value: Any = None,
    replica: Hashable = None,
    tier: Hashable = None,
) -> Operation:
    """Test/bench helper: a completed write operation."""
    return Operation("write", key, version, session, start, end, value,
                     replica=replica, tier=tier)


def make_read(
    key: Hashable,
    version: int,
    session: Hashable = "s0",
    start: float = 0.0,
    end: float | None = 0.0,
    value: Any = None,
    replica: Hashable = None,
    tier: Hashable = None,
) -> Operation:
    """Test/bench helper: a completed read operation."""
    return Operation("read", key, version, session, start, end, value,
                     replica=replica, tier=tier)


# Aliases that read naturally at call sites.
WriteOp = make_write
ReadOp = make_read


class History:
    """An immutable collection of operations with indexed views."""

    def __init__(self, operations: Iterable[Operation] = ()) -> None:
        self._ops: tuple[Operation, ...] = tuple(
            sorted(operations, key=lambda op: (op.start, op.op_id))
        )

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index: int) -> Operation:
        return self._ops[index]

    def add(self, op: Operation) -> "History":
        return History(self._ops + (op,))

    def extend(self, ops: Iterable[Operation]) -> "History":
        return History(self._ops + tuple(ops))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def completed(self) -> list[Operation]:
        return [op for op in self._ops if op.completed]

    def by_session(self, session: Hashable) -> list[Operation]:
        """Completed ops of one session, in session (program) order."""
        ops = [op for op in self._ops if op.session == session and op.completed]
        ops.sort(key=lambda op: (op.start, op.op_id))
        return ops

    @property
    def sessions(self) -> list[Hashable]:
        seen: dict[Hashable, None] = {}
        for op in self._ops:
            seen.setdefault(op.session)
        return list(seen)

    def by_key(self, key: Hashable) -> list[Operation]:
        return [op for op in self._ops if op.key == key]

    @property
    def keys(self) -> list[Hashable]:
        seen: dict[Hashable, None] = {}
        for op in self._ops:
            seen.setdefault(op.key)
        return list(seen)

    def reads(self) -> list[Operation]:
        return [op for op in self._ops if op.is_read and op.completed]

    def writes(self) -> list[Operation]:
        return [op for op in self._ops if op.is_write]

    def latest_version_before(self, key: Hashable, time: float) -> int:
        """Highest version of ``key`` whose write completed by ``time``."""
        best = 0
        for op in self._ops:
            if (
                op.is_write
                and op.key == key
                and op.completed
                and op.end <= time
                and op.version > best
            ):
                best = op.version
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<History ops={len(self._ops)} sessions={len(self.sessions)}>"
