"""Multi-version storage for snapshot-isolation transactions.

Each key holds a chain of committed versions ordered by commit
timestamp.  Readers see the latest version with ``commit_ts <=
snapshot_ts``; writers install at their commit timestamp.  The store
also answers the first-committer-wins question SI needs: "was this key
committed by someone else after my snapshot?"

Timestamps are plain integers handed out by a
:class:`TimestampOracle` so tests can drive the store directly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Hashable, Iterator

from ..errors import StorageError


class TimestampOracle:
    """Monotonic commit/snapshot timestamp source."""

    def __init__(self, start: int = 0) -> None:
        self._last = start

    def next(self) -> int:
        self._last += 1
        return self._last

    @property
    def latest(self) -> int:
        return self._last


@dataclass(frozen=True)
class Version:
    """One committed version of a key."""

    commit_ts: int
    value: object
    deleted: bool = False


class MultiVersionStore:
    """Append-only version chains per key.

    >>> oracle = TimestampOracle()
    >>> store = MultiVersionStore()
    >>> t1 = oracle.next(); store.install("x", 1, t1)
    >>> t2 = oracle.next(); store.install("x", 2, t2)
    >>> store.read("x", snapshot_ts=t1)
    1
    >>> store.read("x", snapshot_ts=t2)
    2
    """

    def __init__(self) -> None:
        self._chains: dict[Hashable, list[Version]] = {}

    # ------------------------------------------------------------------
    def install(self, key: Hashable, value: object, commit_ts: int) -> None:
        """Append a committed version.  Timestamps must be fresh per key."""
        chain = self._chains.setdefault(key, [])
        if chain and commit_ts <= chain[-1].commit_ts:
            if any(v.commit_ts == commit_ts for v in chain):
                raise StorageError(
                    f"duplicate commit_ts {commit_ts} for key {key!r}"
                )
            # Out-of-order install (possible with distributed commit):
            # insert in timestamp order to keep chains sorted.
            index = bisect.bisect_left([v.commit_ts for v in chain], commit_ts)
            chain.insert(index, Version(commit_ts, value))
            return
        chain.append(Version(commit_ts, value))

    def install_delete(self, key: Hashable, commit_ts: int) -> None:
        chain = self._chains.setdefault(key, [])
        if chain and commit_ts <= chain[-1].commit_ts:
            raise StorageError(f"non-monotonic delete ts for key {key!r}")
        chain.append(Version(commit_ts, None, deleted=True))

    # ------------------------------------------------------------------
    def read(self, key: Hashable, snapshot_ts: int) -> object | None:
        """Value visible at ``snapshot_ts`` (None if absent/deleted)."""
        version = self.read_version(key, snapshot_ts)
        if version is None or version.deleted:
            return None
        return version.value

    def read_version(self, key: Hashable, snapshot_ts: int) -> Version | None:
        chain = self._chains.get(key)
        if not chain:
            return None
        timestamps = [v.commit_ts for v in chain]
        index = bisect.bisect_right(timestamps, snapshot_ts)
        if index == 0:
            return None
        return chain[index - 1]

    def latest_commit_ts(self, key: Hashable) -> int:
        """Commit timestamp of the newest version of ``key`` (0 if none)."""
        chain = self._chains.get(key)
        return chain[-1].commit_ts if chain else 0

    def modified_since(self, key: Hashable, snapshot_ts: int) -> bool:
        """First-committer-wins test: any version after ``snapshot_ts``?"""
        return self.latest_commit_ts(key) > snapshot_ts

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[Hashable]:
        return iter(self._chains)

    def chain(self, key: Hashable) -> list[Version]:
        return list(self._chains.get(key, ()))

    def vacuum(self, horizon_ts: int) -> int:
        """Drop versions no snapshot at or after ``horizon_ts`` can see.

        Keeps, per key, the newest version at or before the horizon
        plus everything after it.  Returns versions removed.
        """
        removed = 0
        for key, chain in self._chains.items():
            timestamps = [v.commit_ts for v in chain]
            index = bisect.bisect_right(timestamps, horizon_ts)
            if index > 1:
                removed += index - 1
                self._chains[key] = chain[index - 1:]
        return removed

    def version_count(self) -> int:
        return sum(len(chain) for chain in self._chains.values())

    def snapshot(self, snapshot_ts: int) -> dict[Hashable, object]:
        """Whole-store view at a timestamp (for checkers)."""
        out: dict[Hashable, object] = {}
        for key in self._chains:
            version = self.read_version(key, snapshot_ts)
            if version is not None and not version.deleted:
                out[key] = version.value
        return out
