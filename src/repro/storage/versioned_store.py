"""Per-replica storage engines for replicated key-value data.

Three conflict-handling disciplines from the tutorial's taxonomy:

* :class:`LWWStore` — last-writer-wins: each key holds one version,
  stamped with a totally ordered timestamp; concurrent writes are
  *arbitrated* (one silently loses).
* :class:`SiblingStore` — multi-value: concurrent writes are *kept* as
  siblings (Dynamo/Riak), using dotted version vectors; the application
  resolves on read.
* :class:`SequencedStore` — single-master: versions are totally ordered
  by a sequence number assigned at the master (PNUTS timeline, primary
  copy); no concurrency is possible by construction.

All three expose ``get``/``put``/``merge_from`` so replication
protocols can be written against a common surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..clocks import DottedValueSet, VectorClock
from ..clocks.hlc import HLCStamp
from ..clocks.lamport import LamportStamp

Timestamp = LamportStamp | HLCStamp


@dataclass(frozen=True)
class StampedValue:
    """A value with its arbitration timestamp (and optional tombstone)."""

    value: object
    stamp: Timestamp
    deleted: bool = False


class LWWStore:
    """Last-writer-wins register per key.

    The store never raises on conflict: ``put`` keeps whichever version
    has the greater stamp.  Deletes are tombstones so they win over
    earlier writes during anti-entropy.
    """

    def __init__(self) -> None:
        self._data: dict[Hashable, StampedValue] = {}

    def get(self, key: Hashable) -> object | None:
        entry = self._data.get(key)
        if entry is None or entry.deleted:
            return None
        return entry.value

    def get_stamped(self, key: Hashable) -> StampedValue | None:
        return self._data.get(key)

    def put(self, key: Hashable, value: object, stamp: Timestamp) -> bool:
        """Apply a write; returns True when it won (was applied)."""
        return self._apply(key, StampedValue(value, stamp))

    def delete(self, key: Hashable, stamp: Timestamp) -> bool:
        return self._apply(key, StampedValue(None, stamp, deleted=True))

    def _apply(self, key: Hashable, incoming: StampedValue) -> bool:
        current = self._data.get(key)
        if current is not None and not incoming.stamp > current.stamp:
            return False
        self._data[key] = incoming
        return True

    def merge_from(self, other: "LWWStore") -> int:
        """Anti-entropy: pull every winning version from ``other``.
        Returns how many keys changed."""
        changed = 0
        for key, entry in other._data.items():
            if self._apply(key, entry):
                changed += 1
        return changed

    def keys(self) -> Iterator[Hashable]:
        return (k for k, e in self._data.items() if not e.deleted)

    def items(self) -> Iterator[tuple[Hashable, object]]:
        return ((k, e.value) for k, e in self._data.items() if not e.deleted)

    def dump(self) -> dict[Hashable, StampedValue]:
        """Full internal state incl. tombstones (for Merkle trees)."""
        return dict(self._data)

    def __len__(self) -> int:
        return sum(1 for e in self._data.values() if not e.deleted)

    def snapshot(self) -> dict[Hashable, object]:
        """Visible key→value mapping (used by convergence checks)."""
        return {k: e.value for k, e in self._data.items() if not e.deleted}


class SiblingStore:
    """Multi-value store with dotted-version-vector sibling tracking.

    ``get`` returns ``(values, context)``; a client writes back with the
    context it read, which is how read-modify-write resolves siblings.
    """

    def __init__(self, replica: Hashable) -> None:
        self.replica = replica
        self._data: dict[Hashable, DottedValueSet] = {}

    def get(self, key: Hashable) -> tuple[list[object], VectorClock]:
        entry = self._data.get(key)
        if entry is None:
            return [], VectorClock()
        return entry.values(), entry.context()

    def put(
        self,
        key: Hashable,
        value: object,
        context: VectorClock | None = None,
    ) -> VectorClock:
        """Coordinate a write at this replica; returns the new context."""
        entry = self._data.get(key, DottedValueSet())
        updated = entry.put(self.replica, value, context or VectorClock())
        self._data[key] = updated
        return updated.context()

    def sibling_count(self, key: Hashable) -> int:
        entry = self._data.get(key)
        return 0 if entry is None else len(entry.versions)

    def merge_key(self, key: Hashable, remote: DottedValueSet) -> None:
        """Merge a remote sibling set for one key (anti-entropy unit)."""
        entry = self._data.get(key, DottedValueSet())
        self._data[key] = entry.sync(remote)

    def merge_from(self, other: "SiblingStore") -> int:
        changed = 0
        for key, remote in other._data.items():
            before = self._data.get(key)
            self.merge_key(key, remote)
            if before is None or self._data[key].versions != before.versions:
                changed += 1
        return changed

    def entry(self, key: Hashable) -> DottedValueSet:
        return self._data.get(key, DottedValueSet())

    def keys(self) -> Iterator[Hashable]:
        return (k for k, e in self._data.items() if not e.is_empty())

    def snapshot(self) -> dict[Hashable, tuple[object, ...]]:
        """Key → sorted sibling tuple (order-insensitive, for
        convergence comparison across replicas)."""
        return {
            k: tuple(sorted(e.values(), key=repr))
            for k, e in self._data.items()
            if not e.is_empty()
        }

    def __len__(self) -> int:
        return sum(1 for e in self._data.values() if not e.is_empty())


@dataclass(frozen=True)
class SequencedValue:
    """A value with its master-assigned sequence number."""

    value: object
    seqno: int
    deleted: bool = False


class SequencedStore:
    """Single-writer versioned store (PNUTS-style timeline per key).

    Versions carry a per-key sequence number assigned by whoever is the
    key's master; replicas apply versions in any arrival order but keep
    only the highest — which is safe exactly because a single master
    makes seqnos total per key.
    """

    def __init__(self) -> None:
        self._data: dict[Hashable, SequencedValue] = {}

    def current_seqno(self, key: Hashable) -> int:
        entry = self._data.get(key)
        return 0 if entry is None else entry.seqno

    def get(self, key: Hashable) -> object | None:
        entry = self._data.get(key)
        if entry is None or entry.deleted:
            return None
        return entry.value

    def get_versioned(self, key: Hashable) -> SequencedValue | None:
        return self._data.get(key)

    def apply(self, key: Hashable, version: SequencedValue) -> bool:
        """Install ``version`` if it is newer than what is stored."""
        current = self._data.get(key)
        if current is not None and version.seqno <= current.seqno:
            return False
        self._data[key] = version
        return True

    def write_as_master(self, key: Hashable, value: object) -> SequencedValue:
        """Master-side write: assign the next seqno and install."""
        version = SequencedValue(value, self.current_seqno(key) + 1)
        self._data[key] = version
        return version

    def snapshot(self) -> dict[Hashable, object]:
        return {k: e.value for k, e in self._data.items() if not e.deleted}

    def __len__(self) -> int:
        return sum(1 for e in self._data.values() if not e.deleted)
