"""Per-replica storage engines.

Conflict handling is the storage-level axis of the tutorial's
taxonomy: :class:`LWWStore` arbitrates, :class:`SiblingStore` keeps
conflicts for the app, :class:`SequencedStore` prevents them with a
single master, and :class:`MultiVersionStore` keeps committed history
for snapshot-isolation transactions.
"""

from .mvstore import MultiVersionStore, TimestampOracle, Version
from .versioned_store import (
    LWWStore,
    SequencedStore,
    SequencedValue,
    SiblingStore,
    StampedValue,
)

__all__ = [
    "LWWStore",
    "SiblingStore",
    "SequencedStore",
    "SequencedValue",
    "StampedValue",
    "MultiVersionStore",
    "TimestampOracle",
    "Version",
]
