"""Change-data-capture off the cache's write path.

A :class:`ChangeLog` tails every *acked backing write* a
:class:`~repro.cache.CachedStore` performs — direct writes for the
synchronous policies, flush acks for write-behind — as a totally
ordered, fingerprint-checkable stream of :class:`ChangeEvent`\\ s.
Derived-data consumers subscribe to it:

* :class:`InvalidationFeed` — fans events out to *other* caches as
  invalidations (optionally after a delivery delay), the classic
  CDC-driven cache-coherence bus.  Delivery rides the simulator clock,
  not the faulty network, so invalidation keeps flowing while a
  nemesis partitions the replicas — "nemesis-safe" by construction.
* :class:`MaterializedView` — a key → projected-value map maintained
  incrementally from the stream.  ``MaterializedView.rebuild`` replays
  the log from scratch; at any quiescent point the live view and the
  rebuild must agree fingerprint-for-fingerprint (the property the
  test suite enforces).

Determinism: events are appended in simulator order with dense
sequence numbers and hashed with a canonical encoding, so the same
seed yields the same CDC fingerprint byte for byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

__all__ = ["ChangeEvent", "ChangeLog", "InvalidationFeed",
           "MaterializedView"]


@dataclass(frozen=True)
class ChangeEvent:
    """One acked backing write, as seen by the cache tier."""

    seq: int          # dense, 1-based position in the log
    time: float       # simulated ms of the backing ack
    key: Hashable
    value: Any
    token: Any        # the version token the cache tracks for the write

    def encode(self) -> bytes:
        """Canonical byte encoding (fingerprints, wire framing)."""
        return (f"{self.seq}|{self.time!r}|{self.key!r}|"
                f"{self.value!r}|{self.token!r}\n").encode()


class ChangeLog:
    """An append-only, subscribable log of acked backing writes."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.events: list[ChangeEvent] = []
        self._subscribers: list[Callable[[ChangeEvent], None]] = []
        self._counter = sim.metrics.counter("cache.cdc_events")

    def append(self, key: Hashable, value: Any, token: Any) -> ChangeEvent:
        event = ChangeEvent(len(self.events) + 1, self.sim.now,
                            key, value, token)
        self.events.append(event)
        self._counter.inc()
        self.sim.annotate("cdc", op="append", key=key, seq=event.seq)
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def subscribe(
        self, fn: Callable[[ChangeEvent], None]
    ) -> Callable[[ChangeEvent], None]:
        """Call ``fn(event)`` on every future append; returns ``fn``."""
        self._subscribers.append(fn)
        return fn

    def replay(self) -> Iterator[ChangeEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def fingerprint(self) -> str:
        """Order-sensitive digest of the whole stream."""
        digest = hashlib.blake2b(digest_size=16)
        for event in self.events:
            digest.update(event.encode())
        return digest.hexdigest()


class InvalidationFeed:
    """Fans a ChangeLog out to peer caches as invalidations.

    ``delay`` models the propagation lag of the invalidation bus in
    simulated ms; within ``delay`` of any backing ack, every attached
    cache has dropped (or floor-fenced) its stale copy of the key.
    """

    def __init__(self, log: ChangeLog, delay: float = 0.0) -> None:
        self.log = log
        self.sim = log.sim
        self.delay = delay
        self.targets: list[Any] = []
        self.delivered = 0
        log.subscribe(self._on_event)

    def attach(self, cache_store: Any) -> "InvalidationFeed":
        """Attach a peer cache (anything with ``invalidate(key, token)``)."""
        self.targets.append(cache_store)
        return self

    def _on_event(self, event: ChangeEvent) -> None:
        for target in list(self.targets):
            if self.delay > 0:
                self.sim.schedule(self.delay, self._deliver, target, event)
            else:
                self._deliver(target, event)

    def _deliver(self, target: Any, event: ChangeEvent) -> None:
        target.invalidate(event.key, token=event.token)
        self.delivered += 1
        self.sim.annotate("cdc", op="invalidate", key=event.key,
                          seq=event.seq)


class MaterializedView:
    """A key → projected-value map maintained from a ChangeLog.

    ``project(key, value)`` derives the stored cell (default:
    identity).  ``apply`` is replay-safe: events at or below the
    applied watermark are ignored, so re-subscribing or replaying a
    prefix cannot double-apply.
    """

    def __init__(self, name: str = "view",
                 project: Callable[[Hashable, Any], Any] | None = None
                 ) -> None:
        self.name = name
        self.project = project if project is not None else (lambda k, v: v)
        self.state: dict[Hashable, Any] = {}
        self.applied_seq = 0

    def apply(self, event: ChangeEvent) -> None:
        if event.seq <= self.applied_seq:
            return
        self.state[event.key] = self.project(event.key, event.value)
        self.applied_seq = event.seq

    def follow(self, log: ChangeLog) -> "MaterializedView":
        """Subscribe to ``log``, applying the backlog first."""
        for event in log.replay():
            self.apply(event)
        log.subscribe(self.apply)
        return self

    @classmethod
    def rebuild(
        cls, log: ChangeLog, name: str = "rebuild",
        project: Callable[[Hashable, Any], Any] | None = None,
    ) -> "MaterializedView":
        """A from-scratch view built by replaying the whole log."""
        view = cls(name, project)
        for event in log.replay():
            view.apply(event)
        return view

    def fingerprint(self) -> str:
        """Order-insensitive digest of the current state."""
        digest = hashlib.blake2b(digest_size=16)
        for key in sorted(self.state, key=repr):
            digest.update(f"{key!r}={self.state[key]!r};".encode())
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MaterializedView {self.name} keys={len(self.state)} "
                f"applied={self.applied_seq}>")
