"""The caching and derived-data tier.

``repro.cache`` puts a deterministic TTL+LRU cache
(:class:`CachedStore`, four policies) in front of any registered
:class:`~repro.api.ConsistentStore`, tails its write path into a
change-data-capture stream (:mod:`repro.cache.cdc`) feeding
invalidation buses and materialized views, and checks the whole thing
with the existing session-guarantee / staleness checkers running on
cache-boundary histories (:mod:`repro.cache.conformance`).

Importing :mod:`repro.api` registers the ``"cached"`` adapter::

    store = registry.build("cached", sim, net, protocol="quorum",
                           policy="write_through", ttl=200.0)

The conformance runner is imported lazily (it pulls in the chaos and
perf machinery): ``from repro.cache import run_cache_conformance``.
"""

from .cdc import ChangeEvent, ChangeLog, InvalidationFeed, MaterializedView
from .store import (
    POLICIES,
    CachedSession,
    CachedStore,
    TierFuture,
    build_cached,
    derive_capabilities,
)

__all__ = [
    "POLICIES",
    "CachedStore",
    "CachedSession",
    "TierFuture",
    "build_cached",
    "derive_capabilities",
    "ChangeEvent",
    "ChangeLog",
    "InvalidationFeed",
    "MaterializedView",
    # Lazy (see __getattr__): the conformance surface.
    "run_cache_cell",
    "run_cache_conformance",
    "format_cache_reports",
    "CacheCellReport",
    "CacheCheck",
    "MISS_MODES",
    "default_adapters",
]

_LAZY = {
    "run_cache_cell", "run_cache_conformance", "format_cache_reports",
    "CacheCellReport", "CacheCheck", "MISS_MODES", "default_adapters",
}


def __getattr__(name: str):
    # The conformance module imports chaos/perf/workload, which would
    # cycle back into repro.api while the adapters are still
    # registering — defer until first use.
    if name in _LAZY:
        from . import conformance

        return getattr(conformance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
