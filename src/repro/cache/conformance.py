"""Cache conformance: every policy × every adapter, checker-verified.

The ChaosRunner asks "does a protocol defend its declared guarantees
under faults?"; this module asks the same question one tier up — with
the history recorded at the *cache boundary*, so the verdicts describe
what a client of the cache actually observes:

* convergence after heal + settle (write-behind must drain its dirty
  entries into the backing replicas);
* all four session guarantees, measured on every cell — claimed ones
  must PASS, unclaimed ones surface as WAIVED with the documented
  policy reason (plus whether they happened to hold on this run);
* bounded staleness against the capability-declared TTL-derived bound
  (``staleness_bound_ms``), with per-tier attribution of whatever
  staleness showed up.

Every cell runs in a fresh seeded simulator under a
:class:`~repro.perf.harness.HashingTracer`, so it has a trace
fingerprint: same seed + same cell ⇒ byte-identical run, which the
``repro cache --check-determinism`` CI gate verifies back to back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..api import registry
from ..chaos.plan import PLANS, FaultPlan
from ..chaos.runner import SESSION_CHECKERS
from ..checkers import (
    check_bounded_staleness,
    check_convergence,
    stale_read_fraction,
    staleness_by_tier,
)
from ..chaos.nemesis import Nemesis
from ..perf.harness import HashingTracer
from ..sim import FixedLatency, Network, Simulator
from ..workload import YCSBWorkload, run_workload
from .store import POLICIES

PASS, FAIL, UNKNOWN, WAIVED = "pass", "fail", "unknown", "waived"

#: Backing read mode per adapter for cache-miss fetches — mirrors the
#: ChaosRunner's per-protocol tuning so "what the cache fetches" is
#: the mode each adapter's claims are defined against.
MISS_MODES: dict[str, str] = {
    "quorum": "quorum",
    "quorum_siblings": "quorum",
    "causal": "local",
    "timeline": "critical",
    "bayou": "tentative",
    "primary_backup": "primary",
    "chain": "tail",
    "multipaxos": "log",
    "pileus": "sla",
}

#: Adapters a conformance sweep covers by default: every registered
#: protocol except the cache wrapper itself.
def default_adapters() -> list[str]:
    return [name for name in registry.names() if name != "cached"]


@dataclass
class CacheCheck:
    """One guarantee's verdict for one (adapter, policy) cell."""

    guarantee: str
    status: str                 # pass | fail | unknown | waived
    detail: str = ""
    claimed: bool = False
    checked_ops: int = 0


@dataclass
class CacheCellReport:
    """One (adapter, policy) cell's full outcome."""

    adapter: str
    policy: str
    seed: int
    plan: str
    fingerprint: str
    hit_rate: float = 0.0
    ops_ok: int = 0
    ops_failed: int = 0
    stale_fraction: float = 0.0
    stale_by_tier: dict = field(default_factory=dict)
    results: list[CacheCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.status != FAIL for r in self.results)

    def check(self, guarantee: str) -> CacheCheck | None:
        for result in self.results:
            if result.guarantee == guarantee:
                return result
        return None


def run_cache_cell(
    adapter: str,
    policy: str,
    seed: int = 42,
    plan: FaultPlan | str | None = None,
    nodes: int = 3,
    clients: int = 2,
    ops: int = 60,
    op_timeout: float = 250.0,
    think_time: float = 2.0,
    preset: str = "A",
    records: int = 16,
    ttl: float = 60.0,
    capacity: int = 64,
    flush_delay: float = 10.0,
    heal: bool = True,
) -> CacheCellReport:
    """One conformance cell: ``policy`` over ``adapter``, checked.

    ``policy="uncached"`` runs the bare adapter with the same workload
    — the baseline row of the E19 table.  ``plan`` installs a nemesis
    fault plan for the duration of the workload; with ``heal`` the run
    ends with heal + two settle rounds before checking.
    """
    if isinstance(plan, str):
        plan = PLANS[plan]
    tracer = HashingTracer()
    sim = Simulator(seed=seed, tracer=tracer)
    network = Network(sim, latency=FixedLatency(2.0))
    uncached = policy == "uncached"
    if uncached:
        store = registry.build(adapter, sim, network, nodes=nodes)
        read_mode = MISS_MODES.get(adapter)
    else:
        if policy not in POLICIES:
            raise ValueError(f"unknown cache policy {policy!r}")
        store = registry.build(
            "cached", sim, network, protocol=adapter, policy=policy,
            nodes=nodes, ttl=ttl, capacity=capacity,
            flush_delay=flush_delay, miss_mode=MISS_MODES.get(adapter),
        )
        read_mode = "cached"
    nemesis = Nemesis(plan, seed=seed) if plan is not None else None
    workload = YCSBWorkload(preset, records=records, seed=seed)
    result = run_workload(
        store, workload.take(ops), clients=clients, timeout=op_timeout,
        think_time=think_time, read_mode=read_mode, nemesis=nemesis,
    )
    if nemesis is not None and heal:
        nemesis.heal_all()
        sim.run()
        store.settle()
        sim.run()
        store.settle()
        sim.run()
    elif not uncached:
        # Even fault-free write-behind runs need a drain before the
        # convergence check sees the backing replicas agree.
        store.settle()
        sim.run()

    history = result.history
    caps = store.capabilities
    checks: list[CacheCheck] = []

    # Convergence after heal + settle.
    if caps.eventually_convergent:
        verdict = check_convergence(store.snapshots())
        if verdict.ok:
            checks.append(CacheCheck("convergence", PASS, claimed=True,
                                     checked_ops=verdict.checked_ops))
        else:
            checks.append(CacheCheck(
                "convergence", FAIL,
                "; ".join(str(v) for v in verdict.violations[:3]),
                claimed=True, checked_ops=verdict.checked_ops,
            ))
    else:
        checks.append(CacheCheck("convergence", UNKNOWN,
                                 "not claimed by capabilities"))

    # All four session guarantees, measured on every cell.
    for guarantee, checker in SESSION_CHECKERS.items():
        verdict = checker(history)
        claimed = guarantee in caps.session_guarantees
        measured_ok = verdict.ok
        if claimed:
            if verdict.checked_ops == 0:
                checks.append(CacheCheck(
                    guarantee, UNKNOWN, "vacuous: no checkable ops",
                    claimed=True,
                ))
            elif measured_ok:
                checks.append(CacheCheck(guarantee, PASS, claimed=True,
                                         checked_ops=verdict.checked_ops))
            else:
                checks.append(CacheCheck(
                    guarantee, FAIL,
                    "; ".join(str(v) for v in verdict.violations[:3]),
                    claimed=True, checked_ops=verdict.checked_ops,
                ))
            continue
        waiver = (caps.waiver_for(guarantee)
                  or caps.waiver_for("session"))
        if waiver:
            suffix = (" (held on this run)" if measured_ok
                      else " (violated on this run)")
            checks.append(CacheCheck(guarantee, WAIVED, waiver + suffix,
                                     checked_ops=verdict.checked_ops))
        else:
            checks.append(CacheCheck(
                guarantee, UNKNOWN,
                "not claimed" + (" (held on this run)" if measured_ok
                                 else " (violated on this run)"),
                checked_ops=verdict.checked_ops,
            ))

    # Bounded staleness against the declared TTL-derived bound.  The
    # slack is the per-op timeout: an entry filled by a read that took
    # the full timeout carries state up to that much older than its
    # install time (plus any in-flight write acked after the fetch).
    if caps.staleness_bound_ms is not None:
        bound = caps.staleness_bound_ms + op_timeout
        verdict = check_bounded_staleness(history, max_time=bound)
        if verdict.ok:
            checks.append(CacheCheck(
                "bounded-staleness", PASS,
                f"t-visibility <= {bound:.0f}ms",
                claimed=True, checked_ops=verdict.checked_ops,
            ))
        else:
            checks.append(CacheCheck(
                "bounded-staleness", FAIL,
                "; ".join(str(v) for v in verdict.violations[:3]),
                claimed=True, checked_ops=verdict.checked_ops,
            ))
    else:
        checks.append(CacheCheck(
            "bounded-staleness", UNKNOWN,
            "no declared bound (weak backing reads can exceed any TTL)",
        ))

    if uncached:
        hit_rate = 0.0
    else:
        stats = store.cache_stats()
        hit_rate = stats["hit_rate"]
    by_tier = {
        tier: round(ts.stale_fraction, 4)
        for tier, ts in sorted(staleness_by_tier(history).items(),
                               key=lambda item: repr(item[0]))
    }
    return CacheCellReport(
        adapter=adapter,
        policy=policy,
        seed=seed,
        plan=plan.name if plan is not None else "none",
        fingerprint=tracer.hexdigest(),
        hit_rate=hit_rate,
        ops_ok=result.ops_ok,
        ops_failed=result.ops_failed,
        stale_fraction=stale_read_fraction(history),
        stale_by_tier=by_tier,
        results=checks,
    )


def run_cache_conformance(
    adapters: list[str] | None = None,
    policies: tuple[str, ...] = POLICIES,
    **cell_kwargs: Any,
) -> list[CacheCellReport]:
    """The full grid: every policy over every adapter."""
    if adapters is None:
        adapters = default_adapters()
    return [
        run_cache_cell(adapter, policy, **cell_kwargs)
        for adapter in adapters
        for policy in policies
    ]


def format_cache_reports(reports: list[CacheCellReport]) -> str:
    """The verdict table ``repro cache`` prints."""
    lines: list[str] = []
    if reports:
        lines.append(
            f"cache conformance: plan={reports[0].plan} "
            f"seed={reports[0].seed}"
        )
    header = (f"{'adapter':<16}{'policy':<14}{'guarantee':<18}"
              f"{'status':<9}detail")
    lines.append(header)
    lines.append("-" * max(60, len(header)))
    for report in reports:
        summary = (f"ok={report.ops_ok} failed={report.ops_failed} "
                   f"hit={report.hit_rate:.0%} "
                   f"stale={report.stale_fraction:.0%} "
                   f"fp={report.fingerprint[:12]}")
        lines.append(
            f"{report.adapter:<16}{report.policy:<14}{'(workload)':<18}"
            f"{'':<9}{summary}"
        )
        for check in report.results:
            detail = check.detail
            if check.status == PASS and check.checked_ops and not detail:
                detail = f"{check.checked_ops} ops checked"
            if len(detail) > 58:
                detail = detail[:55] + "..."
            lines.append(
                f"{'':<16}{'':<14}{check.guarantee:<18}"
                f"{check.status.upper():<9}{detail}"
            )
    failed = [f"{r.adapter}/{r.policy}" for r in reports if not r.ok]
    lines.append("-" * max(60, len(header)))
    if failed:
        lines.append(f"FAIL: {', '.join(failed)}")
    else:
        lines.append(f"PASS: {len(reports)} cell(s) conform")
    return "\n".join(lines)
