"""A cache tier over any registered ConsistentStore.

:class:`CachedStore` wraps a built store with a seeded-deterministic
TTL + LRU cache and re-exposes the same ``ConsistentStore`` surface,
so every layer above — the workload drivers, the chaos nemesis, the
checkers, the CLI — runs unchanged *through* the cache.  The paper's
point, one tier up the stack: the layer that answers a read defines
the guarantee the client actually gets, and a cache is just another
such layer with its own spot on the staleness spectrum.

Policies (:data:`POLICIES`):

``cache_aside``
    Writes go to the backing store; the acked write *invalidates* the
    cached entry (and raises the per-key token floor so a racing stale
    fill cannot resurrect the old value).  Misses fill the cache.
``read_through``
    Writes go straight to the backing store and leave the cache alone:
    a hit may serve the old value until the entry's TTL expires — the
    classic "stale up to TTL" configuration.
``write_through``
    Writes go to the backing store and the acked ``(value, token)`` is
    installed into the cache, so hits serve the newest acked write.
``write_behind``
    Writes are acked from the cache immediately and flushed to the
    backing store asynchronously (coalescing per key); dirty entries
    live in a separate pending table, so LRU capacity never blocks an
    ack and eviction never loses an unflushed write.

Version tags
------------
Every entry carries the backing store's version token, so cache state
stays comparable with backing state.  Write-behind acks mint per-key
``("wb", seq)`` tokens before the backing token exists; the flush
records the backing-token → cache-token mapping so later miss fills
rank consistently, and a backing token the cache never issued maps to
``("wb", 0, token)`` — ordered below any cache-acked write of the key.

Serving-tier attribution
------------------------
Futures returned by a :class:`CachedSession` carry ``served_tier``
(``"cache"`` or ``"store"``); the workload drivers copy it onto the
recorded history ops so the staleness checkers can attribute staleness
to the tier that caused it.

Everything is deterministic: TTLs and jitter come from a dedicated
``random.Random(seed)``, flushes ride the simulator clock, and all
``cache.*`` metrics/trace annotations are pure functions of the run.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Any, Hashable

from ..api import registry as _registry
from ..api.store import ConsistentStore, StoreCapabilities, StoreSession
from ..sim import Future
from .cdc import ChangeLog

#: The four supported write policies.
POLICIES = ("cache_aside", "read_through", "write_through", "write_behind")

#: Session guarantees a policy can preserve *when the backing adapter
#: declares them*.  Everything else the inner store claims is waived
#: with a documented reason (see :func:`derive_capabilities`).
_PRESERVED = {
    "cache_aside": frozenset({"ryw", "mw"}),
    "read_through": frozenset({"mw"}),
    "write_through": frozenset({"ryw", "mw"}),
    "write_behind": frozenset({"mw"}),
}

_WAIVER_REASONS = {
    ("cache_aside", "mr"): (
        "a TTL-expired entry falls back to a backing read that may "
        "predate an earlier shared cache hit"
    ),
    ("cache_aside", "wfr"): (
        "cache hits are invisible to the backing session, so "
        "writes-follow-reads ordering is not propagated through hits"
    ),
    ("read_through", "ryw"): (
        "writes bypass the cache: a hit serves the pre-write value "
        "for up to the TTL"
    ),
    ("read_through", "mr"): (
        "writes bypass the cache, so successive hits/misses may "
        "observe versions out of order within the TTL window"
    ),
    ("read_through", "wfr"): (
        "cache hits are invisible to the backing session, so "
        "writes-follow-reads ordering is not propagated through hits"
    ),
    ("write_through", "mr"): (
        "a TTL-expired entry falls back to a backing read that may "
        "predate an earlier shared cache hit"
    ),
    ("write_through", "wfr"): (
        "cache hits are invisible to the backing session, so "
        "writes-follow-reads ordering is not propagated through hits"
    ),
    ("write_behind", "ryw"): (
        "once the dirty entry is flushed and expires, a weak backing "
        "read may predate the session's own cache-acked write"
    ),
    ("write_behind", "mr"): (
        "a TTL-expired entry falls back to a backing read that may "
        "predate an earlier cache hit or unflushed write"
    ),
    ("write_behind", "wfr"): (
        "cache acks precede durability: a dependent write can reach "
        "the backing store before the write it followed"
    ),
}


def _newer(a: Any, b: Any) -> bool:
    """True when token ``a`` orders strictly after ``b`` (None=unborn)."""
    if b is None:
        return a is not None
    if a is None:
        return False
    try:
        return a > b
    except TypeError:
        return False


class TierFuture(Future):
    """A Future that remembers which tier served it.

    ``Future`` is slotted, so the cache hands out this subclass; the
    drivers read ``served_tier`` duck-typed via ``getattr``.
    """

    __slots__ = ("served_tier",)

    def __init__(self, sim, tier: str | None = None, label: str = "") -> None:
        super().__init__(sim, label)
        self.served_tier = tier


class _Entry:
    __slots__ = ("value", "token", "expires_at")

    def __init__(self, value: Any, token: Any, expires_at: float) -> None:
        self.value = value
        self.token = token
        self.expires_at = expires_at


class _Pending:
    """One unflushed write-behind write."""

    __slots__ = ("value", "token", "seq", "retries")

    def __init__(self, value: Any, token: Any, seq: int) -> None:
        self.value = value
        self.token = token
        self.seq = seq
        self.retries = 0


class _CacheShard:
    """The cache state for one backing shard (or the whole store)."""

    __slots__ = ("entries", "floor", "pending", "key_seq", "wb_tags",
                 "flushing")

    def __init__(self) -> None:
        self.entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        #: Per-key token watermark: the newest token this cache has
        #: installed or invalidated with.  Guards fills against
        #: resurrecting state the cache already knows is superseded.
        self.floor: dict[Hashable, Any] = {}
        #: Write-behind dirty entries, outside the LRU on purpose:
        #: capacity bounds clean entries only, and eviction can never
        #: drop an unflushed write.
        self.pending: dict[Hashable, _Pending] = {}
        self.key_seq: dict[Hashable, int] = {}
        #: backing token -> cache ("wb", seq) token, per key.
        self.wb_tags: dict[Hashable, dict[Any, Any]] = {}
        #: Keys with a flush RPC on the wire (serializes flushes).
        self.flushing: set[Hashable] = set()


class CachedSession(StoreSession):
    """One client session through the cache.

    Reads in the default ``"cached"`` mode consult the cache; any
    other mode passes straight through to the backing session
    (uncached, tier ``"store"``).  Writes follow the store's policy.
    """

    def __init__(self, store: "CachedStore", inner: StoreSession) -> None:
        self.store = store
        self.inner = inner
        self.name = inner.name
        self.client_id = inner.client_id
        self.read_preference = inner.read_preference
        self.region = inner.region

    def put(self, key: Hashable, value: Any,
            timeout: float | None = None) -> Future:
        return self.store._put(self.inner, key, value, timeout)

    def get(self, key: Hashable, mode: str | None = None,
            timeout: float | None = None) -> Future:
        if mode is None or mode == "cached":
            return self.store._cached_get(self.inner, key, timeout)
        # Pass-through: an explicit backing-store read mode.
        inner_future = self.inner.get(key, mode=mode, timeout=timeout)
        return self.store._chain(inner_future, tier="store")


class CachedStore(ConsistentStore):
    """TTL + LRU cache tier in front of a built ConsistentStore.

    ``capacity`` bounds *clean* entries per shard (write-behind dirty
    entries are tracked separately and flushed, never evicted).
    ``ttl=None`` disables expiry.  ``seed`` drives TTL jitter only —
    with ``ttl_jitter=0`` (default) the cache is trivially
    deterministic; with jitter it is deterministic per seed.

    When the backing store exposes ``shard_of`` (the elastic sharded
    router), the cache keeps one independent shard-local cache per
    backing shard, created lazily as keys route.
    """

    def __init__(
        self,
        inner: ConsistentStore,
        policy: str = "write_through",
        ttl: float | None = 200.0,
        capacity: int = 512,
        flush_delay: float = 25.0,
        flush_timeout: float = 500.0,
        max_flush_retries: int = 8,
        hit_latency: float = 0.0,
        ttl_jitter: float = 0.0,
        seed: int = 0,
        miss_mode: str | None = None,
        staleness_bound_ms: float | None | str = "auto",
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; have {POLICIES}"
            )
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__(inner.sim, inner.network)
        self.inner = inner
        self.policy = policy
        self.ttl = ttl
        self.capacity = capacity
        self.flush_delay = flush_delay
        self.flush_timeout = flush_timeout
        self.max_flush_retries = max_flush_retries
        self.hit_latency = hit_latency
        self.ttl_jitter = ttl_jitter
        self.seed = seed
        self.miss_mode = miss_mode
        self._rng = random.Random(seed)
        self._shards: dict[Hashable, _CacheShard] = {}
        #: Change-data-capture: every *acked backing write* (direct or
        #: flushed), in commit-ack order, for invalidation feeds and
        #: materialized views.
        self.cdc = ChangeLog(self.sim)
        self.capabilities = derive_capabilities(
            inner.capabilities, policy, ttl,
            flush_delay if policy == "write_behind" else 0.0,
            staleness_bound_ms,
        )
        # Created eagerly so traces do not depend on first-write time.
        self._flusher = (inner.session("cache-flusher")
                        if policy == "write_behind" else None)
        metrics = self.sim.metrics
        self._hits = metrics.counter("cache.hits")
        self._misses = metrics.counter("cache.misses")
        self._fills = metrics.counter("cache.fills")
        self._evictions = metrics.counter("cache.evictions")
        self._expirations = metrics.counter("cache.expirations")
        self._invalidations = metrics.counter("cache.invalidations")
        self._stale_misses = metrics.counter("cache.stale_misses")
        self._wb_writes = metrics.counter("cache.wb_writes")
        self._wb_flushes = metrics.counter("cache.wb_flushes")
        self._wb_coalesced = metrics.counter("cache.wb_coalesced")
        self._wb_retries = metrics.counter("cache.wb_retries")
        self._wb_pending_hits = metrics.counter("cache.wb_pending_hits")
        self._size_gauge = metrics.gauge("cache.size")
        self._pending_gauge = metrics.gauge("cache.pending")

    # ------------------------------------------------------------------
    # ConsistentStore surface (delegation)
    # ------------------------------------------------------------------
    def session(self, name: Hashable | None = None,
                **opts: Any) -> CachedSession:
        return CachedSession(self, self.inner.session(name, **opts))

    def server_ids(self) -> list[Hashable]:
        return self.inner.server_ids()

    def history(self):
        return self.inner.history()

    def snapshots(self) -> list[dict]:
        return self.inner.snapshots()

    def resize(self, shards: int, **opts: Any) -> Future:
        return self.inner.resize(shards, **opts)

    def settle(self) -> None:
        """Flush every unflushed write-behind entry, then settle the
        backing store — quiescence means the cache holds nothing the
        backing replicas have not seen."""
        for shard in self._shards.values():
            for key, pend in list(shard.pending.items()):
                pend.retries = 0
                if key not in shard.flushing:
                    self.sim.call_soon(self._wb_flush, shard, key, pend.seq)
        self.inner.settle()

    def crash(self, node_id: Hashable) -> None:
        self.inner.crash(node_id)

    def recover(self, node_id: Hashable) -> None:
        self.inner.recover(node_id)

    @property
    def placement(self):
        return self.inner.placement

    def __getattr__(self, name: str):
        # Protocol-specific surfaces (cluster, ring, shards, shard_of,
        # add_shard, ...) delegate so the nemesis, autoscaler, and
        # tests poke the backing store through the cache transparently.
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # ------------------------------------------------------------------
    # Cache mechanics
    # ------------------------------------------------------------------
    def _shard_for(self, key: Hashable) -> _CacheShard:
        shard_of = getattr(self.inner, "shard_of", None)
        shard_id = shard_of(key) if shard_of is not None else "_"
        shard = self._shards.get(shard_id)
        if shard is None:
            shard = self._shards[shard_id] = _CacheShard()
        return shard

    def _expiry(self) -> float:
        if self.ttl is None:
            return float("inf")
        jitter = (self._rng.uniform(0.0, self.ttl_jitter)
                  if self.ttl_jitter > 0 else 0.0)
        return self.sim.now + self.ttl + jitter

    def _update_gauges(self) -> None:
        self._size_gauge.set(
            sum(len(s.entries) for s in self._shards.values())
        )
        self._pending_gauge.set(
            sum(len(s.pending) for s in self._shards.values())
        )

    def _chain(self, inner_future: Future, tier: str) -> TierFuture:
        outer = TierFuture(self.sim, tier)

        def done(future: Future) -> None:
            if future.error is not None:
                outer.fail(future.error)
            else:
                outer.resolve(future.value)

        inner_future.add_callback(done)
        return outer

    def _hit_future(self, value: Any, token: Any) -> TierFuture:
        future = TierFuture(self.sim, "cache")
        if self.hit_latency > 0:
            self.sim.schedule(self.hit_latency, future.resolve,
                              (value, token))
        else:
            future.resolve((value, token))
        return future

    def _install(self, shard: _CacheShard, key: Hashable, value: Any,
                 token: Any, fill: bool = False) -> bool:
        """Install ``(value, token)``; returns whether it was cached.

        Fills (miss-path installs) are floor-guarded: a backing read
        that returned state older than what this cache has already
        installed or invalidated is served to the caller but *not*
        cached — counted as ``cache.stale_misses``.
        """
        floor = shard.floor.get(key)
        if fill and floor is not None and token != floor \
                and not _newer(token, floor):
            self._stale_misses.inc()
            self.sim.annotate("cache", op="stale_miss", key=key,
                              policy=self.policy)
            return False
        entry = shard.entries.get(key)
        if entry is not None and _newer(entry.token, token):
            return False
        if floor is None or _newer(token, floor):
            shard.floor[key] = token
        shard.entries[key] = _Entry(value, token, self._expiry())
        shard.entries.move_to_end(key)
        while len(shard.entries) > self.capacity:
            evicted, _ = shard.entries.popitem(last=False)
            self._evictions.inc()
            self.sim.annotate("cache", op="evict", key=evicted,
                              policy=self.policy)
        self._fills.inc()
        self.sim.annotate("cache", op="fill", key=key, policy=self.policy)
        self._update_gauges()
        return True

    def _invalidate(self, shard: _CacheShard, key: Hashable,
                    token: Any = None) -> None:
        if token is not None:
            floor = shard.floor.get(key)
            if floor is None or _newer(token, floor):
                shard.floor[key] = token
        if key in shard.entries:
            del shard.entries[key]
            self._invalidations.inc()
            self.sim.annotate("cache", op="invalidate", key=key,
                              policy=self.policy)
            self._update_gauges()

    def invalidate(self, key: Hashable, token: Any = None) -> None:
        """Externally invalidate ``key`` (CDC invalidation feeds)."""
        self._invalidate(self._shard_for(key), key, token)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _cached_get(self, inner_session: StoreSession, key: Hashable,
                    timeout: float | None) -> Future:
        shard = self._shard_for(key)
        pend = shard.pending.get(key)
        if pend is not None:
            self._hits.inc()
            self._wb_pending_hits.inc()
            self.sim.annotate("cache", op="hit", key=key,
                              policy=self.policy, dirty=True)
            return self._hit_future(pend.value, pend.token)
        entry = shard.entries.get(key)
        if entry is not None:
            if self.sim.now >= entry.expires_at:
                del shard.entries[key]
                self._expirations.inc()
                self.sim.annotate("cache", op="expire", key=key,
                                  policy=self.policy)
                self._update_gauges()
            else:
                shard.entries.move_to_end(key)
                self._hits.inc()
                self.sim.annotate("cache", op="hit", key=key,
                                  policy=self.policy)
                return self._hit_future(entry.value, entry.token)
        self._misses.inc()
        self.sim.annotate("cache", op="miss", key=key, policy=self.policy)
        outer = TierFuture(self.sim, "store")
        inner_future = inner_session.get(key, mode=self.miss_mode,
                                         timeout=timeout)

        def done(future: Future) -> None:
            if future.error is not None:
                outer.fail(future.error)
                return
            value, token = future.value
            token = self._map_backing_token(shard, key, token)
            # Serve the backing result either way; _install decides
            # whether it is fresh enough to cache.
            self._install(shard, key, value, token, fill=True)
            outer.resolve((value, token))

        inner_future.add_callback(done)
        return outer

    def _map_backing_token(self, shard: _CacheShard, key: Hashable,
                           token: Any) -> Any:
        """Write-behind: translate a backing token into the cache's
        per-key ``("wb", ...)`` token space so all tokens of a key
        stay mutually comparable."""
        if self.policy != "write_behind" or token is None:
            return token
        mapped = shard.wb_tags.get(key, {}).get(token)
        if mapped is not None:
            return mapped
        # A write this cache never acked (another client, another
        # cache): rank it below any cache-acked write of the key.
        return ("wb", 0, token)

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def _put(self, inner_session: StoreSession, key: Hashable, value: Any,
             timeout: float | None) -> Future:
        shard = self._shard_for(key)
        if self.policy == "write_behind":
            return self._wb_put(shard, key, value)
        outer = TierFuture(self.sim, "store")
        inner_future = inner_session.put(key, value, timeout=timeout)

        def done(future: Future) -> None:
            if future.error is not None:
                if self.policy in ("cache_aside", "write_through"):
                    # Maybe-applied: drop the cached copy, keep the
                    # floor untouched (we learned no new token).
                    self._invalidate(shard, key)
                outer.fail(future.error)
                return
            token = future.value
            if self.policy == "cache_aside":
                self._invalidate(shard, key, token)
            elif self.policy == "write_through":
                self._install(shard, key, value, token)
            self.cdc.append(key, value, token)
            self.sim.annotate("cache", op="write", key=key,
                              policy=self.policy)
            outer.resolve(token)

        inner_future.add_callback(done)
        return outer

    def _wb_put(self, shard: _CacheShard, key: Hashable,
                value: Any) -> Future:
        seq = shard.key_seq.get(key, 0) + 1
        shard.key_seq[key] = seq
        token = ("wb", seq)
        shard.pending[key] = _Pending(value, token, seq)
        floor = shard.floor.get(key)
        if floor is None or _newer(token, floor):
            shard.floor[key] = token
        self._wb_writes.inc()
        self.sim.annotate("cache", op="write", key=key, policy=self.policy,
                          seq=seq)
        self._update_gauges()
        self.sim.schedule(self.flush_delay, self._wb_flush, shard, key, seq)
        future = TierFuture(self.sim, "cache")
        future.resolve(token)
        return future

    def _wb_flush(self, shard: _CacheShard, key: Hashable, seq: int) -> None:
        pend = shard.pending.get(key)
        if pend is None or pend.seq != seq:
            # Superseded by a newer write (its own flush is scheduled)
            # or already flushed.
            self._wb_coalesced.inc()
            return
        if key in shard.flushing:
            # A flush for this key is on the wire; its completion
            # handler chains the next one.
            return
        shard.flushing.add(key)
        inner_future = self._flusher.put(key, pend.value,
                                         timeout=self.flush_timeout)

        def done(future: Future) -> None:
            shard.flushing.discard(key)
            if future.error is not None:
                self._wb_retries.inc()
                pend.retries += 1
                if pend.retries <= self.max_flush_retries:
                    self.sim.schedule(
                        self.flush_delay * pend.retries,
                        self._wb_flush, shard, key, pend.seq,
                    )
                # Past the retry budget the entry stays pending;
                # settle() re-arms the flush once faults heal.
                return
            btoken = future.value
            shard.wb_tags.setdefault(key, {})[btoken] = pend.token
            self._wb_flushes.inc()
            self.sim.annotate("cache", op="flush", key=key,
                              policy=self.policy, seq=pend.seq)
            self.cdc.append(key, pend.value, pend.token)
            current = shard.pending.get(key)
            if current is pend:
                del shard.pending[key]
                self._install(shard, key, pend.value, pend.token)
                self._update_gauges()
            elif current is not None and key not in shard.flushing:
                # A newer write arrived while this flush was in
                # flight: chain its flush promptly (keeps per-key
                # flushes serialized so the backing store applies
                # them in ack order).
                self.sim.call_soon(self._wb_flush, shard, key, current.seq)

        inner_future.add_callback(done)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, int | float]:
        """A snapshot of the ``cache.*`` counters plus the hit rate."""
        hits = self._hits.value
        misses = self._misses.value
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
            "fills": self._fills.value,
            "evictions": self._evictions.value,
            "expirations": self._expirations.value,
            "invalidations": self._invalidations.value,
            "stale_misses": self._stale_misses.value,
            "wb_flushes": self._wb_flushes.value,
            "wb_coalesced": self._wb_coalesced.value,
            "wb_retries": self._wb_retries.value,
            "size": sum(len(s.entries) for s in self._shards.values()),
            "pending": sum(len(s.pending) for s in self._shards.values()),
        }


def derive_capabilities(
    inner: StoreCapabilities,
    policy: str,
    ttl: float | None,
    flush_delay: float,
    staleness_bound_ms: float | None | str = "auto",
) -> StoreCapabilities:
    """The honest capability record for a cache over ``inner``.

    Session-guarantee claims are the intersection of what the backing
    adapter declares and what the policy preserves; every dropped
    guarantee becomes a documented waiver.  ``staleness_bound_ms``
    defaults to ``"auto"``: TTL + flush lag when the backing store's
    default reads are fresh (its default mode is linearizable), else
    no declared bound — a weak backing read can exceed any TTL.
    """
    claimed = tuple(g for g in inner.session_guarantees
                    if g in _PRESERVED[policy])
    waivers = list(inner.chaos_waivers)
    for guarantee in inner.session_guarantees:
        if guarantee not in _PRESERVED[policy]:
            reason = _WAIVER_REASONS.get(
                (policy, guarantee),
                f"the {policy} policy does not preserve {guarantee}",
            )
            waivers.append((guarantee, reason))
    if staleness_bound_ms == "auto":
        backing_fresh = (
            inner.default_read_mode in inner.linearizable_read_modes
            or inner.name == "quorum"  # R+W>N at the default tuning
        )
        if ttl is not None and backing_fresh:
            staleness_bound_ms = ttl + flush_delay
        else:
            staleness_bound_ms = None
    return StoreCapabilities(
        name=f"cached[{inner.name}:{policy}]",
        description=(
            f"{policy} cache (ttl={ttl}) over {inner.name}"
        ),
        read_modes=("cached",) + inner.read_modes,
        session_guarantees=claimed,
        tentative_reads=inner.tentative_reads,
        multi_value_reads=inner.multi_value_reads,
        networked=inner.networked,
        has_history=inner.has_history,
        survives_replica_crash=inner.survives_replica_crash,
        retry_safe_reads=inner.retry_safe_reads,
        # Write-behind retries internally; the client-side idempotent
        # retry contract is not exercised on the ack path.
        retry_safe_writes=(inner.retry_safe_writes
                           and policy != "write_behind"),
        failover_reads=inner.failover_reads,
        failover_writes=(inner.failover_writes
                         and policy != "write_behind"),
        # Cache hits serve cached state: no linearizable mode claims.
        linearizable_read_modes=(),
        eventually_convergent=inner.eventually_convergent,
        elastic=inner.elastic,
        read_preferences=inner.read_preferences,
        chaos_waivers=tuple(waivers),
        staleness_bound_ms=staleness_bound_ms,
    )


#: Registry-level capabilities for ``registry.build("cached", ...)``.
#: Deliberately minimal: the real record depends on the policy and the
#: backing adapter, so :class:`CachedStore` derives its instance
#: capabilities at build time; the registry entry claims only what
#: every configuration defends (eventual convergence after settle).
_REGISTRY_CAPS = StoreCapabilities(
    name="cached",
    description="TTL+LRU cache tier over any registered adapter "
                "(protocol=..., policy=cache_aside|read_through|"
                "write_through|write_behind)",
    read_modes=("cached",),
    session_guarantees=(),
    eventually_convergent=True,
    chaos_waivers=(
        ("session", "session-guarantee claims depend on the cache "
                    "policy and backing adapter; see the instance "
                    "capabilities CachedStore derives"),
    ),
)


@_registry.register(_REGISTRY_CAPS)
def build_cached(sim, network, protocol: str = "quorum",
                 policy: str = "write_through", ttl: float | None = 200.0,
                 capacity: int = 512, flush_delay: float = 25.0,
                 flush_timeout: float = 500.0, hit_latency: float = 0.0,
                 ttl_jitter: float = 0.0, cache_seed: int = 0,
                 miss_mode: str | None = None,
                 staleness_bound_ms: float | None | str = "auto",
                 **inner_kwargs: Any) -> CachedStore:
    """Registry factory: build ``protocol`` and wrap it in a cache."""
    inner = _registry.build(protocol, sim, network, **inner_kwargs)
    return CachedStore(
        inner, policy=policy, ttl=ttl, capacity=capacity,
        flush_delay=flush_delay, flush_timeout=flush_timeout,
        hit_latency=hit_latency, ttl_jitter=ttl_jitter, seed=cache_seed,
        miss_mode=miss_mode, staleness_bound_ms=staleness_bound_ms,
    )
