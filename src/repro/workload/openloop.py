"""The open-loop traffic engine: arrival-time-driven op scheduling.

The closed-loop :class:`~repro.workload.driver.WorkloadDriver` keeps at
most one op in flight per lane, so offered load *self-throttles* as the
store slows down — it can measure latency at a fixed concurrency but
can never push a store past saturation.  Real traffic does not wait:
users arrive when they arrive.  This module schedules op *starts* by
arrival time, independent of completion, across a pool of lightweight
sessions — the open-loop model (Schroeder et al., "Open Versus Closed:
A Cautionary Tale") that exposes the throughput–latency knee and the
congestion-collapse regimes admission control exists for.

Arrival processes
-----------------
All processes yield *relative* arrival times in simulated ms (offsets
from the driver's start), are driven by their own ``random.Random``
seed, and re-seed on every ``iter()`` — the same process object
replays a byte-identical trace.

* :class:`PoissonArrivals` — homogeneous Poisson at ``rate`` ops/sec.
* :class:`DiurnalArrivals` — sinusoidal day/night rate curve
  (non-homogeneous Poisson via Lewis–Shedler thinning).
* :class:`FlashCrowdArrivals` — baseline rate, a sudden spike at
  ``spike_at`` held for ``hold`` ms, then exponential decay back to
  baseline (thinning again).
* :class:`ReplayArrivals` — replay an explicit list of arrival times
  (a recorded production trace, or a hand-built worst case).

Shape::

    arrivals = PoissonArrivals(rate=800, seed=7)
    ops = YCSBWorkload("B", records=1000, seed=7)   # zipfian hot keys
    result = run_workload(store, ops, arrivals=arrivals,
                          clients=1000, timeout=500.0, until=10_000)
    result.goodput, result.shed, result.read_latency.percentile(99)

Ops come from the same generators the closed-loop driver consumes
(``sleep`` specs are skipped — pacing is the arrival process's job);
every completed op lands in a :class:`TokenHistoryRecorder` history,
so the checkers run unchanged on open-loop runs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..analysis import LatencyStats
from ..errors import OverloadedError, ReproError
from ..histories import History, TokenHistoryRecorder
from .ycsb import OpSpec

__all__ = [
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "ReplayArrivals",
    "OpenLoopDriver",
    "OpenLoopResult",
]


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate`` ops/sec."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.seed = seed

    def __iter__(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        per_ms = self.rate / 1000.0
        t = 0.0
        while True:
            t += rng.expovariate(per_ms)
            yield t


class _ThinnedArrivals:
    """Non-homogeneous Poisson via Lewis–Shedler thinning: candidates
    arrive at the peak rate; each survives with probability
    ``rate_at(t) / peak``.  Subclasses define ``peak`` (ops/sec) and
    ``rate_at(t)`` (t in ms)."""

    peak: float
    seed: int

    def rate_at(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        per_ms = self.peak / 1000.0
        t = 0.0
        while True:
            t += rng.expovariate(per_ms)
            if rng.random() * self.peak <= self.rate_at(t):
                yield t


class DiurnalArrivals(_ThinnedArrivals):
    """A day/night sine curve between ``low`` and ``high`` ops/sec.

    ``period`` is the full cycle length in ms (default one simulated
    "day" compressed to 60 s); the rate starts at ``low`` (midnight)
    and peaks at ``high`` half a period in.
    """

    def __init__(self, low: float, high: float, period: float = 60_000.0,
                 seed: int = 0) -> None:
        if low < 0 or high <= 0 or high < low:
            raise ValueError("need 0 <= low <= high, high > 0")
        if period <= 0:
            raise ValueError("period must be positive")
        self.low = low
        self.high = high
        self.period = period
        self.peak = high
        self.seed = seed

    def rate_at(self, t: float) -> float:
        phase = (1.0 - math.cos(2.0 * math.pi * t / self.period)) / 2.0
        return self.low + (self.high - self.low) * phase


class FlashCrowdArrivals(_ThinnedArrivals):
    """Baseline traffic with one flash-crowd spike.

    Rate is ``base`` until ``spike_at``, jumps to ``spike`` for
    ``hold`` ms, then decays back toward ``base`` exponentially with
    time constant ``decay`` ms — the canonical shape of a link going
    viral and losing steam.
    """

    def __init__(self, base: float, spike: float, spike_at: float,
                 hold: float = 1000.0, decay: float = 2000.0,
                 seed: int = 0) -> None:
        if base < 0 or spike <= 0 or spike < base:
            raise ValueError("need 0 <= base <= spike, spike > 0")
        if spike_at < 0 or hold < 0 or decay <= 0:
            raise ValueError("spike_at/hold must be >= 0, decay > 0")
        self.base = base
        self.spike = spike
        self.spike_at = spike_at
        self.hold = hold
        self.decay = decay
        self.peak = spike
        self.seed = seed

    def rate_at(self, t: float) -> float:
        if t < self.spike_at:
            return self.base
        if t <= self.spike_at + self.hold:
            return self.spike
        elapsed = t - self.spike_at - self.hold
        return self.base + (self.spike - self.base) * math.exp(
            -elapsed / self.decay
        )


class ReplayArrivals:
    """Replay an explicit arrival-time trace (ms offsets, sorted)."""

    def __init__(self, times: Iterable[float]) -> None:
        self.times = sorted(float(t) for t in times)
        if self.times and self.times[0] < 0:
            raise ValueError("arrival times must be >= 0")

    def __iter__(self) -> Iterator[float]:
        return iter(self.times)


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class OpenLoopResult:
    """What an open-loop run produced.

    ``offered`` counts arrivals that fired; ``ok``/``failed`` partition
    the completed ops (``shed`` is the subset of failures that were
    overload rejections); ``in_flight`` counts ops the run cut off
    before they settled.  ``duration`` spans the *offered-traffic
    window*, so :attr:`goodput` is completions per second of offered
    load — the number that collapses under congestion.
    """

    history: History
    duration: float
    offered: int
    ok: int
    failed: int
    shed: int
    in_flight: int
    read_latency: LatencyStats
    write_latency: LatencyStats
    sessions_used: int

    @property
    def offered_rate(self) -> float:
        """Arrivals per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.offered / (self.duration / 1000.0)

    @property
    def goodput(self) -> float:
        """Successfully completed ops per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.ok / (self.duration / 1000.0)

    @property
    def ops_ok(self) -> int:
        return self.ok

    @property
    def ops_failed(self) -> int:
        return self.failed


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    """Per-issued-op context threaded through the future callbacks."""

    spec: OpSpec
    session: Any
    handle: Any
    started: float
    rmw_stage: bool = False      # True while running an rmw's read half


class OpenLoopDriver:
    """Issue ops at externally generated arrival times.

    Unlike the closed-loop driver there are no lane processes: each
    arrival picks a session from a lazily created pool (uniformly, by
    a seeded RNG, so traces replay byte-identically), fires the op,
    and registers a completion callback — thousands of concurrent ops
    cost one outstanding future each, not one generator frame.

    ``until`` (on :meth:`start`/:meth:`run`) bounds the arrival window
    in absolute simulated time; ops in flight at the cutoff are given
    ``timeout`` ms of grace to settle.  Rate-based arrival processes
    are infinite — bound the run with ``until`` or ``max_ops``.
    """

    def __init__(
        self,
        store: Any,
        arrivals: Iterable[float],
        ops: Iterable[OpSpec],
        sessions: int = 1000,
        session_opts: dict | None = None,
        recorder: TokenHistoryRecorder | None = None,
        retry: Any = None,
        timeout: float | None = 1000.0,
        read_mode: str | None = None,
        rmw_fn: Callable[[Any, Any], Any] | None = None,
        max_ops: int | None = None,
        seed: int = 0,
    ) -> None:
        if sessions < 1:
            raise ValueError("need at least one session")
        self.store = store
        self.sim = store.sim
        self.arrivals = arrivals
        self.ops = ops
        self.sessions = sessions
        self.recorder = recorder or TokenHistoryRecorder(self.sim)
        self.timeout = timeout
        self.read_mode = read_mode
        self.rmw_fn = rmw_fn
        self.max_ops = max_ops
        self.read_latency = LatencyStats()
        self.write_latency = LatencyStats()
        self.offered = 0
        self.ok = 0
        self.failed = 0
        self.shed = 0
        self.in_flight = 0
        self._session_opts = dict(session_opts or {})
        if retry is not None:
            self._session_opts["retry"] = retry
        self._pool: dict[int, Any] = {}
        self._session_rng = random.Random(seed)
        self._started = False
        self._start_time: float | None = None
        self._until: float | None = None
        self._last_arrival: float | None = None
        self._arrival_iter: Iterator[float] | None = None
        self._op_iter: Iterator[OpSpec] | None = None

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self, until: float | None = None) -> None:
        """Schedule the first arrival (idempotent)."""
        if self._started:
            return
        self._started = True
        self._start_time = self.sim.now
        self._until = until
        self._arrival_iter = iter(self.arrivals)
        self._op_iter = iter(self.ops)
        self._schedule_next_arrival()

    def run(self, until: float | None = None) -> OpenLoopResult:
        """Start (if needed), run the simulation, return the result.

        With ``until`` set, the simulator runs ``timeout`` ms past it
        so ops in flight at the cutoff settle instead of being counted
        as abandoned.
        """
        self.start(until)
        if until is None:
            self.sim.run()
        else:
            self.sim.run(until + (self.timeout or 0.0))
        return self.result()

    def result(self) -> OpenLoopResult:
        start = self._start_time
        if start is None:
            duration = 0.0
        elif self._until is not None:
            duration = max(0.0, min(self.sim.now, self._until) - start)
        elif self._last_arrival is not None:
            duration = max(0.0, self._last_arrival - start)
        else:
            duration = 0.0
        return OpenLoopResult(
            history=self.recorder.history(),
            duration=duration,
            offered=self.offered,
            ok=self.ok,
            failed=self.failed,
            shed=self.shed,
            in_flight=self.in_flight,
            read_latency=self.read_latency,
            write_latency=self.write_latency,
            sessions_used=len(self._pool),
        )

    # ------------------------------------------------------------------
    # Arrival scheduling
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self.max_ops is not None and self.offered >= self.max_ops:
            return
        try:
            offset = next(self._arrival_iter)
        except StopIteration:
            return
        at = self._start_time + offset
        if self._until is not None and at > self._until:
            return
        self.sim.schedule(max(0.0, at - self.sim.now), self._arrive)

    def _arrive(self) -> None:
        try:
            spec = next(self._op_iter)
            while spec.op == "sleep":    # pacing is the arrival process's job
                spec = next(self._op_iter)
        except StopIteration:
            return
        self.offered += 1
        self._last_arrival = self.sim.now
        self._issue(self._pick_session(), spec)
        self._schedule_next_arrival()

    def _pick_session(self) -> Any:
        index = self._session_rng.randrange(self.sessions)
        session = self._pool.get(index)
        if session is None:
            session = self.store.session(f"ol{index}", **self._session_opts)
            self._pool[index] = session
        return session

    # ------------------------------------------------------------------
    # Op execution (callback-chained; no generator frames)
    # ------------------------------------------------------------------
    def _issue(self, session: Any, spec: OpSpec) -> None:
        if spec.op == "read":
            self._begin_read(session, spec, rmw_stage=False)
        elif spec.op in ("update", "insert", "write", "put"):
            self._begin_write(session, spec, spec.value)
        elif spec.op == "rmw":
            self._begin_read(session, spec, rmw_stage=True)
        else:
            raise ValueError(f"open-loop driver cannot run op {spec.op!r}")

    def _begin_read(self, session: Any, spec: OpSpec, rmw_stage: bool) -> None:
        handle = self.recorder.begin(
            "read", spec.key, session.name, replica=session.client_id
        )
        ctx = _InFlight(spec, session, handle, self.sim.now, rmw_stage)
        self.in_flight += 1
        try:
            future = session.get(
                spec.key, mode=self.read_mode, timeout=self.timeout
            )
        except ReproError as exc:
            self._read_failed(ctx, exc)
            return
        future.add_callback(lambda f, c=ctx: self._read_done(c, f))

    def _read_done(self, ctx: _InFlight, future: Any) -> None:
        if future.error is not None:
            self._read_failed(ctx, future.error)
            return
        self.in_flight -= 1
        value, token = future.value
        self.read_latency.record(self.sim.now - ctx.started)
        self.recorder.complete_token(
            ctx.handle, token, value,
            tier=getattr(future, "served_tier", None),
        )
        if ctx.rmw_stage:
            new = (self.rmw_fn(value, ctx.spec.value)
                   if self.rmw_fn is not None else ctx.spec.value)
            self._begin_write(ctx.session, ctx.spec, new)
        else:
            self.ok += 1

    def _read_failed(self, ctx: _InFlight, error: BaseException) -> None:
        self.in_flight -= 1
        self.recorder.fail(ctx.handle)
        self._count_failure(error)

    def _begin_write(self, session: Any, spec: OpSpec, value: Any) -> None:
        handle = self.recorder.begin(
            "write", spec.key, session.name, replica=session.client_id
        )
        ctx = _InFlight(spec, session, handle, self.sim.now)
        self.in_flight += 1
        try:
            future = session.put(spec.key, value, timeout=self.timeout)
        except ReproError as exc:
            self._write_failed(ctx, value, exc)
            return
        future.add_callback(
            lambda f, c=ctx, v=value: self._write_done(c, v, f)
        )

    def _write_done(self, ctx: _InFlight, value: Any, future: Any) -> None:
        if future.error is not None:
            self._write_failed(ctx, value, future.error)
            return
        self.in_flight -= 1
        self.write_latency.record(self.sim.now - ctx.started)
        self.recorder.complete_token(
            ctx.handle, future.value, value,
            tier=getattr(future, "served_tier", None),
        )
        self.ok += 1

    def _write_failed(self, ctx: _InFlight, value: Any,
                      error: BaseException) -> None:
        self.in_flight -= 1
        # Keep the attempted value: a timed-out write may still have
        # landed, and history() ties later reads of it back here.
        self.recorder.fail(ctx.handle, value=value)
        self._count_failure(error)

    def _count_failure(self, error: BaseException) -> None:
        self.failed += 1
        if isinstance(error, OverloadedError):
            self.shed += 1
