"""YCSB-style key-value workload mixes.

The standard cloud-serving benchmark shapes, as named presets:

====  =====================  =========================
name  mix                    key distribution
====  =====================  =========================
A     50% read / 50% update  zipfian
B     95% read / 5% update   zipfian
C     100% read              zipfian
D     95% read / 5% insert   latest
F     50% read / 50% RMW     zipfian
====  =====================  =========================

(The original E is a scan workload; scans are out of scope for the
replication experiments, so E is omitted.)

A :class:`YCSBWorkload` yields ``OpSpec`` records; driver helpers turn
them into client operations against any of the repro stores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .keyspace import LatestKeys, UniformKeys, ZipfianKeys


@dataclass(frozen=True)
class OpSpec:
    """One generated operation."""

    op: str           # "read" | "update" | "insert" | "rmw"
    key: str
    value: str | None = None


@dataclass(frozen=True)
class MixSpec:
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix must sum to 1.0 (got {total})")


PRESETS: dict[str, tuple[MixSpec, str]] = {
    "A": (MixSpec(read=0.5, update=0.5), "zipfian"),
    "B": (MixSpec(read=0.95, update=0.05), "zipfian"),
    "C": (MixSpec(read=1.0), "zipfian"),
    "D": (MixSpec(read=0.95, insert=0.05), "latest"),
    "F": (MixSpec(read=0.5, rmw=0.5), "zipfian"),
}


class YCSBWorkload:
    """Deterministic op-stream generator.

    >>> wl = YCSBWorkload("B", records=100, seed=1)
    >>> ops = wl.take(10)
    >>> len(ops)
    10
    >>> all(op.op in ("read", "update") for op in ops)
    True
    """

    def __init__(
        self,
        preset: str | None = "A",
        records: int = 1000,
        seed: int = 0,
        mix: MixSpec | None = None,
        distribution: str | None = None,
        theta: float = 0.99,
    ) -> None:
        if preset is not None:
            if preset not in PRESETS:
                raise ValueError(
                    f"unknown preset {preset!r}; have {sorted(PRESETS)}"
                )
            preset_mix, preset_dist = PRESETS[preset]
            mix = mix or preset_mix
            distribution = distribution or preset_dist
        if mix is None:
            raise ValueError("provide a preset or an explicit mix")
        distribution = distribution or "zipfian"
        self.mix = mix
        self.records = records
        self.rng = random.Random(seed)
        self._value_counter = 0
        if distribution == "uniform":
            self.keys = UniformKeys(records)
        elif distribution == "zipfian":
            self.keys = ZipfianKeys(records, theta)
        elif distribution == "latest":
            self.keys = LatestKeys(records, theta)
        else:
            raise ValueError(f"unknown distribution {distribution!r}")
        self.distribution = distribution
        self._inserted = records

    def _next_value(self) -> str:
        self._value_counter += 1
        return f"v{self._value_counter}"

    def _pick_op(self) -> str:
        roll = self.rng.random()
        if roll < self.mix.read:
            return "read"
        roll -= self.mix.read
        if roll < self.mix.update:
            return "update"
        roll -= self.mix.update
        if roll < self.mix.insert:
            return "insert"
        return "rmw"

    def next_op(self) -> OpSpec:
        op = self._pick_op()
        if op == "insert":
            key_index = self._inserted
            self._inserted += 1
            if isinstance(self.keys, LatestKeys):
                self.keys.advance()
            return OpSpec("insert", f"user{key_index}", self._next_value())
        key = f"user{self.keys.choose(self.rng)}"
        if op == "read":
            return OpSpec("read", key)
        return OpSpec(op, key, self._next_value())

    def take(self, count: int) -> list[OpSpec]:
        return [self.next_op() for _ in range(count)]

    def __iter__(self) -> Iterator[OpSpec]:
        while True:
            yield self.next_op()
