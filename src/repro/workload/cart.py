"""Shopping-cart workload — Dynamo's motivating application.

Sessions of add/remove/view operations against per-customer carts.
Used by the CRDT convergence experiment (OR-Set carts vs. LWW carts)
and the Dynamo example: the famous anomaly is a removed item
resurfacing (LWW/2P-set) or a concurrent add surviving a checkout
(OR-Set, by design).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class CartOp:
    session: str      # customer session id
    action: str       # "add" | "remove" | "view" | "checkout"
    cart: str         # cart key
    item: str | None = None


class CartWorkload:
    """Generates interleaved cart sessions.

    Parameters
    ----------
    customers:
        Number of concurrent customers (each owns one cart).
    catalog:
        Number of distinct items.
    add_fraction / remove_fraction / view_fraction:
        Op mix; the remainder are checkouts (which view-then-clear).
    """

    def __init__(
        self,
        customers: int = 10,
        catalog: int = 50,
        add_fraction: float = 0.5,
        remove_fraction: float = 0.2,
        view_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        total = add_fraction + remove_fraction + view_fraction
        if total > 1.0 + 1e-9:
            raise ValueError("fractions exceed 1.0")
        if customers < 1 or catalog < 1:
            raise ValueError("need at least one customer and one item")
        self.customers = customers
        self.catalog = catalog
        self.add_fraction = add_fraction
        self.remove_fraction = remove_fraction
        self.view_fraction = view_fraction
        self.rng = random.Random(seed)
        # Track (approximate) cart contents so removes target items
        # that were actually added.
        self._contents: dict[str, set[str]] = {}

    def _cart_of(self, customer: int) -> str:
        return f"cart-{customer}"

    def next_op(self) -> CartOp:
        customer = self.rng.randrange(self.customers)
        cart = self._cart_of(customer)
        session = f"customer-{customer}"
        contents = self._contents.setdefault(cart, set())
        roll = self.rng.random()
        if roll < self.add_fraction or not contents:
            item = f"item-{self.rng.randrange(self.catalog)}"
            contents.add(item)
            return CartOp(session, "add", cart, item)
        roll -= self.add_fraction
        if roll < self.remove_fraction:
            item = self.rng.choice(sorted(contents))
            contents.discard(item)
            return CartOp(session, "remove", cart, item)
        roll -= self.remove_fraction
        if roll < self.view_fraction:
            return CartOp(session, "view", cart)
        contents.clear()
        return CartOp(session, "checkout", cart)

    def take(self, count: int) -> list[CartOp]:
        return [self.next_op() for _ in range(count)]
