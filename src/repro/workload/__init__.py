"""Workload generators: YCSB mixes, carts, bank ops, key distributions."""

from .bank import BankOp, BankWorkload, DebitOp, DebitWorkload
from .cart import CartOp, CartWorkload
from .keyspace import (
    HotspotKeys,
    LatestKeys,
    UniformKeys,
    ZipfianKeys,
    make_chooser,
)
from .ycsb import PRESETS, MixSpec, OpSpec, YCSBWorkload

__all__ = [
    "UniformKeys",
    "ZipfianKeys",
    "LatestKeys",
    "HotspotKeys",
    "make_chooser",
    "YCSBWorkload",
    "MixSpec",
    "OpSpec",
    "PRESETS",
    "CartWorkload",
    "CartOp",
    "BankWorkload",
    "BankOp",
    "DebitWorkload",
    "DebitOp",
]
