"""Workload generators: YCSB mixes, carts, bank ops, key distributions —
plus the protocol-agnostic closed-loop driver and the open-loop traffic
engine that run them against any :mod:`repro.api` store."""

from .bank import BankOp, BankWorkload, DebitOp, DebitWorkload
from .cart import CartOp, CartWorkload
from .driver import DriverResult, LaneStats, WorkloadDriver, run_workload
from .keyspace import (
    HotspotKeys,
    LatestKeys,
    UniformKeys,
    ZipfianKeys,
    make_chooser,
)
from .openloop import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    OpenLoopDriver,
    OpenLoopResult,
    PoissonArrivals,
    ReplayArrivals,
)
from .ycsb import PRESETS, MixSpec, OpSpec, YCSBWorkload

__all__ = [
    "UniformKeys",
    "ZipfianKeys",
    "LatestKeys",
    "HotspotKeys",
    "make_chooser",
    "YCSBWorkload",
    "MixSpec",
    "OpSpec",
    "PRESETS",
    "CartWorkload",
    "CartOp",
    "BankWorkload",
    "BankOp",
    "DebitWorkload",
    "DebitOp",
    "WorkloadDriver",
    "DriverResult",
    "LaneStats",
    "run_workload",
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "ReplayArrivals",
    "OpenLoopDriver",
    "OpenLoopResult",
]
