"""Key-choice distributions for workload generators.

YCSB's standard menu: uniform, Zipfian (Gray et al.'s generator, the
same one YCSB uses), latest (Zipfian over recency), and hotspot.  All
are driven by an externally supplied ``random.Random`` so whole
workloads replay from a seed.
"""

from __future__ import annotations

import random
from typing import Callable


class UniformKeys:
    """Keys 0..n-1, uniformly."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one key")
        self.n = n

    def choose(self, rng: random.Random) -> int:
        return rng.randrange(self.n)


class ZipfianKeys:
    """Zipfian distribution over 0..n-1 (Gray's rejection method).

    ``theta`` is the skew (YCSB default 0.99; higher = more skew).
    Item 0 is the most popular.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n < 1:
            raise ValueError("need at least one key")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self.zeta2 / self.zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def choose(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)


class LatestKeys:
    """Skewed toward recently inserted keys (YCSB 'latest').

    ``insert_point`` tracks the newest key; callers bump it with
    :meth:`advance` as the keyspace grows.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        self.insert_point = n - 1
        self._zipf = ZipfianKeys(max(n, 1), theta)

    def advance(self, count: int = 1) -> None:
        self.insert_point += count
        if self.insert_point >= self._zipf.n:
            self._zipf = ZipfianKeys(self.insert_point + 1, self._zipf.theta)

    def choose(self, rng: random.Random) -> int:
        offset = self._zipf.choose(rng)
        return max(0, self.insert_point - offset)


class HotspotKeys:
    """A fraction of ops hit a small hot set; the rest are uniform."""

    def __init__(self, n: int, hot_fraction: float = 0.2,
                 hot_op_fraction: float = 0.8) -> None:
        if n < 1:
            raise ValueError("need at least one key")
        if not 0 < hot_fraction <= 1 or not 0 <= hot_op_fraction <= 1:
            raise ValueError("fractions must be within (0,1] / [0,1]")
        self.n = n
        self.hot_count = max(1, int(n * hot_fraction))
        self.hot_op_fraction = hot_op_fraction

    def choose(self, rng: random.Random) -> int:
        if rng.random() < self.hot_op_fraction:
            return rng.randrange(self.hot_count)
        return rng.randrange(self.n)


KeyChooser = Callable[[random.Random], int]


def make_chooser(kind: str, n: int, **kwargs) -> object:
    """Factory: ``uniform`` | ``zipfian`` | ``latest`` | ``hotspot``."""
    kinds = {
        "uniform": UniformKeys,
        "zipfian": ZipfianKeys,
        "latest": LatestKeys,
        "hotspot": HotspotKeys,
    }
    if kind not in kinds:
        raise ValueError(f"unknown key distribution {kind!r}")
    return kinds[kind](n, **kwargs)
