"""The protocol-agnostic workload driver.

One closed-loop driver replaces the bespoke client scripts the
benchmarks used to carry: it consumes :class:`OpSpec` streams from any
generator in :mod:`repro.workload`, issues them against any
:class:`repro.api.ConsistentStore` session, records every operation
into a :class:`~repro.histories.TokenHistoryRecorder`, and returns a
:class:`DriverResult` whose history plugs straight into the checkers.

Shape::

    driver = WorkloadDriver(sim)
    lane = driver.add_session(store.session("alice"), workload.take(200),
                              think_time=5.0, timeout=500.0)
    driver.run()
    result = driver.result()
    check_session_guarantees(result.history, ...)

Lanes run concurrently; each lane is one session working through its
own op stream closed-loop (next op issues when the previous resolves).
``add_clients`` fans one shared stream across N sessions — the
standard YCSB closed-loop client pool.

Op semantics
------------
* ``read`` — ``session.get``; records a ``read``.
* ``update`` / ``insert`` — ``session.put``; records a ``write``.
* ``rmw`` — read-modify-write (YCSB workload F): a recorded ``read``,
  then a recorded ``write`` of ``rmw_fn(read value, spec.value)``
  (default: the spec's fresh value).  Skipped writes (failed read) are
  not issued.
* ``sleep`` — advance simulated time by ``float(spec.value)`` ms
  without touching the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..analysis import LatencyStats
from ..errors import ReproError
from ..histories import History, TokenHistoryRecorder
from ..sim import Simulator, spawn
from .ycsb import OpSpec


@dataclass
class LaneStats:
    """Per-session outcome counts (E5's per-side availability etc.)."""

    name: Any
    ops: int = 0            # specs consumed (an rmw counts once)
    ok: int = 0
    failed: int = 0
    reads: int = 0
    writes: int = 0
    rmw: int = 0


@dataclass
class DriverResult:
    """What a finished run produced."""

    history: History
    lanes: list[LaneStats]
    duration: float                 # ms of simulated time the run spanned
    read_latency: LatencyStats
    write_latency: LatencyStats

    @property
    def ops_total(self) -> int:
        return sum(lane.ops for lane in self.lanes)

    @property
    def ops_ok(self) -> int:
        return sum(lane.ok for lane in self.lanes)

    @property
    def ops_failed(self) -> int:
        return sum(lane.failed for lane in self.lanes)

    @property
    def rmw_total(self) -> int:
        return sum(lane.rmw for lane in self.lanes)

    @property
    def throughput(self) -> float:
        """Completed client ops per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.ops_ok / (self.duration / 1000.0)


@dataclass
class _Lane:
    session: Any
    ops: Iterable[OpSpec]
    stats: LaneStats
    think_time: float = 0.0
    read_mode: str | None = None
    timeout: float | None = None
    rmw_fn: Callable[[Any, Any], Any] | None = None
    on_op: Callable[[OpSpec, bool], None] | None = None


class WorkloadDriver:
    """Closed-loop driver running op streams against store sessions."""

    def __init__(
        self,
        sim: Simulator,
        recorder: TokenHistoryRecorder | None = None,
    ) -> None:
        self.sim = sim
        #: Shared by every lane; pass one recorder to several drivers to
        #: densify their histories together.
        self.recorder = recorder or TokenHistoryRecorder(sim)
        self.read_latency = LatencyStats()
        self.write_latency = LatencyStats()
        self._lanes: list[_Lane] = []
        self._started = False
        self._start_time: float | None = None
        self._end_time: float | None = None
        self._active = 0
        self._processes: list = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add_session(
        self,
        session: Any,
        ops: Iterable[OpSpec],
        think_time: float = 0.0,
        read_mode: str | None = None,
        timeout: float | None = None,
        rmw_fn: Callable[[Any, Any], Any] | None = None,
        on_op: Callable[[OpSpec, bool], None] | None = None,
        label: Any = None,
    ) -> LaneStats:
        """Add one lane: ``session`` works through ``ops`` closed-loop.

        ``on_op(spec, ok)`` is called after each spec finishes — the
        hook benches use for phase-dependent accounting.
        """
        stats = LaneStats(label if label is not None else session.name)
        self._lanes.append(
            _Lane(session, ops, stats, think_time, read_mode, timeout,
                  rmw_fn, on_op)
        )
        return stats

    def add_clients(
        self,
        store: Any,
        clients: int,
        ops: Iterable[OpSpec],
        session_opts: dict | None = None,
        retry: Any = None,
        **lane_opts: Any,
    ) -> list[LaneStats]:
        """Fan one shared op stream across ``clients`` fresh sessions
        (the YCSB closed-loop client pool).

        ``retry`` attaches a :class:`repro.rpc.RetryPolicy` to every
        session it opens; the lanes' ``timeout`` then bounds each op's
        retrying call end-to-end (the policy's deadline).
        """
        opts = dict(session_opts or {})
        if retry is not None:
            opts["retry"] = retry
        shared = iter(ops)
        return [
            self.add_session(store.session(**opts), shared, **lane_opts)
            for _ in range(clients)
        ]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every lane's client process (idempotent)."""
        if self._started:
            return
        self._started = True
        self._start_time = self.sim.now
        for lane in self._lanes:
            self._active += 1
            self._processes.append(
                spawn(self.sim, self._lane_script(lane),
                      name=f"driver-{lane.stats.name}")
            )

    def run(self, until: float | None = None) -> "DriverResult":
        """Start (if needed) and run the simulation; returns the result.

        Protocol-level failures are recorded in the lane stats, but a
        bug in the workload itself (an op kind the driver cannot run,
        a broken ``rmw_fn``) is re-raised rather than swallowed.
        """
        self.start()
        self.sim.run(until)
        for process in self._processes:
            if process.error is not None:
                raise process.error
        return self.result()

    def result(self) -> DriverResult:
        if self._start_time is None:
            # Never started: zero duration, not a phantom span measured
            # from t=0 up to whatever the simulator clock reads now.
            duration = 0.0
        else:
            # Duration spans the lanes' work, not dangling timeout
            # timers the simulator may still drain after the last op
            # completes.  ``until`` can cut lanes off mid-op with
            # _end_time still behind _start_time; clamp at zero.
            end = self._end_time if self._active == 0 and \
                self._end_time is not None else self.sim.now
            duration = max(0.0, end - self._start_time)
        return DriverResult(
            history=self.recorder.history(),
            lanes=[lane.stats for lane in self._lanes],
            duration=duration,
            read_latency=self.read_latency,
            write_latency=self.write_latency,
        )

    # ------------------------------------------------------------------
    # Lane execution
    # ------------------------------------------------------------------
    def _lane_script(self, lane: _Lane):
        session, stats = lane.session, lane.stats
        for spec in lane.ops:
            if spec.op == "sleep":
                yield float(spec.value)
                continue
            stats.ops += 1
            if spec.op == "read":
                ok = yield from self._read(lane, spec.key)
                stats.reads += 1
            elif spec.op in ("update", "insert", "write", "put"):
                ok = yield from self._write(lane, spec.key, spec.value)
                stats.writes += 1
            elif spec.op == "rmw":
                stats.rmw += 1
                ok, value = yield from self._read(lane, spec.key,
                                                  want_value=True)
                stats.reads += 1
                if ok:
                    new = (lane.rmw_fn(value, spec.value)
                           if lane.rmw_fn is not None else spec.value)
                    ok = yield from self._write(lane, spec.key, new)
                    stats.writes += 1
            else:
                raise ValueError(f"driver cannot run op {spec.op!r}")
            if ok:
                stats.ok += 1
            else:
                stats.failed += 1
            if lane.on_op is not None:
                lane.on_op(spec, ok)
            if lane.think_time > 0:
                yield lane.think_time
        self._active -= 1
        self._end_time = max(self._end_time or 0.0, self.sim.now)

    def _read(self, lane: _Lane, key, want_value: bool = False):
        handle = self.recorder.begin("read", key, lane.session.name,
                                     replica=lane.session.client_id)
        started = self.sim.now
        try:
            # Hold the future itself: cache-fronted stores stamp it
            # with the serving tier (cache hit vs backing read).
            future = lane.session.get(key, mode=lane.read_mode,
                                      timeout=lane.timeout)
            value, token = yield future
        except ReproError:
            self.recorder.fail(handle)
            return (False, None) if want_value else False
        self.read_latency.record(self.sim.now - started)
        self.recorder.complete_token(handle, token, value,
                                     tier=getattr(future, "served_tier",
                                                  None))
        return (True, value) if want_value else True

    def _write(self, lane: _Lane, key, value):
        handle = self.recorder.begin("write", key, lane.session.name,
                                     replica=lane.session.client_id)
        started = self.sim.now
        try:
            future = lane.session.put(key, value, timeout=lane.timeout)
            token = yield future
        except ReproError:
            # Keep the attempted value: a timed-out write may still have
            # landed, and history() ties later reads of it back here.
            self.recorder.fail(handle, value=value)
            return False
        self.write_latency.record(self.sim.now - started)
        self.recorder.complete_token(handle, token, value,
                                     tier=getattr(future, "served_tier",
                                                  None))
        return True


def run_workload(
    store: Any,
    ops: Iterable[OpSpec],
    clients: int = 1,
    session_opts: dict | None = None,
    recorder: TokenHistoryRecorder | None = None,
    until: float | None = None,
    retry: Any = None,
    nemesis: Any = None,
    arrivals: Any = None,
    autoscaler: Any = None,
    **lane_opts: Any,
) -> Any:
    """One-call convenience: drive ``ops`` against ``store`` and return
    the result.  ``retry`` applies one :class:`repro.rpc.RetryPolicy`
    across the whole client pool.

    Closed-loop by default (``clients`` lanes, one op in flight each,
    returning a :class:`DriverResult`).  Passing ``arrivals`` — an
    arrival process from :mod:`repro.workload.openloop` — switches to
    the open-loop engine: ops start at the arrival times regardless of
    completion, ``clients`` sizes the session pool, and the result is
    an :class:`~repro.workload.openloop.OpenLoopResult`.

    ``nemesis`` — a :class:`repro.chaos.Nemesis` (or anything with
    ``install(store)``/``stop()``) — is installed before the run and
    stopped after it (even when the run raises), so its fault plan
    executes alongside the workload.  Healing and settling are left to
    the caller: what post-fault recovery means is protocol- and
    checker-specific.

    ``autoscaler`` — a :class:`repro.membership.Autoscaler` (same
    ``install``/``stop`` shape) — runs its policy loop alongside the
    workload, scaling an elastic store while the ops flow.
    """
    if arrivals is not None:
        from .openloop import OpenLoopDriver

        driver: Any = OpenLoopDriver(
            store, arrivals, ops, sessions=clients,
            session_opts=session_opts, recorder=recorder, retry=retry,
            **lane_opts,
        )
    else:
        driver = WorkloadDriver(store.sim, recorder=recorder)
        driver.add_clients(store, clients, ops, session_opts=session_opts,
                           retry=retry, **lane_opts)
    if nemesis is not None:
        nemesis.install(store)
    if autoscaler is not None:
        autoscaler.install(store)
    try:
        return driver.run(until)
    finally:
        if nemesis is not None:
            nemesis.stop()
        if autoscaler is not None:
            autoscaler.stop()
