"""Bank workloads for the RedBlue and escrow experiments.

Two shapes:

* :class:`BankWorkload` — deposits and withdrawals against accounts,
  with a configurable *blue fraction* (deposit share); used by E8 to
  sweep the RedBlue speedup curve.
* :class:`DebitWorkload` — debits against one bounded counter with a
  controllable proximity to the bound; used by E9 to chart escrow
  abort rates as headroom tightens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class BankOp:
    site: int
    action: str          # "deposit" | "withdraw"
    account: str
    amount: float


class BankWorkload:
    """Deposits (blue) vs withdrawals (red) at random sites."""

    def __init__(
        self,
        sites: int = 3,
        accounts: int = 5,
        blue_fraction: float = 0.9,
        mean_amount: float = 10.0,
        seed: int = 0,
    ) -> None:
        if not 0 <= blue_fraction <= 1:
            raise ValueError("blue_fraction must be in [0, 1]")
        if sites < 1 or accounts < 1:
            raise ValueError("need sites and accounts")
        self.sites = sites
        self.accounts = accounts
        self.blue_fraction = blue_fraction
        self.mean_amount = mean_amount
        self.rng = random.Random(seed)

    def next_op(self) -> BankOp:
        site = self.rng.randrange(self.sites)
        account = f"acct-{self.rng.randrange(self.accounts)}"
        amount = round(self.rng.expovariate(1.0 / self.mean_amount), 2)
        if self.rng.random() < self.blue_fraction:
            return BankOp(site, "deposit", account, amount)
        return BankOp(site, "withdraw", account, amount)

    def take(self, count: int) -> list[BankOp]:
        return [self.next_op() for _ in range(count)]


@dataclass(frozen=True)
class DebitOp:
    site: int
    amount: float


class DebitWorkload:
    """A stream of debits sized so total demand ≈ ``demand_fraction``
    of the available headroom — 0.5 leaves slack everywhere, 1.0 sits
    exactly on the invariant, >1 guarantees aborts."""

    def __init__(
        self,
        sites: int,
        total_headroom: float,
        operations: int,
        demand_fraction: float = 0.8,
        skew_site: int | None = None,
        skew_weight: float = 0.0,
        seed: int = 0,
    ) -> None:
        if operations < 1:
            raise ValueError("need at least one operation")
        if not 0 <= skew_weight <= 1:
            raise ValueError("skew_weight must be in [0, 1]")
        self.sites = sites
        self.mean_amount = total_headroom * demand_fraction / operations
        self.operations = operations
        self.skew_site = skew_site
        self.skew_weight = skew_weight
        self.rng = random.Random(seed)

    def next_op(self) -> DebitOp:
        if (
            self.skew_site is not None
            and self.rng.random() < self.skew_weight
        ):
            site = self.skew_site
        else:
            site = self.rng.randrange(self.sites)
        amount = self.rng.uniform(0.5, 1.5) * self.mean_amount
        return DebitOp(site, round(amount, 4))

    def take(self, count: int | None = None) -> list[DebitOp]:
        return [self.next_op() for _ in range(count or self.operations)]
