"""Elastic membership: gossip dissemination, phi-accrual failure
detection, and the queue-driven autoscaler (ISSUE 7).

The paper's taxonomy assumes replica sets that change under the
protocols; this package is where topology stops being a constructor
argument.  :class:`MembershipService` maintains a live gossip view
with per-observer :class:`PhiAccrualDetector` suspicion levels, and
:class:`Autoscaler` turns PR 6's queue-depth gauges into
``add_shard()`` / ``decommission_shard()`` calls on the elastic
sharded store.
"""

from .autoscaler import Autoscaler
from .detector import PhiAccrualDetector
from .gossip import ALIVE, DEAD, SUSPECT, GossipMsg, MembershipService

__all__ = [
    "PhiAccrualDetector",
    "MembershipService",
    "GossipMsg",
    "Autoscaler",
    "ALIVE",
    "SUSPECT",
    "DEAD",
]
