"""Queue-driven autoscaling policy for the elastic sharded store.

The control loop the open-loop experiments motivate: sample the
aggregate ``server.queue_depth`` gauge (PR 6's admission-control
signal), normalize it per server node, and when the backlog stays
above ``high_depth`` for ``sustain`` consecutive ticks, add a shard;
when it stays below ``low_depth``, drain one.  A cooldown separates
actions so one flash crowd triggers one scale-out, not a thrash.

Deliberately boring policy, deliberately careful actuation:

* never acts while a ring move is already in flight
  (``store.rebalancing``);
* respects ``min_shards`` / ``max_shards``;
* optionally holds off while a :class:`~repro.membership
  .MembershipService` reports suspected nodes — queue spikes during a
  partition mean *unreachable*, not *undersized*, and scaling into a
  partition doubles the damage.

Ticks are daemon events (the autoscaler never keeps ``sim.run()``
alive) and every decision is trace-annotated and counted under
``autoscaler.*``, so scaling activity is part of a run's fingerprint.
"""

from __future__ import annotations

from typing import Any

from ..sim import Simulator


class Autoscaler:
    """Watches queue-depth gauges; calls ``store.add_shard()`` /
    ``store.decommission_shard()``."""

    def __init__(
        self,
        store: Any = None,
        interval: float = 50.0,
        high_depth: float = 4.0,
        low_depth: float = 0.5,
        sustain: int = 3,
        cooldown: float = 400.0,
        min_shards: int = 1,
        max_shards: int = 8,
        membership: Any = None,
        move_opts: dict | None = None,
    ) -> None:
        self.store = store
        self.interval = interval
        self.high_depth = high_depth
        self.low_depth = low_depth
        self.sustain = sustain
        self.cooldown = cooldown
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.membership = membership
        #: Extra kwargs for every ring move this policy starts — e.g. a
        #: longer ``op_timeout`` so handoff ops survive the very queues
        #: that triggered the scale-out.
        self.move_opts = dict(move_opts or {})
        self._high_ticks = 0
        self._low_ticks = 0
        self._last_action = -float("inf")
        self._running = False
        #: ``(time, action, shards_after)`` decision log for reports.
        self.decisions: list[tuple[float, str, int]] = []

    # ------------------------------------------------------------------
    def install(self, store: Any = None) -> None:
        """Attach to ``store`` and start the policy tick."""
        if store is not None:
            self.store = store
        if self.store is None:
            raise ValueError("autoscaler needs a store")
        if self._running:
            return
        self._running = True
        sim: Simulator = self.store.sim
        self._m_out = sim.metrics.counter("autoscaler.scale_out")
        self._m_in = sim.metrics.counter("autoscaler.scale_in")
        self._g_signal = sim.metrics.gauge("autoscaler.depth_per_node")
        sim.schedule_daemon(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _signal(self) -> float:
        """Aggregate queue depth per server node."""
        sim = self.store.sim
        depth = sim.metrics.gauge("server.queue_depth").value
        servers = len(self.store.server_ids())
        return depth / servers if servers else 0.0

    def _tick(self) -> None:
        if not self._running:
            return
        sim: Simulator = self.store.sim
        per_node = self._signal()
        self._g_signal.set(round(per_node, 4))
        shards = len(self.store.shard_ids)
        busy = bool(getattr(self.store, "rebalancing", False))
        held = self.membership is not None and bool(
            self.membership.suspected())
        if per_node >= self.high_depth:
            self._high_ticks += 1
            self._low_ticks = 0
        elif per_node <= self.low_depth:
            self._low_ticks += 1
            self._high_ticks = 0
        else:
            self._high_ticks = self._low_ticks = 0
        cooled = sim.now - self._last_action >= self.cooldown
        if not busy and not held and cooled:
            if self._high_ticks >= self.sustain and shards < self.max_shards:
                self._act(sim, "scale_out", per_node)
            elif self._low_ticks >= self.sustain and shards > self.min_shards:
                self._act(sim, "scale_in", per_node)
        sim.schedule_daemon(self.interval, self._tick)

    def _act(self, sim: Simulator, action: str, per_node: float) -> None:
        if action == "scale_out":
            self.store.add_shard(**self.move_opts)
            self._m_out.inc()
        else:
            self.store.decommission_shard(**self.move_opts)
            self._m_in.inc()
        self._last_action = sim.now
        self._high_ticks = self._low_ticks = 0
        shards = len(self.store.shard_ids)
        self.decisions.append((sim.now, action, shards))
        sim.annotate("autoscaler", action=action, shards=shards,
                     depth_per_node=round(per_node, 3))
